// Domain example: scheduling-policy shoot-out over a synthetic workload.
//
//   ./scheduler_compare [blocks] [seed]
//
// Generates a batch of optimized blocks (Section 5.2's generator), runs
// the original order, the machine-independent list heuristic, the Gross-
// style greedy baseline, and the branch-and-bound scheduler on each, and
// reports total NOPs, how often each heuristic already ties the optimum,
// and the worst heuristic miss observed.
#include <cstdlib>
#include <iostream>

#include "core/compiler.hpp"
#include "ir/dag.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pipesched;

  const int blocks = argc > 1 ? std::atoi(argv[1]) : 300;
  const std::uint64_t base_seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const Machine machine = Machine::paper_simulation();
  std::cout << "workload: " << blocks << " optimized blocks, machine "
            << machine.name() << "\n\n";

  struct Tally {
    long total_nops = 0;
    int ties_optimal = 0;
    int worst_excess = 0;
  };
  Tally original;
  Tally list;
  Tally greedy;
  long optimal_total = 0;
  long instructions = 0;
  int scheduled = 0;

  for (int i = 0; i < blocks; ++i) {
    GeneratorParams params;
    params.statements = 6 + i % 12;
    params.variables = 3 + i % 5;
    params.constants = 1 + i % 3;
    params.seed = base_seed + static_cast<std::uint64_t>(i) * 131;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    ++scheduled;
    instructions += static_cast<long>(block.size());
    const DepGraph dag(block);

    std::vector<TupleIndex> identity(block.size());
    for (std::size_t k = 0; k < identity.size(); ++k) {
      identity[k] = static_cast<TupleIndex>(k);
    }
    const int nops_original =
        evaluate_order(machine, dag, identity).total_nops();
    const int nops_list = list_schedule(machine, dag).total_nops();
    const int nops_greedy = greedy_schedule(machine, dag).total_nops();
    SearchConfig config;
    config.curtail_lambda = 100000;
    const int nops_optimal =
        optimal_schedule(machine, dag, config).best.total_nops();

    optimal_total += nops_optimal;
    const auto tally = [&](Tally& t, int nops) {
      t.total_nops += nops;
      t.ties_optimal += nops == nops_optimal;
      t.worst_excess = std::max(t.worst_excess, nops - nops_optimal);
    };
    tally(original, nops_original);
    tally(list, nops_list);
    tally(greedy, nops_greedy);
  }

  std::cout << scheduled << " blocks, " << instructions
            << " instructions total\n\n";
  std::cout << pad_right("scheduler", 12) << pad_left("total NOPs", 12)
            << pad_left("vs optimal", 12) << pad_left("ties opt.", 11)
            << pad_left("worst miss", 12) << "\n";
  const auto row = [&](const char* name, const Tally& t) {
    const double excess =
        optimal_total
            ? 100.0 * static_cast<double>(t.total_nops - optimal_total) /
                  static_cast<double>(optimal_total)
            : 0.0;
    std::cout << pad_right(name, 12) << pad_left(std::to_string(t.total_nops), 12)
              << pad_left("+" + compact_double(excess, 3) + "%", 12)
              << pad_left(std::to_string(t.ties_optimal) + "/" +
                              std::to_string(scheduled),
                          11)
              << pad_left(std::to_string(t.worst_excess) + " NOPs", 12)
              << "\n";
  };
  row("original", original);
  row("list", list);
  row("greedy", greedy);
  std::cout << pad_right("optimal", 12) << pad_left(std::to_string(optimal_total), 12)
            << pad_left("--", 12) << pad_left("--", 11) << pad_left("--", 12)
            << "\n";
  return 0;
}
