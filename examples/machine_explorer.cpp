// Domain example / CLI: schedule a program for any pipeline structure.
//
//   ./machine_explorer [--machine <preset>|--config <file>]
//                      [--source <file>|--tuples <file>] [--lambda N]
//                      [--mechanism nop|interlock|tags] [--no-opt]
//
// With no arguments it schedules a built-in kernel against every machine
// preset, demonstrating the paper's point that changing the pipeline
// structure changes only the description tables, never the algorithm.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/compiler.hpp"
#include "frontend/codegen.hpp"
#include "frontend/parser.hpp"
#include "ir/block_parser.hpp"
#include "machine/machine_parser.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace {

using namespace pipesched;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  PS_CHECK(in.good(), "cannot open " << path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

const char* kDefaultKernel =
    "ax = a * x;\n"
    "bx = b * x;\n"
    "num = ax + c;\n"
    "den = bx - c;\n"
    "r = num / den;\n";

void schedule_and_print(const BasicBlock& input, const Machine& machine,
                        const CompileOptions& base_options) {
  CompileOptions options = base_options;
  options.machine = machine;
  const CompileResult result = compile_block(input, options);
  std::cout << "--- machine " << machine.name() << " ---\n"
            << "block: " << result.block.size() << " instructions, optimal "
            << result.schedule.total_nops() << " NOPs, completes at cycle "
            << result.schedule.completion_cycle() << " ("
            << result.stats.omega_calls << " placements, "
            << (result.stats.completed ? "proven optimal" : "curtailed")
            << ")\n"
            << result.assembly << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pipesched;
  try {
    std::string machine_arg;
    std::string config_path;
    std::string source_path;
    std::string tuples_path;
    CompileOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        PS_CHECK(i + 1 < argc, arg << " needs a value");
        return argv[++i];
      };
      if (arg == "--machine") {
        machine_arg = next();
      } else if (arg == "--config") {
        config_path = next();
      } else if (arg == "--source") {
        source_path = next();
      } else if (arg == "--tuples") {
        tuples_path = next();
      } else if (arg == "--lambda") {
        options.search.curtail_lambda = std::stoull(next());
      } else if (arg == "--no-opt") {
        options.optimize = false;
      } else if (arg == "--mechanism") {
        const std::string mech = next();
        options.emit.mechanism =
            mech == "interlock" ? DelayMechanism::ImplicitInterlock
            : mech == "tags"    ? DelayMechanism::ExplicitInterlock
                                : DelayMechanism::NopPadding;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return 2;
      }
    }

    BasicBlock input;
    if (!tuples_path.empty()) {
      input = parse_block(read_file(tuples_path));
    } else {
      const std::string source =
          source_path.empty() ? kDefaultKernel : read_file(source_path);
      std::cout << "source:\n" << source << "\n";
      input = generate_tuples(parse_source(source));
    }

    if (!config_path.empty()) {
      const Machine machine = parse_machine(read_file(config_path));
      std::cout << machine.to_string() << "\n";
      schedule_and_print(input, machine, options);
    } else if (!machine_arg.empty()) {
      schedule_and_print(input, Machine::preset(machine_arg), options);
    } else {
      for (const std::string& name : Machine::preset_names()) {
        schedule_and_print(input, Machine::preset(name), options);
      }
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
