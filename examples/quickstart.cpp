// Quickstart: the paper's Figure 3 program through the whole back end.
//
//   ./quickstart
//
// Parses "{ b = 15; a = b * a; }", shows the tuple form, the dependence
// DAG, the list and optimal schedules with NOPs, and the final assembly.
#include <iostream>

#include "core/compiler.hpp"
#include "frontend/codegen.hpp"
#include "frontend/parser.hpp"
#include "ir/dag.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace pipesched;

  const std::string source = "{ b = 15; a = b * a; }";
  std::cout << "source:\n  " << source << "\n\n";

  // Front end: source -> tuple form (the paper's Figure 3).
  const SourceProgram program = parse_source(source);
  const BasicBlock block = generate_tuples(program, "figure3");
  std::cout << "tuple form:\n" << block.to_string() << "\n";

  // Dependence DAG.
  const DepGraph dag(block);
  std::cout << "dependences:\n";
  for (const DepEdge& e : dag.edges()) {
    std::cout << "  " << e.from + 1 << " -> " << e.to + 1 << "  ("
              << dep_kind_name(e.kind) << ")\n";
  }
  std::cout << "\n";

  // Machine model of the paper's simulations (Tables 4-5).
  const Machine machine = Machine::paper_simulation();
  std::cout << machine.to_string() << "\n";

  // Seed schedule vs optimal schedule.
  const Schedule seed = list_schedule(machine, dag);
  std::cout << "list schedule (" << seed.total_nops() << " NOPs):\n"
            << seed.to_string(block, machine) << "\n";

  CompileOptions options;
  options.machine = machine;
  options.optimize = false;  // keep the block exactly as Figure 3
  const CompileResult result = compile_block(block, options);
  std::cout << "optimal schedule (" << result.schedule.total_nops()
            << " NOPs, " << result.stats.omega_calls
            << " placements searched):\n"
            << result.schedule.to_string(block, machine) << "\n";

  // Independent simulator cross-check and pipeline occupancy.
  const SimResult sim =
      simulate_interlocked(machine, dag, result.schedule.order);
  std::cout << "pipeline trace (interlocked execution, "
            << sim.total_delay << " stall cycles):\n"
            << render_pipeline_trace(machine, block, sim) << "\n";

  std::cout << "assembly (NOP padding, registers allocated after "
               "scheduling):\n"
            << result.assembly;
  return 0;
}
