// Domain example: compiling a program with arbitrary structured control
// flow (the paper's Section 6 future work) — each basic block of the CFG
// is optimally scheduled, and the Chain boundary mode carries residual
// pipeline state across fall-through edges (footnote 1).
//
//   ./control_flow
#include <iostream>

#include "core/program_compiler.hpp"
#include "frontend/parser.hpp"
#include "frontend/program_codegen.hpp"
#include "util/strings.hpp"

int main() {
  using namespace pipesched;

  // Clamped scale-accumulate loop: out = sum of g*x_i with saturation arm.
  const std::string source =
      "acc = 0;\n"
      "while (n) {\n"
      "  term = g * x;\n"
      "  if (term - limit) {\n"
      "    acc = acc + term;\n"
      "  } else {\n"
      "    acc = acc + limit;\n"
      "  }\n"
      "  x = x + stride;\n"
      "  n = n - 1;\n"
      "}\n"
      "out = acc * scale;\n";
  std::cout << "source:\n" << source << "\n";

  const Program program = generate_program(parse_source(source));
  std::cout << "control-flow graph (" << program.size() << " blocks):\n"
            << program.to_string() << "\n";

  // Semantics check through the reference interpreter.
  ProgramEnv env{{"n", 3}, {"g", 2},      {"x", 10},
                 {"stride", 5}, {"limit", 1000}, {"scale", 1}};
  const ProgramExecResult exec = interpret_program(program, env);
  std::cout << "interpreted: out = " << exec.final_vars.at("out") << " ("
            << exec.blocks_executed << " blocks executed)\n\n";

  for (BoundaryMode mode : {BoundaryMode::Drain, BoundaryMode::Chain}) {
    ProgramCompileOptions options;
    options.boundary = mode;
    options.block.search.curtail_lambda = 50000;
    const ProgramCompileResult result = compile_program(program, options);
    std::cout << "=== boundary mode: "
              << (mode == BoundaryMode::Drain ? "drain" : "chain")
              << " ===\n"
              << "total instructions " << result.total_instructions
              << ", total NOPs " << result.total_nops << "\n";
    if (mode == BoundaryMode::Chain) {
      std::cout << "\nassembly:\n" << result.assembly;
    }
  }
  return 0;
}
