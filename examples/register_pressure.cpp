// Domain example: the schedule-quality / register-file trade
// (paper Section 3.1's spill discipline plus our pressure-constrained
// search extension).
//
//   ./register_pressure
//
// A wide reduction wants all its loads in flight at once — which costs
// registers. Sweeping the file size shows: plenty of registers -> zero
// NOPs; a tight file forces spill code and serialization.
#include <iostream>

#include "core/compiler.hpp"
#include "frontend/codegen.hpp"
#include "frontend/parser.hpp"
#include "regalloc/spill.hpp"
#include "util/strings.hpp"

int main() {
  using namespace pipesched;

  const std::string source =
      "s0 = a0 * b0;\n"
      "s1 = a1 * b1;\n"
      "s2 = a2 * b2;\n"
      "s3 = a3 * b3;\n"
      "t0 = s0 + s1;\n"
      "t1 = s2 + s3;\n"
      "dot = t0 + t1;\n";
  std::cout << "8-operand dot product:\n" << source << "\n";

  const BasicBlock block = generate_tuples(parse_source(source));
  std::cout << "unconstrained register pressure (MAXLIVE): "
            << block_max_live(block) << "\n\n";

  std::cout << pad_left("registers", 10) << pad_left("spills", 8)
            << pad_left("NOPs", 6) << pad_left("cycles", 8)
            << pad_left("searchable", 12) << "\n";
  for (int registers : {32, 8, 6, 5, 4, 3}) {
    CompileOptions options;
    options.registers = registers;
    options.search.curtail_lambda = 200000;
    const RegisterLimitedResult result =
        compile_with_register_limit(block, options);
    std::cout << pad_left(std::to_string(registers), 10)
              << pad_left(std::to_string(result.values_spilled), 8)
              << pad_left(std::to_string(result.compiled.schedule.total_nops()),
                          6)
              << pad_left(
                     std::to_string(result.compiled.schedule.completion_cycle()),
                     8)
              << pad_left(result.scheduler_feasible ? "yes" : "fallback", 12)
              << "\n";
  }

  CompileOptions tight;
  tight.registers = 4;
  tight.search.curtail_lambda = 200000;
  const RegisterLimitedResult result =
      compile_with_register_limit(block, tight);
  std::cout << "\nassembly with 4 registers (" << result.values_spilled
            << " value(s) spilled):\n"
            << result.compiled.assembly;
  return 0;
}
