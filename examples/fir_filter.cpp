// Domain example: a 4-tap FIR filter step — the multiply-heavy,
// latency-sensitive kernel the paper's introduction motivates.
//
//   ./fir_filter
//
// The unrolled tap computation issues a Load and a Mul per tap; compiled
// naively each multiply waits on its load and the accumulation chain waits
// on each multiply. The optimal scheduler overlaps loads with multiplies
// across taps and hides nearly all of the latency. The example prints the
// NOP counts of the original, greedy, and optimal schedules and the
// resulting speedups, plus a pipeline-occupancy trace.
#include <iostream>

#include "core/compiler.hpp"
#include "ir/dag.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

int main() {
  using namespace pipesched;

  // y = c0*x0 + c1*x1 + c2*x2 + c3*x3, accumulated pairwise.
  const std::string source =
      "t0 = c0 * x0;\n"
      "t1 = c1 * x1;\n"
      "t2 = c2 * x2;\n"
      "t3 = c3 * x3;\n"
      "lo = t0 + t1;\n"
      "hi = t2 + t3;\n"
      "y  = lo + hi;\n";
  std::cout << "4-tap FIR step:\n" << source << "\n";

  const Machine machine = Machine::paper_simulation();

  auto nops_for = [&](SchedulerKind kind) {
    CompileOptions options;
    options.machine = machine;
    options.scheduler = kind;
    options.search.curtail_lambda = 0;  // small kernel: search to proof
    return compile_source(source, options);
  };

  const CompileResult original = nops_for(SchedulerKind::Original);
  const CompileResult greedy = nops_for(SchedulerKind::Greedy);
  const CompileResult optimal = nops_for(SchedulerKind::Optimal);

  const auto cycles = [](const CompileResult& r) {
    return r.schedule.completion_cycle();
  };
  std::cout << pad_right("scheduler", 12) << pad_left("NOPs", 8)
            << pad_left("cycles", 9) << pad_left("speedup", 10) << "\n";
  const auto row = [&](const char* name, const CompileResult& r) {
    std::cout << pad_right(name, 12)
              << pad_left(std::to_string(r.schedule.total_nops()), 8)
              << pad_left(std::to_string(cycles(r)), 9)
              << pad_left(
                     compact_double(
                         static_cast<double>(cycles(original)) / cycles(r), 3) +
                         "x",
                     10)
              << "\n";
  };
  row("original", original);
  row("greedy", greedy);
  row("optimal", optimal);

  std::cout << "\noptimal schedule ("
            << optimal.stats.omega_calls << " placements searched, "
            << (optimal.stats.completed ? "provably optimal" : "curtailed")
            << "):\n"
            << optimal.schedule.to_string(optimal.block, machine) << "\n";

  const DepGraph dag(optimal.block);
  const SimResult sim =
      simulate_interlocked(machine, dag, optimal.schedule.order);
  std::cout << "pipeline occupancy:\n"
            << render_pipeline_trace(machine, optimal.block, sim) << "\n";

  std::cout << "assembly:\n" << optimal.assembly;
  return 0;
}
