file(REMOVE_RECURSE
  "CMakeFiles/psc.dir/psc.cpp.o"
  "CMakeFiles/psc.dir/psc.cpp.o.d"
  "psc"
  "psc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
