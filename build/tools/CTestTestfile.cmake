# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(psc_help "/root/repo/build/tools/psc" "--help")
set_tests_properties(psc_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(psc_straight_line "/root/repo/build/tools/psc" "--stats" "/root/repo/examples/programs/complex_mul.ps")
set_tests_properties(psc_straight_line PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(psc_control_flow "/root/repo/build/tools/psc" "--superblock" "--boundary" "chain" "--mechanism" "tera" "/root/repo/examples/programs/clamp_loop.ps")
set_tests_properties(psc_control_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(psc_tuples "/root/repo/build/tools/psc" "--tuples" "--trace" "--dump-dag" "/root/repo/examples/programs/figure3.tuples")
set_tests_properties(psc_tuples PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(psc_machine_file "/root/repo/build/tools/psc" "--machine-file" "/root/repo/machines/asymmetric.machine" "--registers" "6" "/root/repo/examples/programs/complex_mul.ps")
set_tests_properties(psc_machine_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(psc_split_exhaustive "/root/repo/build/tools/psc" "--scheduler" "exhaustive" "/root/repo/examples/programs/complex_mul.ps")
set_tests_properties(psc_split_exhaustive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(psc_program_tuples "/root/repo/build/tools/psc" "--tuples" "--boundary" "chain" "--stats" "/root/repo/examples/programs/countdown.ptuples")
set_tests_properties(psc_program_tuples PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
