# Empty compiler generated dependencies file for test_list_greedy.
# This may be replaced when dependencies are built.
