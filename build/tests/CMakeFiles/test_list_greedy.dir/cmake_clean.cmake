file(REMOVE_RECURSE
  "CMakeFiles/test_list_greedy.dir/test_list_greedy.cpp.o"
  "CMakeFiles/test_list_greedy.dir/test_list_greedy.cpp.o.d"
  "test_list_greedy"
  "test_list_greedy.pdb"
  "test_list_greedy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
