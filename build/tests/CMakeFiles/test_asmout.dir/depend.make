# Empty dependencies file for test_asmout.
# This may be replaced when dependencies are built.
