file(REMOVE_RECURSE
  "CMakeFiles/test_asmout.dir/test_asmout.cpp.o"
  "CMakeFiles/test_asmout.dir/test_asmout.cpp.o.d"
  "test_asmout"
  "test_asmout.pdb"
  "test_asmout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asmout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
