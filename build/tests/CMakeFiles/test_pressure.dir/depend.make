# Empty dependencies file for test_pressure.
# This may be replaced when dependencies are built.
