# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_hetero[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_list_greedy[1]_include.cmake")
include("/root/repo/build/tests/test_optimal[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_regalloc[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_asmout[1]_include.cmake")
include("/root/repo/build/tests/test_pressure[1]_include.cmake")
include("/root/repo/build/tests/test_program[1]_include.cmake")
include("/root/repo/build/tests/test_split[1]_include.cmake")
include("/root/repo/build/tests/test_superblock[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
