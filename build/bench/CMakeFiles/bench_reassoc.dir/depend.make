# Empty dependencies file for bench_reassoc.
# This may be replaced when dependencies are built.
