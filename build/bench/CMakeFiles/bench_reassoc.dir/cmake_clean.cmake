file(REMOVE_RECURSE
  "CMakeFiles/bench_reassoc.dir/bench_reassoc.cpp.o"
  "CMakeFiles/bench_reassoc.dir/bench_reassoc.cpp.o.d"
  "bench_reassoc"
  "bench_reassoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reassoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
