file(REMOVE_RECURSE
  "CMakeFiles/bench_pressure.dir/bench_pressure.cpp.o"
  "CMakeFiles/bench_pressure.dir/bench_pressure.cpp.o.d"
  "bench_pressure"
  "bench_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
