# Empty dependencies file for bench_pressure.
# This may be replaced when dependencies are built.
