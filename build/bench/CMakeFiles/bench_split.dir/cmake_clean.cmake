file(REMOVE_RECURSE
  "CMakeFiles/bench_split.dir/bench_split.cpp.o"
  "CMakeFiles/bench_split.dir/bench_split.cpp.o.d"
  "bench_split"
  "bench_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
