file(REMOVE_RECURSE
  "CMakeFiles/bench_q_cost.dir/bench_q_cost.cpp.o"
  "CMakeFiles/bench_q_cost.dir/bench_q_cost.cpp.o.d"
  "bench_q_cost"
  "bench_q_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
