# Empty compiler generated dependencies file for bench_q_cost.
# This may be replaced when dependencies are built.
