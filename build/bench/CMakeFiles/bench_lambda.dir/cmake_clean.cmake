file(REMOVE_RECURSE
  "CMakeFiles/bench_lambda.dir/bench_lambda.cpp.o"
  "CMakeFiles/bench_lambda.dir/bench_lambda.cpp.o.d"
  "bench_lambda"
  "bench_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
