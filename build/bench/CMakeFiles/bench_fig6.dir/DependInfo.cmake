
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6.cpp" "bench/CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ps_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/asmout/CMakeFiles/ps_asmout.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/ps_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ps_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ps_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
