file(REMOVE_RECURSE
  "CMakeFiles/bench_boundary.dir/bench_boundary.cpp.o"
  "CMakeFiles/bench_boundary.dir/bench_boundary.cpp.o.d"
  "bench_boundary"
  "bench_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
