# Empty dependencies file for bench_boundary.
# This may be replaced when dependencies are built.
