file(REMOVE_RECURSE
  "CMakeFiles/bench_multipipe.dir/bench_multipipe.cpp.o"
  "CMakeFiles/bench_multipipe.dir/bench_multipipe.cpp.o.d"
  "bench_multipipe"
  "bench_multipipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multipipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
