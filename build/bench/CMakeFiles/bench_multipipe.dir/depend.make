# Empty dependencies file for bench_multipipe.
# This may be replaced when dependencies are built.
