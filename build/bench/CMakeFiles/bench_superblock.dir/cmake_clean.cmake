file(REMOVE_RECURSE
  "CMakeFiles/bench_superblock.dir/bench_superblock.cpp.o"
  "CMakeFiles/bench_superblock.dir/bench_superblock.cpp.o.d"
  "bench_superblock"
  "bench_superblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_superblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
