# Empty compiler generated dependencies file for bench_opt_effect.
# This may be replaced when dependencies are built.
