file(REMOVE_RECURSE
  "CMakeFiles/bench_opt_effect.dir/bench_opt_effect.cpp.o"
  "CMakeFiles/bench_opt_effect.dir/bench_opt_effect.cpp.o.d"
  "bench_opt_effect"
  "bench_opt_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
