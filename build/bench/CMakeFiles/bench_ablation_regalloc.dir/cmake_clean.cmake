file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regalloc.dir/bench_ablation_regalloc.cpp.o"
  "CMakeFiles/bench_ablation_regalloc.dir/bench_ablation_regalloc.cpp.o.d"
  "bench_ablation_regalloc"
  "bench_ablation_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
