# Empty dependencies file for bench_ablation_regalloc.
# This may be replaced when dependencies are built.
