file(REMOVE_RECURSE
  "libps_machine.a"
)
