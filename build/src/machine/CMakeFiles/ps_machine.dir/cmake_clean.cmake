file(REMOVE_RECURSE
  "CMakeFiles/ps_machine.dir/machine.cpp.o"
  "CMakeFiles/ps_machine.dir/machine.cpp.o.d"
  "CMakeFiles/ps_machine.dir/machine_parser.cpp.o"
  "CMakeFiles/ps_machine.dir/machine_parser.cpp.o.d"
  "libps_machine.a"
  "libps_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
