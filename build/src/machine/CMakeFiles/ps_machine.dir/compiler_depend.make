# Empty compiler generated dependencies file for ps_machine.
# This may be replaced when dependencies are built.
