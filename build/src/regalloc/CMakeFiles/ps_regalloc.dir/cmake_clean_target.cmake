file(REMOVE_RECURSE
  "libps_regalloc.a"
)
