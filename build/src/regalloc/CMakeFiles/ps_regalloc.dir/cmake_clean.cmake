file(REMOVE_RECURSE
  "CMakeFiles/ps_regalloc.dir/regalloc.cpp.o"
  "CMakeFiles/ps_regalloc.dir/regalloc.cpp.o.d"
  "CMakeFiles/ps_regalloc.dir/spill.cpp.o"
  "CMakeFiles/ps_regalloc.dir/spill.cpp.o.d"
  "libps_regalloc.a"
  "libps_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
