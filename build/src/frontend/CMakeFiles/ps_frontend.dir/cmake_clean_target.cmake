file(REMOVE_RECURSE
  "libps_frontend.a"
)
