
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/ast.cpp" "src/frontend/CMakeFiles/ps_frontend.dir/ast.cpp.o" "gcc" "src/frontend/CMakeFiles/ps_frontend.dir/ast.cpp.o.d"
  "/root/repo/src/frontend/codegen.cpp" "src/frontend/CMakeFiles/ps_frontend.dir/codegen.cpp.o" "gcc" "src/frontend/CMakeFiles/ps_frontend.dir/codegen.cpp.o.d"
  "/root/repo/src/frontend/opt/passes.cpp" "src/frontend/CMakeFiles/ps_frontend.dir/opt/passes.cpp.o" "gcc" "src/frontend/CMakeFiles/ps_frontend.dir/opt/passes.cpp.o.d"
  "/root/repo/src/frontend/opt/rewrite.cpp" "src/frontend/CMakeFiles/ps_frontend.dir/opt/rewrite.cpp.o" "gcc" "src/frontend/CMakeFiles/ps_frontend.dir/opt/rewrite.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/frontend/CMakeFiles/ps_frontend.dir/parser.cpp.o" "gcc" "src/frontend/CMakeFiles/ps_frontend.dir/parser.cpp.o.d"
  "/root/repo/src/frontend/program_codegen.cpp" "src/frontend/CMakeFiles/ps_frontend.dir/program_codegen.cpp.o" "gcc" "src/frontend/CMakeFiles/ps_frontend.dir/program_codegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
