file(REMOVE_RECURSE
  "CMakeFiles/ps_frontend.dir/ast.cpp.o"
  "CMakeFiles/ps_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/ps_frontend.dir/codegen.cpp.o"
  "CMakeFiles/ps_frontend.dir/codegen.cpp.o.d"
  "CMakeFiles/ps_frontend.dir/opt/passes.cpp.o"
  "CMakeFiles/ps_frontend.dir/opt/passes.cpp.o.d"
  "CMakeFiles/ps_frontend.dir/opt/rewrite.cpp.o"
  "CMakeFiles/ps_frontend.dir/opt/rewrite.cpp.o.d"
  "CMakeFiles/ps_frontend.dir/parser.cpp.o"
  "CMakeFiles/ps_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/ps_frontend.dir/program_codegen.cpp.o"
  "CMakeFiles/ps_frontend.dir/program_codegen.cpp.o.d"
  "libps_frontend.a"
  "libps_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
