# Empty compiler generated dependencies file for ps_frontend.
# This may be replaced when dependencies are built.
