file(REMOVE_RECURSE
  "libps_util.a"
)
