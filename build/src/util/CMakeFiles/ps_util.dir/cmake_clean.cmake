file(REMOVE_RECURSE
  "CMakeFiles/ps_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/ps_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/ps_util.dir/csv.cpp.o"
  "CMakeFiles/ps_util.dir/csv.cpp.o.d"
  "CMakeFiles/ps_util.dir/rng.cpp.o"
  "CMakeFiles/ps_util.dir/rng.cpp.o.d"
  "CMakeFiles/ps_util.dir/stats.cpp.o"
  "CMakeFiles/ps_util.dir/stats.cpp.o.d"
  "CMakeFiles/ps_util.dir/strings.cpp.o"
  "CMakeFiles/ps_util.dir/strings.cpp.o.d"
  "CMakeFiles/ps_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ps_util.dir/thread_pool.cpp.o.d"
  "libps_util.a"
  "libps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
