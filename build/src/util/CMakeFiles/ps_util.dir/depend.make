# Empty dependencies file for ps_util.
# This may be replaced when dependencies are built.
