file(REMOVE_RECURSE
  "CMakeFiles/ps_core.dir/compiler.cpp.o"
  "CMakeFiles/ps_core.dir/compiler.cpp.o.d"
  "CMakeFiles/ps_core.dir/corpus_runner.cpp.o"
  "CMakeFiles/ps_core.dir/corpus_runner.cpp.o.d"
  "CMakeFiles/ps_core.dir/program_compiler.cpp.o"
  "CMakeFiles/ps_core.dir/program_compiler.cpp.o.d"
  "CMakeFiles/ps_core.dir/superblock.cpp.o"
  "CMakeFiles/ps_core.dir/superblock.cpp.o.d"
  "libps_core.a"
  "libps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
