
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/block.cpp" "src/ir/CMakeFiles/ps_ir.dir/block.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/block.cpp.o.d"
  "/root/repo/src/ir/block_parser.cpp" "src/ir/CMakeFiles/ps_ir.dir/block_parser.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/block_parser.cpp.o.d"
  "/root/repo/src/ir/dag.cpp" "src/ir/CMakeFiles/ps_ir.dir/dag.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/dag.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/ir/CMakeFiles/ps_ir.dir/interp.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/interp.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "src/ir/CMakeFiles/ps_ir.dir/opcode.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/opcode.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/ps_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/program_parser.cpp" "src/ir/CMakeFiles/ps_ir.dir/program_parser.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/program_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
