file(REMOVE_RECURSE
  "libps_ir.a"
)
