file(REMOVE_RECURSE
  "CMakeFiles/ps_ir.dir/block.cpp.o"
  "CMakeFiles/ps_ir.dir/block.cpp.o.d"
  "CMakeFiles/ps_ir.dir/block_parser.cpp.o"
  "CMakeFiles/ps_ir.dir/block_parser.cpp.o.d"
  "CMakeFiles/ps_ir.dir/dag.cpp.o"
  "CMakeFiles/ps_ir.dir/dag.cpp.o.d"
  "CMakeFiles/ps_ir.dir/interp.cpp.o"
  "CMakeFiles/ps_ir.dir/interp.cpp.o.d"
  "CMakeFiles/ps_ir.dir/opcode.cpp.o"
  "CMakeFiles/ps_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/ps_ir.dir/program.cpp.o"
  "CMakeFiles/ps_ir.dir/program.cpp.o.d"
  "CMakeFiles/ps_ir.dir/program_parser.cpp.o"
  "CMakeFiles/ps_ir.dir/program_parser.cpp.o.d"
  "libps_ir.a"
  "libps_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
