# Empty dependencies file for ps_ir.
# This may be replaced when dependencies are built.
