file(REMOVE_RECURSE
  "libps_synth.a"
)
