file(REMOVE_RECURSE
  "CMakeFiles/ps_synth.dir/corpus.cpp.o"
  "CMakeFiles/ps_synth.dir/corpus.cpp.o.d"
  "CMakeFiles/ps_synth.dir/generator.cpp.o"
  "CMakeFiles/ps_synth.dir/generator.cpp.o.d"
  "libps_synth.a"
  "libps_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
