# Empty dependencies file for ps_synth.
# This may be replaced when dependencies are built.
