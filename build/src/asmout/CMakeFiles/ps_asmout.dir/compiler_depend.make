# Empty compiler generated dependencies file for ps_asmout.
# This may be replaced when dependencies are built.
