
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmout/emitter.cpp" "src/asmout/CMakeFiles/ps_asmout.dir/emitter.cpp.o" "gcc" "src/asmout/CMakeFiles/ps_asmout.dir/emitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ps_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/ps_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
