file(REMOVE_RECURSE
  "libps_asmout.a"
)
