file(REMOVE_RECURSE
  "CMakeFiles/ps_asmout.dir/emitter.cpp.o"
  "CMakeFiles/ps_asmout.dir/emitter.cpp.o.d"
  "libps_asmout.a"
  "libps_asmout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_asmout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
