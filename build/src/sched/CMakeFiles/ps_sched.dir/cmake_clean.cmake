file(REMOVE_RECURSE
  "CMakeFiles/ps_sched.dir/exhaustive_scheduler.cpp.o"
  "CMakeFiles/ps_sched.dir/exhaustive_scheduler.cpp.o.d"
  "CMakeFiles/ps_sched.dir/greedy_scheduler.cpp.o"
  "CMakeFiles/ps_sched.dir/greedy_scheduler.cpp.o.d"
  "CMakeFiles/ps_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/ps_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/ps_sched.dir/optimal_scheduler.cpp.o"
  "CMakeFiles/ps_sched.dir/optimal_scheduler.cpp.o.d"
  "CMakeFiles/ps_sched.dir/schedule.cpp.o"
  "CMakeFiles/ps_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/ps_sched.dir/split_scheduler.cpp.o"
  "CMakeFiles/ps_sched.dir/split_scheduler.cpp.o.d"
  "CMakeFiles/ps_sched.dir/timing.cpp.o"
  "CMakeFiles/ps_sched.dir/timing.cpp.o.d"
  "libps_sched.a"
  "libps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
