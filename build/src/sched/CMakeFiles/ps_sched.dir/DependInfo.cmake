
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/exhaustive_scheduler.cpp" "src/sched/CMakeFiles/ps_sched.dir/exhaustive_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/exhaustive_scheduler.cpp.o.d"
  "/root/repo/src/sched/greedy_scheduler.cpp" "src/sched/CMakeFiles/ps_sched.dir/greedy_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/greedy_scheduler.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/ps_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/optimal_scheduler.cpp" "src/sched/CMakeFiles/ps_sched.dir/optimal_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/optimal_scheduler.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/ps_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/split_scheduler.cpp" "src/sched/CMakeFiles/ps_sched.dir/split_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/split_scheduler.cpp.o.d"
  "/root/repo/src/sched/timing.cpp" "src/sched/CMakeFiles/ps_sched.dir/timing.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ps_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
