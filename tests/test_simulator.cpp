// Cross-checks between the cycle-stepped simulator (architecture's view,
// Section 2.2) and the scheduler's timing engine (compiler's view) — the
// paper's point that the delay mechanism is orthogonal to scheduling.
#include <gtest/gtest.h>

#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

struct SimCase {
  std::string machine;
  std::uint64_t seed;
};

class SimulatorCrossCheck : public testing::TestWithParam<SimCase> {};

TEST_P(SimulatorCrossCheck, InterlockStallsEqualPaddedNops) {
  // For every scheduler's output: hardware-interlock stalls on the bare
  // order must equal the NOPs the timing engine inserted, and the padded
  // stream must validate hazard-free.
  const Machine machine = Machine::preset(GetParam().machine);
  GeneratorParams params;
  params.statements = 9;
  params.variables = 5;
  params.constants = 2;
  params.seed = GetParam().seed;
  const BasicBlock block = generate_block(params);
  if (block.empty()) GTEST_SKIP();
  const DepGraph dag(block);

  std::vector<Schedule> schedules;
  schedules.push_back(list_schedule(machine, dag));
  schedules.push_back(greedy_schedule(machine, dag));
  SearchConfig config;
  config.curtail_lambda = 20000;
  schedules.push_back(optimal_schedule(machine, dag, config).best);

  for (const Schedule& s : schedules) {
    const SimResult padded = validate_padded(machine, dag, s);
    EXPECT_TRUE(padded.ok) << padded.error;
    EXPECT_EQ(padded.total_delay, s.total_nops());
    EXPECT_EQ(padded.completion_cycle, s.completion_cycle());

    // On heterogeneous machines the hardware's first-free dispatch may
    // pick different units than the scheduler intended; replay the
    // scheduler's own assignment for an exact cross-check.
    const SimResult interlocked =
        machine.has_heterogeneous_alternatives()
            ? simulate_interlocked(machine, dag, s.order, s.unit)
            : simulate_interlocked(machine, dag, s.order);
    EXPECT_EQ(interlocked.total_delay, s.total_nops());
    EXPECT_EQ(interlocked.completion_cycle, s.completion_cycle());
    EXPECT_EQ(interlocked.issue_cycle, s.issue_cycle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorCrossCheck,
    testing::ValuesIn([] {
      std::vector<SimCase> cases;
      for (const std::string& machine : Machine::preset_names()) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
          cases.push_back({machine, seed * 31});
        }
      }
      return cases;
    }()),
    [](const testing::TestParamInfo<SimCase>& param_info) {
      std::string name =
          param_info.param.machine + "_seed" + std::to_string(param_info.param.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Simulator, DetectsDependenceHazard) {
  // Hand-build a padded schedule with too few NOPs; validation must fail.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n");
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  Schedule bogus = evaluate_order(machine, dag, {0, 1});
  ASSERT_GT(bogus.nops[1], 0);
  bogus.nops[1] = 0;  // strip the required delay
  const SimResult result = validate_padded(machine, dag, bogus);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not ready"), std::string::npos);
}

TEST(Simulator, DetectsConflictHazard) {
  const BasicBlock muls = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Mul 1, 2\n"
      "4: Mul 2, 1\n");
  const Machine machine = Machine::paper_simulation();  // mul enqueue 2
  const DepGraph dag(muls);
  Schedule bogus = evaluate_order(machine, dag, {0, 1, 2, 3});
  ASSERT_GT(bogus.nops[3], 0);  // multiplier enqueue forces a gap
  bogus.nops[3] = 0;
  const SimResult result = validate_padded(machine, dag, bogus);
  EXPECT_FALSE(result.ok);
}

TEST(Simulator, ExplicitTagsMatchEta) {
  const Machine machine = Machine::risc_classic();
  GeneratorParams params;
  params.statements = 7;
  params.variables = 4;
  params.constants = 2;
  params.seed = 17;
  const BasicBlock block = generate_block(params);
  const DepGraph dag(block);
  const Schedule s = list_schedule(machine, dag);
  const std::vector<int> tags = explicit_wait_tags(machine, dag, s.order);
  ASSERT_EQ(tags.size(), s.nops.size());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(tags[i], s.nops[i]) << "position " << i;
  }
}

TEST(Simulator, TraceRendersOccupancy) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Mul 1, 1\n"
      "3: Store #a, 2\n");
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  const SimResult result =
      simulate_interlocked(machine, dag, {0, 1, 2});
  const std::string trace = render_pipeline_trace(machine, block, result);
  EXPECT_NE(trace.find("cycle"), std::string::npos);
  EXPECT_NE(trace.find("loader"), std::string::npos);
  EXPECT_NE(trace.find("multiplier"), std::string::npos);
}

TEST(Simulator, ParallelUnitsAbsorbConflicts) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n");
  const DepGraph dag(block);
  // One loader: enqueue 1 -> no stalls anyway; use unpipelined units where
  // loader enqueue==latency==3 to see real serialization.
  const SimResult serial = simulate_interlocked(
      Machine::unpipelined_units(), dag, {0, 1, 2});
  EXPECT_GT(serial.total_delay, 0);
  const SimResult dual =
      simulate_interlocked(Machine::paper_example(), dag, {0, 1, 2});
  EXPECT_EQ(dual.total_delay, 0);
}

}  // namespace
}  // namespace pipesched
