// Tests for the process-wide metrics registry: typed instruments,
// per-thread sharded accumulation, exposition formats, and the exact
// reconciliation between registry totals and SearchStats.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "ir/dag.hpp"
#include "prometheus_grammar.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/corpus.hpp"
#include "synth/generator.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace pipesched {
namespace {

/// Every test runs against the one process-wide registry, so each starts
/// from a clean slate and leaves metrics disabled.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_enable();
    metrics_reset();
  }
  void TearDown() override {
    metrics_disable();
    metrics_reset();
  }
};

TEST_F(MetricsTest, CounterCountsAndResets) {
  Counter& c = metrics_counter("test_counter_basic_total");
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.add(0);
  EXPECT_EQ(c.value(), 42u);
  metrics_reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, DisabledInstrumentsDropUpdates) {
  Counter& c = metrics_counter("test_counter_disabled_total");
  Gauge& g = metrics_gauge("test_gauge_disabled");
  LogHistogram& h = metrics_histogram("test_histo_disabled_seconds");
  metrics_disable();
  c.increment();
  g.set(7);
  h.observe(0.5);
  metrics_enable();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.totals().count, 0u);
}

TEST_F(MetricsTest, MultiThreadedHammerSumsExactly) {
  Counter& c = metrics_counter("test_counter_hammer_total");
  LogHistogram& h = metrics_histogram("test_histo_hammer_seconds");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kIncrements; ++i) {
        c.increment();
        h.observe(0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const LogHistogram::Totals totals = h.totals();
  EXPECT_EQ(totals.count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_NEAR(totals.sum, kThreads * kIncrements * 0.001, 1e-6);
}

TEST_F(MetricsTest, DuplicateRegistrationReturnsSameInstrument) {
  Counter& a = metrics_counter("test_counter_dup_total", {{"k", "v"}});
  Counter& b = metrics_counter("test_counter_dup_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  // Label order does not matter: sorted at registration.
  Counter& c = metrics_counter("test_counter_dup_total",
                               {{"z", "1"}, {"a", "2"}});
  Counter& d = metrics_counter("test_counter_dup_total",
                               {{"a", "2"}, {"z", "1"}});
  EXPECT_EQ(&c, &d);
  EXPECT_NE(&a, &c);
}

TEST_F(MetricsTest, LabelCardinalityKeepsSeriesIndependent) {
  Counter& x = metrics_counter("test_counter_labels_total", {{"rule", "x"}});
  Counter& y = metrics_counter("test_counter_labels_total", {{"rule", "y"}});
  x.add(3);
  y.add(5);
  EXPECT_EQ(x.value(), 3u);
  EXPECT_EQ(y.value(), 5u);
  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_EQ(snapshot.value_or_zero("test_counter_labels_total",
                                   {{"rule", "x"}}),
            3.0);
  EXPECT_EQ(snapshot.value_or_zero("test_counter_labels_total",
                                   {{"rule", "y"}}),
            5.0);
}

TEST_F(MetricsTest, TypeConflictAndBadNamesThrow) {
  metrics_counter("test_conflict_total");
  EXPECT_THROW(metrics_gauge("test_conflict_total"), Error);
  // Same family, different labels, different type: still a conflict.
  EXPECT_THROW(metrics_histogram("test_conflict_total", {{"a", "b"}}),
               Error);
  EXPECT_THROW(metrics_counter(""), Error);
  EXPECT_THROW(metrics_counter("0starts_with_digit"), Error);
  EXPECT_THROW(metrics_counter("has-dash"), Error);
  EXPECT_THROW(metrics_counter("ok_name", {{"0bad", "v"}}), Error);
  EXPECT_THROW(metrics_counter("ok_name", {{"le", "v"}}), Error);
  EXPECT_THROW(metrics_counter("ok_name", {{"dup", "1"}, {"dup", "2"}}),
               Error);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = metrics_gauge("test_gauge_basic");
  g.set(4.5);
  EXPECT_EQ(g.value(), 4.5);
  g.add(1.5);
  EXPECT_EQ(g.value(), 6.0);
  g.add(-6.0);
  EXPECT_EQ(g.value(), 0.0);
}

TEST(LogHistogramBuckets, BoundariesAreExact) {
  // Bucket k covers (2^(k-1), 2^k]: an exact power of two belongs to the
  // bucket it bounds.
  const int base = -LogHistogram::kMinExp;  // index of le=2^0
  EXPECT_EQ(LogHistogram::bucket_index(1.0), base);
  EXPECT_EQ(LogHistogram::bucket_index(2.0), base + 1);
  EXPECT_EQ(LogHistogram::bucket_index(1.0000001), base + 1);
  EXPECT_EQ(LogHistogram::bucket_index(0.5), base - 1);
  EXPECT_EQ(LogHistogram::bucket_index(0.500001), base);
  // Tiny and non-positive values land in the first bucket.
  EXPECT_EQ(LogHistogram::bucket_index(0.0), 0);
  EXPECT_EQ(LogHistogram::bucket_index(-3.0), 0);
  EXPECT_EQ(LogHistogram::bucket_index(1e-12), 0);
  EXPECT_EQ(LogHistogram::bucket_index(std::ldexp(1.0, LogHistogram::kMinExp)),
            0);
  // Values beyond the largest finite bound overflow to +Inf.
  EXPECT_EQ(LogHistogram::bucket_index(
                std::ldexp(1.0, LogHistogram::kMaxExp)),
            LogHistogram::kBuckets - 2);
  EXPECT_EQ(LogHistogram::bucket_index(
                std::ldexp(1.0, LogHistogram::kMaxExp) * 1.01),
            LogHistogram::kBuckets - 1);
  // bucket_le is consistent with bucket_index: a value lands in the
  // first bucket whose upper bound is >= the value.
  for (int i = 0; i + 1 < LogHistogram::kBuckets; ++i) {
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_le(i)), i);
  }
  EXPECT_TRUE(std::isinf(
      LogHistogram::bucket_le(LogHistogram::kBuckets - 1)));
}

TEST_F(MetricsTest, HistogramCumulativeBucketsInSnapshot) {
  LogHistogram& h = metrics_histogram("test_histo_cumulative_seconds");
  h.observe(0.75);  // bucket le=1
  h.observe(1.0);   // bucket le=1 (boundary)
  h.observe(1.5);   // bucket le=2
  const MetricsSnapshot snapshot = metrics_snapshot();
  const MetricsSnapshot::Series* s =
      snapshot.find("test_histo_cumulative_seconds");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 3u);
  EXPECT_NEAR(s->sum, 3.25, 1e-12);
  const auto le1 =
      static_cast<std::size_t>(LogHistogram::bucket_index(1.0));
  EXPECT_EQ(s->buckets[le1], 2u);      // cumulative: <= 1
  EXPECT_EQ(s->buckets[le1 + 1], 3u);  // <= 2
  EXPECT_EQ(s->buckets.back(), 3u);    // +Inf always equals count
}

TEST_F(MetricsTest, PrometheusExportPassesGrammarCheck) {
  metrics_counter("test_prom_counter_total", {{"rule", "alpha_beta"}},
                  "help text with \\ backslash")
      .add(7);
  metrics_counter("test_prom_counter_total", {{"rule", "window"}}).add(2);
  metrics_gauge("test_prom_gauge", {}, "a gauge").set(1.25);
  metrics_histogram("test_prom_seconds", {{"stage", "parse"}}, "seconds")
      .observe(0.01);
  std::ostringstream out;
  metrics_snapshot().write_prometheus(out);
  check_prometheus_grammar(out.str());
  // Spot-check the histogram expansion.
  const std::string text = out.str();
  EXPECT_NE(text.find("test_prom_seconds_bucket{stage=\"parse\",le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_sum{stage=\"parse\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_count{stage=\"parse\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_seconds histogram"),
            std::string::npos);
}

TEST_F(MetricsTest, PrometheusEscapesLabelValues) {
  metrics_counter("test_prom_escape_total",
                  {{"msg", "a\"b\\c\nd"}})
      .increment();
  std::ostringstream out;
  metrics_snapshot().write_prometheus(out);
  EXPECT_NE(out.str().find("msg=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST_F(MetricsTest, JsonExportRoundTripsThroughParser) {
  metrics_counter("test_json_counter_total", {{"k", "v"}}).add(9);
  metrics_gauge("test_json_gauge").set(-2.5);
  metrics_histogram("test_json_seconds").observe(0.25);
  std::ostringstream out;
  metrics_snapshot().write_json(out);
  const JsonValue doc = parse_json(out.str());
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  bool found = false;
  for (const JsonValue& c : counters->as_array()) {
    if (c.find("name")->as_string() != "test_json_counter_total") continue;
    found = true;
    EXPECT_EQ(c.find("value")->as_number(), 9.0);
    EXPECT_EQ(c.find("labels")->find("k")->as_string(), "v");
  }
  EXPECT_TRUE(found);
  const JsonValue* histograms = doc.find("histograms");
  ASSERT_NE(histograms, nullptr);
  bool histo_found = false;
  for (const JsonValue& h : histograms->as_array()) {
    if (h.find("name")->as_string() != "test_json_seconds") continue;
    histo_found = true;
    EXPECT_EQ(h.find("count")->as_number(), 1.0);
    const auto& buckets = h.find("buckets")->as_array();
    ASSERT_EQ(buckets.size(),
              static_cast<std::size_t>(LogHistogram::kBuckets));
    EXPECT_EQ(buckets.back().find("le")->as_string(), "+Inf");
    EXPECT_EQ(buckets.back().find("count")->as_number(), 1.0);
  }
  EXPECT_TRUE(histo_found);
}

TEST_F(MetricsTest, WriteDispatchesOnExtension) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ps_metrics_write_test";
  fs::create_directories(dir);
  metrics_counter("test_write_total").add(3);

  const std::string prom = (dir / "out.prom").string();
  const std::string json = (dir / "out.json").string();
  metrics_write(prom);
  metrics_write(json);
  std::ifstream promf(prom);
  std::stringstream promtext;
  promtext << promf.rdbuf();
  EXPECT_NE(promtext.str().find("test_write_total 3"), std::string::npos);
  EXPECT_EQ(parse_json_file(json)
                .find("counters")
                ->as_array()
                .empty(),
            false);
  EXPECT_THROW(metrics_write((dir / "out.csv").string()), Error);
  fs::remove_all(dir);
}

TEST_F(MetricsTest, SummaryLineCountsKinds) {
  // Registrations persist for the process lifetime, so count deltas
  // rather than absolute numbers (other tests register instruments too).
  auto parse_counts = [] {
    const std::string line = metrics_summary_line();
    int series = 0, counters = 0, gauges = 0, histograms = 0;
    const int got = std::sscanf(
        line.c_str(), "metrics: %d series (%d counters, %d gauges, %d",
        &series, &counters, &gauges, &histograms);
    EXPECT_EQ(got, 4) << line;
    return std::array<int, 4>{series, counters, gauges, histograms};
  };
  const auto before = parse_counts();
  metrics_counter("test_summary_a_total");
  metrics_counter("test_summary_b_total");
  metrics_gauge("test_summary_gauge");
  metrics_histogram("test_summary_seconds");
  const auto after = parse_counts();
  EXPECT_EQ(after[0], before[0] + 4);
  EXPECT_EQ(after[1], before[1] + 2);
  EXPECT_EQ(after[2], before[2] + 1);
  EXPECT_EQ(after[3], before[3] + 1);
}

TEST_F(MetricsTest, SearchTotalsExactlyEqualSearchStats) {
  // Run a few searches and check the registry's totals are exactly the
  // sum of the per-search SearchStats counters — the reconciliation
  // property the instrumentation promises.
  CorpusSpec spec;
  spec.total_runs = 12;
  const std::vector<GeneratorParams> params = corpus_params(spec);
  const Machine machine = Machine::paper_simulation();
  SearchConfig config;
  config.curtail_lambda = 5000;

  SearchStats sum;
  std::uint64_t searches = 0;
  std::uint64_t curtailed = 0;
  for (const GeneratorParams& p : params) {
    const BasicBlock block = generate_block(p);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const OptimalResult result = optimal_schedule(machine, dag, config);
    ++searches;
    sum.nodes_expanded += result.stats.nodes_expanded;
    sum.omega_calls += result.stats.omega_calls;
    sum.schedules_examined += result.stats.schedules_examined;
    sum.incumbent_improvements += result.stats.incumbent_improvements;
    sum.pruned_window += result.stats.pruned_window;
    sum.pruned_readiness += result.stats.pruned_readiness;
    sum.pruned_equivalence += result.stats.pruned_equivalence;
    sum.pruned_alpha_beta += result.stats.pruned_alpha_beta;
    sum.pruned_lower_bound += result.stats.pruned_lower_bound;
    sum.pruned_dominance += result.stats.pruned_dominance;
    sum.pruned_pressure += result.stats.pruned_pressure;
    sum.cache_probes += result.stats.cache_probes;
    sum.cache_hits += result.stats.cache_hits;
    sum.cache_misses += result.stats.cache_misses;
    if (result.stats.curtail_reason == CurtailReason::Lambda) ++curtailed;
  }
  ASSERT_GT(searches, 0u);

  const MetricsSnapshot snapshot = metrics_snapshot();
  auto total = [&](const char* name, MetricLabels labels = {}) {
    return static_cast<std::uint64_t>(
        snapshot.value_or_zero(name, labels));
  };
  EXPECT_EQ(total("ps_search_runs_total"), searches);
  EXPECT_EQ(total("ps_search_nodes_expanded_total"), sum.nodes_expanded);
  EXPECT_EQ(total("ps_search_omega_calls_total"), sum.omega_calls);
  EXPECT_EQ(total("ps_search_schedules_examined_total"),
            sum.schedules_examined);
  EXPECT_EQ(total("ps_search_incumbent_improvements_total"),
            sum.incumbent_improvements);
  EXPECT_EQ(total("ps_search_pruned_total", {{"rule", "window"}}),
            sum.pruned_window);
  EXPECT_EQ(total("ps_search_pruned_total", {{"rule", "readiness"}}),
            sum.pruned_readiness);
  EXPECT_EQ(total("ps_search_pruned_total", {{"rule", "equivalence"}}),
            sum.pruned_equivalence);
  EXPECT_EQ(total("ps_search_pruned_total", {{"rule", "alpha_beta"}}),
            sum.pruned_alpha_beta);
  EXPECT_EQ(total("ps_search_pruned_total", {{"rule", "lower_bound"}}),
            sum.pruned_lower_bound);
  EXPECT_EQ(total("ps_search_pruned_total", {{"rule", "dominance"}}),
            sum.pruned_dominance);
  EXPECT_EQ(total("ps_search_pruned_total", {{"rule", "pressure"}}),
            sum.pruned_pressure);
  EXPECT_EQ(total("ps_search_cache_events_total", {{"event", "probe"}}),
            sum.cache_probes);
  EXPECT_EQ(total("ps_search_cache_events_total", {{"event", "hit"}}),
            sum.cache_hits);
  EXPECT_EQ(total("ps_search_cache_events_total", {{"event", "miss"}}),
            sum.cache_misses);
  EXPECT_EQ(total("ps_search_curtailed_total", {{"reason", "lambda"}}),
            curtailed);
  const MetricsSnapshot::Series* seconds =
      snapshot.find("ps_search_seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->count, searches);
}

TEST_F(MetricsTest, ThreadPoolMetricsCountTasks) {
  const MetricsSnapshot before = metrics_snapshot();
  const double tasks_before =
      before.value_or_zero("ps_thread_pool_tasks_total");
  {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 10);
  }
  const MetricsSnapshot after = metrics_snapshot();
  EXPECT_EQ(after.value_or_zero("ps_thread_pool_tasks_total"),
            tasks_before + 10);
  // All submitted work drained, so the queue-depth gauge is back to its
  // starting level.
  EXPECT_EQ(after.value_or_zero("ps_thread_pool_queue_depth"),
            before.value_or_zero("ps_thread_pool_queue_depth"));
}

TEST_F(MetricsTest, CompileStagesObserveDurations) {
  CompileOptions options;
  const CompileResult result = compile_source(
      "a = x + y;\nb = a * z;\nc = b + a;\n", options);
  EXPECT_FALSE(result.assembly.empty());
  const MetricsSnapshot snapshot = metrics_snapshot();
  for (const char* stage :
       {"parse", "optimize", "dag_build", "schedule", "regalloc", "emit"}) {
    const MetricsSnapshot::Series* s = snapshot.find(
        "ps_compile_stage_seconds", {{"stage", stage}});
    ASSERT_NE(s, nullptr) << stage;
    EXPECT_GE(s->count, 1u) << stage;
  }
}

}  // namespace
}  // namespace pipesched
