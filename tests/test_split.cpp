// Tests for the Section 5.3 block-splitting scheduler.
#include <gtest/gtest.h>

#include "ir/dag.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sched/split_scheduler.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

BasicBlock big_block(std::uint64_t seed, int statements = 40) {
  GeneratorParams params;
  params.statements = statements;
  params.variables = 8;
  params.constants = 3;
  params.seed = seed;
  return generate_block(params);
}

TEST(Split, ProducesLegalSchedules) {
  const Machine machine = Machine::paper_simulation();
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const BasicBlock block = big_block(seed);
    if (block.empty()) continue;
    const DepGraph dag(block);
    SplitConfig config;
    config.window_size = 10;
    const SplitResult result = split_schedule(machine, dag, config);
    EXPECT_TRUE(dag.is_legal_order(result.schedule.order)) << seed;
    EXPECT_EQ(result.schedule.total_nops(), result.stats.best_nops);
    EXPECT_EQ(result.windows,
              (static_cast<int>(block.size()) + 9) / 10);
  }
}

TEST(Split, NeverWorseThanTheListSchedule) {
  // Guaranteed: each window starts from the list order as incumbent.
  const Machine machine = Machine::paper_simulation();
  for (std::uint64_t seed = 20; seed <= 40; ++seed) {
    const BasicBlock block = big_block(seed, 30);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const int list_nops = list_schedule(machine, dag).total_nops();
    for (int window : {5, 10, 20}) {
      SplitConfig config;
      config.window_size = window;
      const SplitResult result = split_schedule(machine, dag, config);
      EXPECT_LE(result.schedule.total_nops(), list_nops)
          << "seed " << seed << " window " << window;
    }
  }
}

TEST(Split, EqualsGlobalOptimumWhenWindowCoversBlock) {
  const Machine machine = Machine::paper_simulation();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorParams params;
    params.statements = 5;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed * 13;
    const BasicBlock block = generate_block(params);
    if (block.empty() || block.size() > 14) continue;
    const DepGraph dag(block);

    SearchConfig full;
    full.curtail_lambda = 0;
    const int optimum =
        optimal_schedule(machine, dag, full).best.total_nops();

    SplitConfig config;
    config.window_size = static_cast<int>(block.size());
    config.search.curtail_lambda = 0;
    const SplitResult result = split_schedule(machine, dag, config);
    EXPECT_EQ(result.schedule.total_nops(), optimum) << seed;
    EXPECT_TRUE(result.stats.completed);
  }
}

TEST(Split, WindowLambdaBoundsWork) {
  const Machine machine = Machine::paper_simulation();
  const BasicBlock block = big_block(99, 50);
  const DepGraph dag(block);
  SplitConfig config;
  config.window_size = 15;
  config.search.curtail_lambda = 5;
  const SplitResult result = split_schedule(machine, dag, config);
  EXPECT_TRUE(dag.is_legal_order(result.schedule.order));
  // Total placements bounded by windows * (lambda + slack for the final
  // placements of the attempt in flight).
  EXPECT_LE(result.stats.omega_calls,
            static_cast<std::uint64_t>(result.windows) *
                (5 + block.size()));
}

TEST(Split, HandlesWindowSizeOne) {
  // Degenerate split: every window has a single instruction, so the result
  // is exactly the list schedule.
  const Machine machine = Machine::paper_simulation();
  const BasicBlock block = big_block(7, 12);
  const DepGraph dag(block);
  SplitConfig config;
  config.window_size = 1;
  const SplitResult result = split_schedule(machine, dag, config);
  EXPECT_EQ(result.schedule.order, list_schedule_order(dag));
  EXPECT_EQ(result.schedule.total_nops(),
            list_schedule(machine, dag).total_nops());
}

TEST(Split, SmallerWindowsTradeQualityForTime) {
  // Not a theorem, but across a sample total NOPs must be monotone-ish:
  // window >= n is optimal, window 1 is the list schedule; intermediate
  // windows land in between on aggregate.
  const Machine machine = Machine::paper_simulation();
  long nops_w1 = 0;
  long nops_w10 = 0;
  long nops_full = 0;
  for (std::uint64_t seed = 50; seed <= 70; ++seed) {
    const BasicBlock block = big_block(seed, 25);
    if (block.empty()) continue;
    const DepGraph dag(block);
    SplitConfig w1;
    w1.window_size = 1;
    SplitConfig w10;
    w10.window_size = 10;
    SplitConfig wfull;
    wfull.window_size = static_cast<int>(block.size());
    wfull.search.curtail_lambda = 100000;
    nops_w1 += split_schedule(machine, dag, w1).schedule.total_nops();
    nops_w10 += split_schedule(machine, dag, w10).schedule.total_nops();
    nops_full += split_schedule(machine, dag, wfull).schedule.total_nops();
  }
  EXPECT_LE(nops_w10, nops_w1);
  EXPECT_LE(nops_full, nops_w10);
}

TEST(Split, WorksOnEveryMachinePreset) {
  for (const std::string& name : Machine::preset_names()) {
    const Machine machine = Machine::preset(name);
    const BasicBlock block = big_block(5, 25);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const int list_nops = list_schedule(machine, dag).total_nops();
    SplitConfig config;
    config.window_size = 8;
    const SplitResult result = split_schedule(machine, dag, config);
    EXPECT_TRUE(dag.is_legal_order(result.schedule.order)) << name;
    EXPECT_LE(result.schedule.total_nops(), list_nops) << name;
  }
}

}  // namespace
}  // namespace pipesched
