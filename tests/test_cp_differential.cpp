// Cross-solver differential oracle: the CP backend and the
// branch-and-bound backend implement the same optimization problem with
// disjoint search strategies and pruning theories, so on any (block,
// machine) pair they must report the same optimal NOP count — or both
// prove pressure-infeasibility. Thousands of randomized pairs, every
// returned schedule validated cycle-level on the simulator, make this
// the strongest correctness anchor in the suite: a bug in either
// backend's propagation or pruning rules shows up as a disagreement
// long before it would be noticed in an end-to-end run.
//
// On mismatch the failure message carries the full generator parameters,
// machine description and tuple block, and the block is additionally
// dumped in `psc --tuples` replay form next to the test binary.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "ir/dag.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/cp_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

/// Same randomized-machine idiom as test_fuzz: 1-4 pipelines with
/// independent latency/enqueue, each opcode mapped to a random non-empty
/// unit subset (or left sigma-empty) so heterogeneous-alternative
/// branching is exercised, not just the symmetric presets.
Machine random_machine(Rng& rng) {
  Machine machine("diff-random");
  const int units = 1 + static_cast<int>(rng.next_below(4));
  for (int u = 0; u < units; ++u) {
    machine.add_pipeline("u" + std::to_string(u),
                         1 + static_cast<int>(rng.next_below(6)),
                         1 + static_cast<int>(rng.next_below(4)));
  }
  for (Opcode op : {Opcode::Load, Opcode::Mov, Opcode::Neg, Opcode::Add,
                    Opcode::Sub, Opcode::Mul, Opcode::Div}) {
    if (!rng.next_bool(0.8)) continue;
    std::vector<PipelineId> subset;
    for (int u = 0; u < units; ++u) {
      if (rng.next_bool()) subset.push_back(u);
    }
    if (subset.empty()) subset.push_back(static_cast<PipelineId>(
        rng.next_below(static_cast<std::uint64_t>(units))));
    machine.map_op(op, subset);
  }
  return machine;
}

/// Everything needed to replay one pair by hand, inlined into the
/// assertion output so a CI log alone reproduces the failure.
std::string describe_case(std::size_t pair, const GeneratorParams& params,
                          const Machine& machine, const BasicBlock& block,
                          int max_live) {
  std::ostringstream oss;
  oss << "pair " << pair << ": generator{seed=" << params.seed
      << ", statements=" << params.statements
      << ", variables=" << params.variables
      << ", constants=" << params.constants
      << ", optimize=" << params.optimize << "}, max_live=" << max_live
      << "\nmachine:\n" << machine.to_string() << "block:\n"
      << block.to_string();
  return oss.str();
}

/// Best-effort `psc --tuples` replay dump for the failing pair.
void dump_reproducer(std::size_t pair, const GeneratorParams& params,
                     const BasicBlock& block) {
  const std::string path =
      "cp_differential_pair_" + std::to_string(pair) + ".tuples";
  std::ofstream out(path);
  if (!out.good()) return;
  out << "; cp/bnb differential mismatch, generator seed " << params.seed
      << "\n; replay: psc --tuples " << path << "\n" << block.to_string();
}

/// Cycle-level validation of one returned schedule: legal order, padded
/// form hazard-free, and interlock stalls equal to the NOPs the backend
/// claims it inserted.
void validate_schedule(const Machine& machine, const DepGraph& dag,
                       const Schedule& schedule, const char* backend,
                       const std::string& context) {
  ASSERT_TRUE(dag.is_legal_order(schedule.order)) << backend << "\n"
                                                  << context;
  const SimResult padded = validate_padded(machine, dag, schedule);
  ASSERT_TRUE(padded.ok) << backend << ": " << padded.error << "\n"
                         << context;
  const SimResult interlocked =
      machine.has_heterogeneous_alternatives()
          ? simulate_interlocked(machine, dag, schedule.order, schedule.unit)
          : simulate_interlocked(machine, dag, schedule.order);
  ASSERT_EQ(interlocked.total_delay, schedule.total_nops())
      << backend << "\n" << context;
}

TEST(CpDifferential, AgreesWithBranchAndBoundAtScale) {
  Rng rng(0xD1FFC0DE);
  const std::vector<std::string> presets = Machine::preset_names();
  std::size_t pairs = 0;
  std::size_t infeasible_pairs = 0;
  std::size_t pressure_pairs = 0;
  std::size_t cp_wins_shape = 0;  // pairs where CP explored fewer nodes
  std::size_t heterogeneous = 0;

  for (std::size_t trial = 0; pairs < 2200; ++trial) {
    ASSERT_LT(trial, 6000u) << "generator kept producing empty blocks";
    // 1 preset pair in 5 keeps the committed machines covered; the rest
    // are randomized descriptions, where disagreement is most likely.
    const Machine machine =
        trial % 5 == 0
            ? Machine::preset(presets[trial / 5 % presets.size()])
            : random_machine(rng);
    if (machine.has_heterogeneous_alternatives()) ++heterogeneous;

    GeneratorParams params;
    params.statements = 2 + static_cast<int>(rng.next_below(7));
    params.variables = 3 + static_cast<int>(rng.next_below(5));
    params.constants = 1 + static_cast<int>(rng.next_below(4));
    params.seed = rng.next_u64();
    params.optimize = rng.next_bool(0.7);
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);

    SearchConfig config;
    // Generous valve only: the pairs are sized to complete outright, and
    // a curtailed pair proves nothing, so completion is asserted below.
    config.curtail_lambda = 5'000'000;
    // Every third pair runs pressure-constrained, tight enough that a
    // good fraction is infeasible — the branch where the backends must
    // agree on the *absence* of any schedule.
    if (trial % 3 == 0) {
      config.max_live_registers = 3 + static_cast<int>(rng.next_below(3));
      ++pressure_pairs;
    }

    const std::string context =
        describe_case(pairs, params, machine, block,
                      config.max_live_registers);
    const OptimalResult bnb = optimal_schedule(machine, dag, config);
    const ScheduleResult cp = cp_schedule(machine, dag, config);
    ASSERT_TRUE(bnb.stats.completed) << "bnb curtailed\n" << context;
    ASSERT_TRUE(cp.stats.completed) << "cp curtailed\n" << context;

    if (bnb.stats.feasible != cp.stats.feasible ||
        (bnb.stats.feasible && bnb.stats.best_nops != cp.stats.best_nops)) {
      dump_reproducer(pairs, params, block);
    }
    ASSERT_EQ(bnb.stats.feasible, cp.stats.feasible) << context;
    if (!bnb.stats.feasible) {
      ASSERT_EQ(bnb.stats.best_nops, -1) << context;
      ASSERT_EQ(cp.stats.best_nops, -1) << context;
      ++infeasible_pairs;
      ++pairs;
      continue;
    }
    ASSERT_EQ(bnb.stats.best_nops, cp.stats.best_nops) << context;
    ASSERT_EQ(bnb.best.total_nops(), bnb.stats.best_nops) << context;
    ASSERT_EQ(cp.schedule.total_nops(), cp.stats.best_nops) << context;

    validate_schedule(machine, dag, bnb.best, "bnb", context);
    validate_schedule(machine, dag, cp.schedule, "cp", context);

    if (config.max_live_registers > 0) {
      // A feasible pressure-constrained answer must actually fit.
      for (const Schedule* s : {&bnb.best, &cp.schedule}) {
        ASSERT_LE(max_live(compute_live_ranges(block, s->order)),
                  config.max_live_registers)
            << context;
      }
    }
    if (cp.stats.nodes_expanded < bnb.stats.nodes_expanded) ++cp_wins_shape;
    ++pairs;
  }

  EXPECT_GE(pairs, 2000u);
  // The sweep must actually exercise the hard branches, not skate by on
  // easy instances: some pressure-infeasible pairs, some heterogeneous
  // machines, and each backend ahead on search shape somewhere.
  EXPECT_GT(infeasible_pairs, 0u);
  EXPECT_GT(pressure_pairs, 0u);
  EXPECT_GT(heterogeneous, 0u);
  EXPECT_GT(cp_wins_shape, 0u);
  EXPECT_LT(cp_wins_shape, pairs);
}

/// Residual pipeline occupancy at block entry changes earliest start
/// times for the first instructions; the backends must agree there too
/// (the corpus runs with drained entry, so this branch needs its own
/// sweep).
TEST(CpDifferential, AgreesUnderResidualEntryState) {
  Rng rng(0xE9712);
  std::size_t pairs = 0;
  for (std::size_t trial = 0; pairs < 200; ++trial) {
    ASSERT_LT(trial, 1000u);
    const Machine machine = random_machine(rng);
    GeneratorParams params;
    params.statements = 2 + static_cast<int>(rng.next_below(6));
    params.variables = 3 + static_cast<int>(rng.next_below(4));
    params.constants = 1 + static_cast<int>(rng.next_below(3));
    params.seed = rng.next_u64();
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);

    PipelineState entry = PipelineState::drained(machine);
    for (std::size_t u = 0; u < machine.pipeline_count(); ++u) {
      if (rng.next_bool()) {
        entry.unit_last_issue[u] = -static_cast<int>(rng.next_below(3));
      }
    }

    SearchConfig config;
    config.curtail_lambda = 5'000'000;
    const OptimalResult bnb = optimal_schedule(machine, dag, config, entry);
    const ScheduleResult cp = cp_schedule(machine, dag, config, entry);
    ASSERT_TRUE(bnb.stats.completed && cp.stats.completed);
    ASSERT_EQ(bnb.stats.best_nops, cp.stats.best_nops)
        << describe_case(pairs, params, machine, block, 0);
    ++pairs;
  }
}

}  // namespace
}  // namespace pipesched
