// Tests for the list scheduler (Section 3.2) and the Gross-style greedy
// baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

TEST(ListScheduler, ProducesLegalOrdersOnRandomBlocks) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorParams params;
    params.statements = 10;
    params.variables = 5;
    params.constants = 3;
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    EXPECT_TRUE(dag.is_legal_order(list_schedule_order(dag))) << seed;
  }
}

TEST(ListScheduler, IsDeterministic) {
  GeneratorParams params;
  params.statements = 12;
  params.variables = 6;
  params.constants = 2;
  params.seed = 5;
  const BasicBlock block = generate_block(params);
  const DepGraph dag(block);
  EXPECT_EQ(list_schedule_order(dag), list_schedule_order(dag));
}

TEST(ListScheduler, InterleavesIndependentChains) {
  // Two independent load->neg chains: the list heuristic must not emit one
  // chain completely before the other (that would minimize producer-to-
  // consumer distance instead of maximizing it).
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n"
      "3: Load #b\n"
      "4: Neg 3\n");
  const DepGraph dag(block);
  const std::vector<TupleIndex> order = list_schedule_order(dag);
  // Both loads (heights 1) must precede both negs (heights 0).
  const auto pos = [&](TupleIndex t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(0), pos(3));
  EXPECT_LT(pos(2), pos(1));
}

TEST(ListScheduler, IgnoresMachineParameters) {
  // The paper: the initial schedule is independent of the pipeline tables.
  // Our API enforces this by construction (list_schedule_order takes no
  // machine); evaluating it against different machines changes only NOPs.
  GeneratorParams params;
  params.statements = 8;
  params.variables = 4;
  params.constants = 2;
  params.seed = 9;
  const BasicBlock block = generate_block(params);
  const DepGraph dag(block);
  const std::vector<TupleIndex> order = list_schedule_order(dag);
  const Schedule a = evaluate_order(Machine::paper_simulation(), dag, order);
  const Schedule b = evaluate_order(Machine::risc_classic(), dag, order);
  EXPECT_EQ(a.order, b.order);
}

TEST(GreedyScheduler, ProducesLegalOrdersOnRandomBlocks) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorParams params;
    params.statements = 10;
    params.variables = 5;
    params.constants = 3;
    params.seed = seed + 100;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const Schedule s = greedy_schedule(Machine::paper_simulation(), dag);
    EXPECT_TRUE(dag.is_legal_order(s.order)) << seed;
  }
}

TEST(GreedyScheduler, HidesLatencyWhereObviouslyPossible) {
  // la; use(la); lb; use(lb) stalls; greedy should start both loads first.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n"
      "3: Load #b\n"
      "4: Neg 3\n"
      "5: Store #a, 2\n"
      "6: Store #b, 4\n");
  const DepGraph dag(block);
  const Machine machine = Machine::risc_classic();
  const Schedule greedy = greedy_schedule(machine, dag);
  const Schedule naive = evaluate_order(machine, dag, {0, 1, 2, 3, 4, 5});
  EXPECT_LT(greedy.total_nops(), naive.total_nops());
}

TEST(GreedyScheduler, NeverBeatsButMayMatchListOnTrivialBlocks) {
  // On a pure chain every legal schedule is identical.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n"
      "3: Neg 2\n"
      "4: Store #a, 3\n");
  const DepGraph dag(block);
  const Machine machine = Machine::paper_simulation();
  EXPECT_EQ(greedy_schedule(machine, dag).total_nops(),
            list_schedule(machine, dag).total_nops());
}

TEST(Schedule, PositionOfAndToString) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n");
  const DepGraph dag(block);
  const Machine machine = Machine::paper_simulation();
  const Schedule s = evaluate_order(machine, dag, {0, 1});
  EXPECT_EQ(s.position_of(0), 1);
  EXPECT_EQ(s.position_of(1), 2);
  EXPECT_EQ(s.position_of(5), -1);
  const std::string text = s.to_string(block, machine);
  EXPECT_NE(text.find("NOP"), std::string::npos);
  EXPECT_NE(text.find("total NOPs: 1"), std::string::npos);
}

}  // namespace
}  // namespace pipesched
