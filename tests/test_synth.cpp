// Tests for the synthetic benchmark generator and the 16,000-block corpus
// construction (Section 5.2).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "synth/corpus.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

TEST(Generator, DeterministicInSeed) {
  GeneratorParams params;
  params.statements = 10;
  params.variables = 5;
  params.constants = 3;
  params.seed = 42;
  EXPECT_EQ(generate_source(params).to_string(),
            generate_source(params).to_string());
  EXPECT_EQ(generate_block(params).to_string(),
            generate_block(params).to_string());
  GeneratorParams other = params;
  other.seed = 43;
  EXPECT_NE(generate_source(other).to_string(),
            generate_source(params).to_string());
}

TEST(Generator, HonoursStatementCount) {
  for (int statements : {1, 5, 20}) {
    GeneratorParams params;
    params.statements = statements;
    params.seed = 3;
    EXPECT_EQ(generate_source(params).statements.size(),
              static_cast<std::size_t>(statements));
  }
}

TEST(Generator, StaysWithinVariableAndConstantPools) {
  GeneratorParams params;
  params.statements = 50;
  params.variables = 3;
  params.constants = 2;
  params.seed = 5;
  params.optimize = false;
  const BasicBlock block = generate_block(params);
  EXPECT_LE(block.var_count(), 3u);
  std::set<std::int64_t> constants;
  for (const Tuple& t : block.tuples()) {
    if (t.op == Opcode::Const) constants.insert(t.a.imm);
  }
  EXPECT_LE(constants.size(), 2u);
}

TEST(Generator, FrequencyTableIsNormalizable) {
  double total = 0;
  for (const StatementForm& f : statement_frequency_table()) {
    EXPECT_GT(f.weight, 0) << f.pattern;
    total += f.weight;
  }
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(Generator, StatementMixRoughlyFollowsTable) {
  // Large sample: the Add-family forms must dominate Mul which dominates
  // Div, mirroring the AlW75-flavoured weights.
  GeneratorParams params;
  params.statements = 4000;
  params.variables = 6;
  params.constants = 3;
  params.seed = 11;
  const SourceProgram source = generate_source(params);
  std::map<Expr::Kind, int> kinds;
  for (const Stmt& s : source.statements) ++kinds[s.value->kind];
  EXPECT_GT(kinds[Expr::Kind::Add], kinds[Expr::Kind::Mul]);
  EXPECT_GT(kinds[Expr::Kind::Mul], kinds[Expr::Kind::Div]);
  EXPECT_GT(kinds[Expr::Kind::Sub], 0);
  EXPECT_GT(kinds[Expr::Kind::Negate], 0);
}

TEST(Generator, OptimizedBlocksValidate) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorParams params;
    params.statements = 12;
    params.variables = 5;
    params.constants = 3;
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    EXPECT_NO_THROW(block.validate()) << seed;
  }
}

TEST(Corpus, ProducesRequestedRunCount) {
  CorpusSpec spec;
  spec.total_runs = 500;
  const auto params = corpus_params(spec);
  EXPECT_EQ(params.size(), 500u);
  // Seeds are distinct.
  std::set<std::uint64_t> seeds;
  for (const auto& p : params) seeds.insert(p.seed);
  EXPECT_EQ(seeds.size(), params.size());
}

TEST(Corpus, CoversTheParameterLattice) {
  CorpusSpec spec;
  spec.total_runs = 2000;
  const auto params = corpus_params(spec);
  std::set<int> statements;
  std::set<int> variables;
  std::set<int> constants;
  for (const auto& p : params) {
    statements.insert(p.statements);
    variables.insert(p.variables);
    constants.insert(p.constants);
  }
  EXPECT_GE(statements.size(), 8u);
  EXPECT_GE(variables.size(), 5u);
  EXPECT_GE(constants.size(), 3u);
}

TEST(Corpus, BlockSizesAverageNearPaper) {
  // The paper's corpus averaged 20.6 instructions/block with a tail past
  // 40 (Figure 5). Check our reconstruction lands in that regime on a
  // sample.
  CorpusSpec spec;
  spec.total_runs = 400;
  const auto params = corpus_params(spec);
  double total = 0;
  int max_size = 0;
  for (const auto& p : params) {
    const int size = static_cast<int>(generate_block(p).size());
    total += size;
    max_size = std::max(max_size, size);
  }
  const double avg = total / static_cast<double>(params.size());
  EXPECT_GT(avg, 12.0);
  EXPECT_LT(avg, 30.0);
  EXPECT_GT(max_size, 35);
}

}  // namespace
}  // namespace pipesched
