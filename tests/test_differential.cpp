// Differential oracle for the branch-and-bound scheduler and its
// state-dominance cache.
//
// Three layers of cross-checking, all on small synthetic blocks where the
// exhaustive scheduler is tractable ground truth:
//
//   1. Oracle equality: on ~500 generated blocks across every machine
//      preset, the branch-and-bound optimum equals the exhaustive optimum
//      with the cache enabled AND disabled — an unsound dominance prune
//      (one that discards all optima of some state) fails here.
//   2. Cache on/off agreement under a register-pressure ceiling: both
//      configurations must report the same `feasible` flag and, when
//      feasible, the same optimal cost — pressure feasibility is a
//      function of the placed set, so the cache may never flip it.
//   3. Telemetry invariants on a fixed-seed corpus: the SearchStats
//      counters must stay internally consistent (hits + misses == probes;
//      nodes expanded with the cache <= without; probes bounded by
//      expansions), so a silent telemetry regression fails loudly.
#include <gtest/gtest.h>

#include "core/corpus_runner.hpp"
#include "ir/dag.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/corpus.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

SearchConfig exhaustion(bool cache) {
  SearchConfig config;
  config.curtail_lambda = 0;
  config.dominance_cache = cache;
  return config;
}

TEST(Differential, OptimalMatchesExhaustiveOracleCacheOnAndOff) {
  const auto& machines = Machine::preset_names();
  int checked = 0;
  for (std::uint64_t seed = 1; checked < 500 && seed <= 6000; ++seed) {
    const Machine machine =
        Machine::preset(machines[seed % machines.size()]);
    GeneratorParams params;
    params.statements = 2 + static_cast<int>(seed % 4);
    params.variables = 3;
    params.constants = 2;
    params.seed = seed * 7919;
    const BasicBlock block = generate_block(params);
    if (block.empty() || block.size() > 11) continue;
    const DepGraph dag(block);

    // Ground truth; skip the rare block whose legal-order count explodes.
    const ExhaustiveResult truth = exhaustive_schedule(machine, dag, 300000);
    if (!truth.completed) continue;
    const int optimum = truth.best.total_nops();

    const OptimalResult with_cache =
        optimal_schedule(machine, dag, exhaustion(true));
    const OptimalResult without_cache =
        optimal_schedule(machine, dag, exhaustion(false));

    ASSERT_TRUE(with_cache.stats.completed);
    ASSERT_TRUE(without_cache.stats.completed);
    ASSERT_EQ(with_cache.best.total_nops(), optimum)
        << "cache ON diverges from exhaustive oracle: machine="
        << machine.name() << " seed=" << params.seed << "\n"
        << block.to_string();
    ASSERT_EQ(without_cache.best.total_nops(), optimum)
        << "cache OFF diverges from exhaustive oracle: machine="
        << machine.name() << " seed=" << params.seed;
    ASSERT_EQ(with_cache.stats.feasible, without_cache.stats.feasible);
    ASSERT_TRUE(dag.is_legal_order(with_cache.best.order));
    ++checked;
  }
  EXPECT_GE(checked, 500) << "generator produced too few oracle blocks";
}

TEST(Differential, CacheAgreesUnderRegisterPressure) {
  // Feasibility under a register ceiling depends only on the scheduled
  // set, never on the path that built it — so cache on/off must agree on
  // `feasible` and, when feasible, on the optimal cost. Ceilings 3..5
  // cover infeasible, barely-feasible and comfortable blocks.
  int feasible_seen = 0;
  int infeasible_seen = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    GeneratorParams params;
    params.statements = 3 + static_cast<int>(seed % 3);
    params.variables = 4;
    params.constants = 2;
    params.seed = seed * 104729;
    const BasicBlock block = generate_block(params);
    if (block.empty() || block.size() > 10) continue;
    const DepGraph dag(block);
    const Machine machine = Machine::paper_simulation();

    for (int ceiling = 3; ceiling <= 5; ++ceiling) {
      SearchConfig on = exhaustion(true);
      on.max_live_registers = ceiling;
      SearchConfig off = exhaustion(false);
      off.max_live_registers = ceiling;

      const OptimalResult r_on = optimal_schedule(machine, dag, on);
      const OptimalResult r_off = optimal_schedule(machine, dag, off);
      ASSERT_EQ(r_on.stats.feasible, r_off.stats.feasible)
          << "seed=" << params.seed << " ceiling=" << ceiling;
      if (r_on.stats.feasible) {
        ASSERT_EQ(r_on.best.total_nops(), r_off.best.total_nops())
            << "seed=" << params.seed << " ceiling=" << ceiling;
        ++feasible_seen;
      } else {
        ++infeasible_seen;
      }
    }
  }
  // The sweep must have exercised both outcomes to mean anything.
  EXPECT_GT(feasible_seen, 0);
  EXPECT_GT(infeasible_seen, 0);
}

TEST(CacheTelemetry, CountersAreInternallyConsistent) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    GeneratorParams params;
    params.statements = 6 + static_cast<int>(seed % 5);
    params.variables = 4;
    params.constants = 2;
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const Machine machine = Machine::paper_simulation();

    SearchConfig on = exhaustion(true);
    on.curtail_lambda = 200000;
    SearchConfig off = exhaustion(false);
    off.curtail_lambda = 200000;

    const OptimalResult r_on = optimal_schedule(machine, dag, on);
    const OptimalResult r_off = optimal_schedule(machine, dag, off);

    // Cache-side ledger.
    EXPECT_EQ(r_on.stats.cache_hits + r_on.stats.cache_misses,
              r_on.stats.cache_probes)
        << "seed " << seed;
    // One probe per non-root, non-leaf expansion.
    EXPECT_LE(r_on.stats.cache_probes, r_on.stats.nodes_expanded)
        << "seed " << seed;
    // Every hit prunes a subtree, so the cached search can only shrink.
    EXPECT_LE(r_on.stats.nodes_expanded, r_off.stats.nodes_expanded)
        << "seed " << seed;
    EXPECT_LE(r_on.stats.omega_calls, r_off.stats.omega_calls)
        << "seed " << seed;
    // Disabled cache must report dead-zero telemetry.
    EXPECT_EQ(r_off.stats.cache_probes, 0u);
    EXPECT_EQ(r_off.stats.cache_hits, 0u);
    EXPECT_EQ(r_off.stats.cache_evictions, 0u);
    // And both must agree on the result when both completed.
    if (r_on.stats.completed && r_off.stats.completed) {
      EXPECT_EQ(r_on.best.total_nops(), r_off.best.total_nops())
          << "seed " << seed;
    }
  }
}

TEST(CacheTelemetry, CorpusRunnerThreadsCacheCounters) {
  // The aggregation path must carry the new counters end to end: run a
  // small fixed corpus and check the summary's cache columns are live.
  CorpusSpec spec;
  spec.total_runs = 60;
  CorpusRunOptions options;
  options.machine = Machine::paper_simulation();
  options.search.curtail_lambda = 20000;
  options.threads = 2;
  const auto records = run_corpus(corpus_params(spec), options);

  std::uint64_t probes = 0, hits = 0, nodes = 0;
  for (const RunRecord& r : records) {
    probes += r.cache_probes;
    hits += r.cache_hits;
    nodes += r.nodes_expanded;
    EXPECT_LE(r.cache_hits, r.cache_probes);
  }
  EXPECT_GT(nodes, 0u);
  EXPECT_GT(probes, 0u);

  const CorpusSummary summary = summarize_corpus(records);
  EXPECT_GT(summary.total.avg_nodes_expanded, 0.0);
  if (hits > 0) {
    EXPECT_GT(summary.total.cache_hit_percent, 0.0);
  }
  const std::string rendered = render_corpus_summary(summary);
  EXPECT_NE(rendered.find("Nodes Expanded"), std::string::npos);
  EXPECT_NE(rendered.find("Cache Hit Rate"), std::string::npos);
}

}  // namespace
}  // namespace pipesched
