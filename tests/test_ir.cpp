// Unit tests for the tuple IR: opcodes, block construction, validation,
// the Figure 3 text notation, and the reference interpreter.
#include <gtest/gtest.h>

#include <limits>

#include "ir/block.hpp"
#include "ir/block_parser.hpp"
#include "ir/interp.hpp"
#include "util/check.hpp"

namespace pipesched {
namespace {

TEST(Opcode, TraitsMatchTaxonomy) {
  EXPECT_EQ(opcode_arity(Opcode::Const), 1);
  EXPECT_EQ(opcode_arity(Opcode::Store), 2);
  EXPECT_EQ(opcode_arity(Opcode::Neg), 1);
  EXPECT_EQ(opcode_arity(Opcode::Add), 2);
  EXPECT_FALSE(opcode_has_result(Opcode::Store));
  EXPECT_TRUE(opcode_has_result(Opcode::Load));
  EXPECT_TRUE(opcode_is_commutative(Opcode::Add));
  EXPECT_TRUE(opcode_is_commutative(Opcode::Mul));
  EXPECT_FALSE(opcode_is_commutative(Opcode::Sub));
  EXPECT_FALSE(opcode_is_commutative(Opcode::Div));
  EXPECT_TRUE(opcode_is_binary_arith(Opcode::Div));
  EXPECT_FALSE(opcode_is_binary_arith(Opcode::Load));
}

TEST(Opcode, NameRoundTrip) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto parsed = opcode_from_name(opcode_name(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(opcode_from_name("Bogus").has_value());
}

TEST(Block, VariableInterningIsStable) {
  BasicBlock block;
  const VarId a = block.var_id("a");
  const VarId b = block.var_id("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(block.var_id("a"), a);
  EXPECT_EQ(block.var_name(a), "a");
  EXPECT_EQ(block.find_var("b"), b);
  EXPECT_EQ(block.find_var("zz"), -1);
  EXPECT_EQ(block.var_count(), 2u);
}

TEST(Block, ValidationRejectsForwardReferences) {
  BasicBlock block;
  Tuple t;
  t.op = Opcode::Neg;
  t.a = Operand::of_ref(0);  // references itself (index 0 == its own slot)
  EXPECT_THROW(block.append(t), Error);
}

TEST(Block, ValidationRejectsReferencesToValuelessTuples) {
  BasicBlock block;
  const VarId v = block.var_id("v");
  const TupleIndex c = block.append(Opcode::Const, Operand::of_imm(1));
  const TupleIndex st =
      block.append(Opcode::Store, Operand::of_var(v), Operand::of_ref(c));
  Tuple bad;
  bad.op = Opcode::Neg;
  bad.a = Operand::of_ref(st);  // Store has no result
  EXPECT_THROW(block.append(bad), Error);
}

TEST(Block, ValidationEnforcesOperandKinds) {
  BasicBlock block;
  EXPECT_THROW(block.append(Opcode::Const, Operand::of_var(0)), Error);
  EXPECT_THROW(block.append(Opcode::Load, Operand::of_imm(3)), Error);
  const VarId v = block.var_id("v");
  EXPECT_THROW(
      block.append(Opcode::Store, Operand::of_var(v), Operand::of_var(v)),
      Error);
}

// The exact block of the paper's Figure 3.
const char* kFigure3 =
    "1: Const \"15\"\n"
    "2: Store #b, 1\n"
    "3: Load #a\n"
    "4: Mul 1, 3\n"
    "5: Store #a, 4\n";

TEST(BlockParser, ParsesFigure3) {
  const BasicBlock block = parse_block(kFigure3);
  ASSERT_EQ(block.size(), 5u);
  EXPECT_EQ(block.tuple(0).op, Opcode::Const);
  EXPECT_EQ(block.tuple(0).a.imm, 15);
  EXPECT_EQ(block.tuple(1).op, Opcode::Store);
  EXPECT_EQ(block.var_name(block.tuple(1).a.var), "b");
  EXPECT_EQ(block.tuple(3).op, Opcode::Mul);
  EXPECT_EQ(block.tuple(3).a.ref, 0);
  EXPECT_EQ(block.tuple(3).b.ref, 2);
}

TEST(BlockParser, RoundTripsThroughToString) {
  const BasicBlock block = parse_block(kFigure3);
  const BasicBlock again = parse_block(block.to_string());
  ASSERT_EQ(again.size(), block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(again.tuple(static_cast<TupleIndex>(i)),
              block.tuple(static_cast<TupleIndex>(i)));
  }
}

TEST(BlockParser, AcceptsCommentsAndLabels) {
  const BasicBlock block = parse_block(
      "entry:\n"
      "1: Const \"3\"   ; the constant three\n"
      "\n"
      "2: Store #x, 1\n");
  EXPECT_EQ(block.label(), "entry");
  EXPECT_EQ(block.size(), 2u);
}

TEST(BlockParser, RejectsMisnumberedTuples) {
  EXPECT_THROW(parse_block("2: Const \"1\"\n"), Error);
  EXPECT_THROW(parse_block("1: Const \"1\"\n3: Const \"2\"\n"), Error);
}

TEST(BlockParser, RejectsUnknownOpcodeAndTrailingGarbage) {
  EXPECT_THROW(parse_block("1: Frob #x\n"), Error);
  EXPECT_THROW(parse_block("1: Const \"1\" extra\n"), Error);
}

TEST(Interp, Figure3Semantics) {
  // { b = 15; a = b * a; } with a initially 4: a' = 60, b' = 15.
  const BasicBlock block = parse_block(kFigure3);
  VarEnv initial;
  initial[block.find_var("a")] = 4;
  const ExecResult result = interpret(block, initial);
  EXPECT_EQ(result.final_vars.at(block.find_var("a")), 60);
  EXPECT_EQ(result.final_vars.at(block.find_var("b")), 15);
}

TEST(Interp, DivisionByZeroYieldsZero) {
  const BasicBlock block = parse_block(
      "1: Const \"5\"\n"
      "2: Const \"0\"\n"
      "3: Div 1, 2\n"
      "4: Store #q, 3\n");
  const ExecResult result = interpret(block);
  EXPECT_EQ(result.final_vars.at(block.find_var("q")), 0);
}

TEST(Interp, LegalReorderingPreservesSemantics) {
  const BasicBlock block = parse_block(kFigure3);
  VarEnv initial;
  initial[block.find_var("a")] = 7;
  const ExecResult base = interpret(block, initial);
  // Legal alternative order: Load a first, then Const, stores in dep order.
  const ExecResult reordered =
      interpret_in_order(block, initial, {2, 0, 1, 3, 4});
  EXPECT_EQ(base.final_vars, reordered.final_vars);
}

TEST(Interp, RejectsNonPermutationOrders) {
  const BasicBlock block = parse_block(kFigure3);
  EXPECT_THROW(interpret_in_order(block, {}, {0, 1, 2, 3}), Error);
  EXPECT_THROW(interpret_in_order(block, {}, {0, 0, 1, 2, 3}), Error);
}

TEST(Interp, EvalOpWrapsLikeHardware) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(eval_op(Opcode::Add, max, 1),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval_op(Opcode::Sub, 0, 1), -1);
  EXPECT_EQ(eval_op(Opcode::Neg, std::numeric_limits<std::int64_t>::min(), 0),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval_op(Opcode::Div, std::numeric_limits<std::int64_t>::min(), -1),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval_op(Opcode::Mul, 1ll << 62, 4), 0);
}

}  // namespace
}  // namespace pipesched
