// Unit and property tests for the dependence DAG (Definitions 2, 6, 7 and
// the legal-order machinery behind Table 1).
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

const char* kFigure3 =
    "1: Const \"15\"\n"
    "2: Store #b, 1\n"
    "3: Load #a\n"
    "4: Mul 1, 3\n"
    "5: Store #a, 4\n";

bool has_edge(const DepGraph& dag, TupleIndex from, TupleIndex to,
              DepKind kind) {
  return std::any_of(dag.edges().begin(), dag.edges().end(),
                     [&](const DepEdge& e) {
                       return e.from == from && e.to == to && e.kind == kind;
                     });
}

TEST(Dag, Figure3EdgesAreExactlyRight) {
  const BasicBlock block = parse_block(kFigure3);
  const DepGraph dag(block);
  EXPECT_EQ(dag.edges().size(), 5u);
  EXPECT_TRUE(has_edge(dag, 0, 1, DepKind::Flow));   // Const -> Store b
  EXPECT_TRUE(has_edge(dag, 0, 3, DepKind::Flow));   // Const -> Mul
  EXPECT_TRUE(has_edge(dag, 2, 3, DepKind::Flow));   // Load a -> Mul
  EXPECT_TRUE(has_edge(dag, 3, 4, DepKind::Flow));   // Mul -> Store a
  EXPECT_TRUE(has_edge(dag, 2, 4, DepKind::Anti));   // Load a before Store a
}

TEST(Dag, MemoryDependenceChains) {
  // Store x; Load x; Store x: memflow then anti then output.
  const BasicBlock block = parse_block(
      "1: Const \"1\"\n"
      "2: Store #x, 1\n"
      "3: Load #x\n"
      "4: Const \"2\"\n"
      "5: Store #x, 4\n");
  const DepGraph dag(block);
  EXPECT_TRUE(has_edge(dag, 1, 2, DepKind::MemFlow));  // Store -> Load
  EXPECT_TRUE(has_edge(dag, 2, 4, DepKind::Anti));     // Load -> 2nd Store
  EXPECT_TRUE(has_edge(dag, 1, 4, DepKind::Output));   // Store -> Store
}

TEST(Dag, IndependentVariablesShareNoEdges) {
  const BasicBlock block = parse_block(
      "1: Load #x\n"
      "2: Load #y\n"
      "3: Store #x2, 1\n"
      "4: Store #y2, 2\n");
  const DepGraph dag(block);
  EXPECT_EQ(dag.edges().size(), 2u);  // only the two flow edges
  EXPECT_TRUE(dag.pred_set(1).is_disjoint_from(dag.pred_set(0)));
}

TEST(Dag, EarliestAndLatestPositions) {
  const BasicBlock block = parse_block(kFigure3);
  const DepGraph dag(block);
  // Const (tuple 1): no ancestors, two descendants in its future? Const
  // feeds Store b and Mul; Mul feeds Store a => 3 descendants.
  EXPECT_EQ(dag.earliest_position(0), 1);
  EXPECT_EQ(dag.latest_position(0), 5 - 3);
  // Store a (tuple 5): ancestors {Const, Load, Mul} -> earliest 4; sink.
  EXPECT_EQ(dag.earliest_position(4), 4);
  EXPECT_EQ(dag.latest_position(4), 5);
  // Load a (tuple 3): source; descendants {Mul, Store a}.
  EXPECT_EQ(dag.earliest_position(2), 1);
  EXPECT_EQ(dag.latest_position(2), 3);
}

TEST(Dag, HeightsDepthsAndCriticalPath) {
  const BasicBlock block = parse_block(kFigure3);
  const DepGraph dag(block);
  // Chain Const -> Mul -> Store a has length 3.
  EXPECT_EQ(dag.critical_path_length(), 3);
  EXPECT_EQ(dag.height(0), 2);  // Const: two hops below (Mul, Store)
  EXPECT_EQ(dag.depth(4), 2);   // Store a: two hops above
  EXPECT_EQ(dag.depth(0), 0);
  EXPECT_EQ(dag.height(4), 0);
}

TEST(Dag, TransitiveClosureIsConsistentWithEdges) {
  GeneratorParams params;
  params.statements = 8;
  params.variables = 4;
  params.constants = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    const DepGraph dag(block);
    for (std::size_t i = 0; i < dag.size(); ++i) {
      const auto index = static_cast<TupleIndex>(i);
      // Immediate preds are ancestors; ancestor-of-ancestor is ancestor.
      for (TupleIndex p : dag.preds(index)) {
        EXPECT_TRUE(dag.ancestors(index).test(static_cast<std::size_t>(p)));
        EXPECT_TRUE(dag.ancestors(p).is_subset_of(dag.ancestors(index)));
        EXPECT_TRUE(
            dag.descendants(p).test(static_cast<std::size_t>(index)));
      }
      // earliest/latest window is always feasible.
      EXPECT_LE(dag.earliest_position(index), dag.latest_position(index));
    }
  }
}

TEST(Dag, IsLegalOrderAcceptsAndRejects) {
  const BasicBlock block = parse_block(kFigure3);
  const DepGraph dag(block);
  EXPECT_TRUE(dag.is_legal_order({0, 1, 2, 3, 4}));
  EXPECT_TRUE(dag.is_legal_order({2, 0, 3, 1, 4}));
  EXPECT_FALSE(dag.is_legal_order({1, 0, 2, 3, 4}));  // Store b before Const
  EXPECT_FALSE(dag.is_legal_order({0, 1, 2, 3}));     // wrong size
  EXPECT_FALSE(dag.is_legal_order({0, 0, 2, 3, 4}));  // repeat
}

TEST(Dag, CountTopologicalOrdersSmallCases) {
  // Independent tuples: n! orders.
  const BasicBlock indep = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n");
  EXPECT_EQ(count_topological_orders(DepGraph(indep), 1000), 6u);

  // A pure chain admits exactly one order.
  const BasicBlock chain = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n"
      "3: Neg 2\n"
      "4: Store #a, 3\n");
  EXPECT_EQ(count_topological_orders(DepGraph(chain), 1000), 1u);

  // Figure 3: enumerate by hand = 5 positions constrained; verified value.
  const BasicBlock fig3 = parse_block(kFigure3);
  const std::uint64_t n = count_topological_orders(DepGraph(fig3), 1000);
  // Cross-check against brute force over all 120 permutations.
  const DepGraph dag(fig3);
  std::vector<TupleIndex> perm = {0, 1, 2, 3, 4};
  std::uint64_t brute = 0;
  do {
    brute += dag.is_legal_order(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(n, brute);
}

TEST(Dag, CountTopologicalOrdersHonoursCap) {
  const BasicBlock indep = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n"
      "4: Load #d\n"
      "5: Load #e\n");
  EXPECT_EQ(count_topological_orders(DepGraph(indep), 10), 10u);
  EXPECT_EQ(count_topological_orders(DepGraph(indep), 1000), 120u);
}

TEST(Dag, ExtraEdgesConstrainTheOrder) {
  const BasicBlock indep = parse_block(
      "1: Load #a\n"
      "2: Load #b\n");
  const DepGraph free_dag(indep);
  EXPECT_TRUE(free_dag.is_legal_order({1, 0}));
  const DepGraph forced(indep, {{0, 1}});
  EXPECT_FALSE(forced.is_legal_order({1, 0}));
  EXPECT_TRUE(forced.is_legal_order({0, 1}));
}

TEST(Dag, FactorialHelpers) {
  EXPECT_EQ(factorial_pretty(0), "1");
  EXPECT_EQ(factorial_pretty(5), "120");
  EXPECT_EQ(factorial_pretty(15), "1,307,674,368,000");  // the 5-year number
  EXPECT_EQ(factorial_pretty(22), "1,124,000,727,777,607,680,000");  // 1.1e21
  EXPECT_NEAR(factorial_double(15), 1.307674368e12, 1e3);
}

TEST(Dag, DotRenderingContainsAllNodes) {
  const BasicBlock block = parse_block(kFigure3);
  const std::string dot = DepGraph(block).to_dot();
  for (int i = 1; i <= 5; ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
  EXPECT_NE(dot.find("anti"), std::string::npos);
}

}  // namespace
}  // namespace pipesched
