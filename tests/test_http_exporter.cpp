// Tests for the embedded observability HTTP server: request/response
// conformance (status codes, Content-Type, malformed/oversized/405/404
// rejection), lifecycle (port-in-use error, ephemeral-port discovery,
// idempotent shutdown), endpoint payloads (/metrics through the shared
// Prometheus grammar check, /status through the strict JSON parser), the
// 8-client concurrent scrape hammer with exact ps_http_requests_total
// reconciliation — which doubles as the TSan race against a live
// 4-thread parallel search — and a served 300-block corpus run that must
// answer /metrics and /status scrapes mid-run.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/corpus_runner.hpp"
#include "ir/dag.hpp"
#include "obs/http_exporter.hpp"
#include "prometheus_grammar.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/corpus.hpp"
#include "synth/generator.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/progress.hpp"

namespace pipesched {
namespace {

/// Minimal raw-socket HTTP client: one request, read to EOF (the server
/// always closes), split status/headers/body. Raw sockets rather than a
/// client library so the tests can also send deliberately broken bytes.
struct HttpResponse {
  int code = 0;
  std::string headers;  ///< raw header block (status line included)
  std::string body;
  bool ok = false;  ///< connected and got a complete response
};

HttpResponse raw_request(std::uint16_t port, const std::string& bytes) {
  HttpResponse resp;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return resp;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return resp;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return resp;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return resp;
  resp.headers = raw.substr(0, head_end);
  resp.body = raw.substr(head_end + 4);
  // "HTTP/1.1 200 OK"
  if (resp.headers.compare(0, 5, "HTTP/") != 0) return resp;
  const std::size_t sp = resp.headers.find(' ');
  if (sp == std::string::npos) return resp;
  resp.code = std::atoi(resp.headers.c_str() + sp + 1);
  resp.ok = true;
  return resp;
}

HttpResponse get(std::uint16_t port, const std::string& target) {
  return raw_request(port, "GET " + target +
                               " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                               "Connection: close\r\n\r\n");
}

bool headers_contain(const HttpResponse& resp, const std::string& needle) {
  return resp.headers.find(needle) != std::string::npos;
}

/// Every test talks to the one process-wide metrics registry, so each
/// starts from a zeroed slate (the exact-reconciliation tests depend on
/// it) and leaves the registry disabled.
class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_enable();
    metrics_reset();
  }
  void TearDown() override { metrics_disable(); }
};

TEST_F(HttpExporterTest, EphemeralPortIsDiscoverable) {
  HttpExporter server;
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.base_url(),
            "http://127.0.0.1:" + std::to_string(server.port()));
}

TEST_F(HttpExporterTest, PortInUseIsCleanError) {
  HttpExporter first;
  HttpExporterOptions options;
  options.port = first.port();
  EXPECT_THROW(HttpExporter second(options), Error);
}

TEST_F(HttpExporterTest, HealthAndReadiness) {
  HttpExporter server;
  HttpResponse health = get(server.port(), "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.code, 200);
  EXPECT_EQ(health.body, "ok\n");

  // Not ready until the host says so.
  HttpResponse ready = get(server.port(), "/readyz");
  ASSERT_TRUE(ready.ok);
  EXPECT_EQ(ready.code, 503);
  server.set_ready(true);
  EXPECT_TRUE(server.ready());
  ready = get(server.port(), "/readyz");
  ASSERT_TRUE(ready.ok);
  EXPECT_EQ(ready.code, 200);
  EXPECT_EQ(ready.body, "ready\n");
}

TEST_F(HttpExporterTest, RootIndexListsEndpoints) {
  HttpExporter server;
  const HttpResponse resp = get(server.port(), "/");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 200);
  EXPECT_NE(resp.body.find("/metrics"), std::string::npos);
  EXPECT_NE(resp.body.find("/status"), std::string::npos);
}

TEST_F(HttpExporterTest, MetricsEndpointServesValidExposition) {
  HttpExporter server;
  metrics_counter("test_http_visible_total", {}, "visible to scrapes")
      .add(42);
  const HttpResponse resp = get(server.port(), "/metrics");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 200);
  EXPECT_TRUE(headers_contain(resp, "text/plain; version=0.0.4"));
  check_prometheus_grammar(resp.body);
  EXPECT_NE(resp.body.find("test_http_visible_total 42"), std::string::npos);
  // The build-info gauge is always present on a live exporter.
  EXPECT_NE(resp.body.find("ps_build_info{"), std::string::npos);
}

TEST_F(HttpExporterTest, MetricsJsonParses) {
  HttpExporter server;
  metrics_counter("test_http_json_total").increment();
  const HttpResponse resp = get(server.port(), "/metrics.json");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 200);
  EXPECT_TRUE(headers_contain(resp, "application/json"));
  const JsonValue doc = parse_json(resp.body);
  ASSERT_TRUE(doc.find("counters") != nullptr);
  ASSERT_TRUE(doc.find("counters")->is_array());
}

TEST_F(HttpExporterTest, StatusReportsProgressAndMonitors) {
  HttpExporter server;
  server.set_ready(true);

  // A live silent reporter and a live flight recorder: /status must see
  // both through the process-wide registries.
  ProgressReporter progress(10);
  progress.add();
  progress.add(/*errored=*/true);
  SearchMonitor monitor("status-test");
  monitor.heartbeat(100, 5, 3, 50.0);
  monitor.heartbeat(200, 4, 3, 60.0);

  const HttpResponse resp = get(server.port(), "/status");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 200);
  EXPECT_TRUE(headers_contain(resp, "application/json"));
  const JsonValue doc = parse_json(resp.body);

  const JsonValue* version = doc.find_path({"build", "version"});
  ASSERT_NE(version, nullptr);
  EXPECT_FALSE(version->as_string().empty());
  ASSERT_NE(doc.find("ready"), nullptr);
  EXPECT_TRUE(doc.find("ready")->as_bool());

  const JsonValue* prog = doc.find("progress");
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(prog->find("live")->as_bool());
  EXPECT_EQ(prog->find("done")->as_int64(), 2);
  EXPECT_EQ(prog->find("total")->as_int64(), 10);
  EXPECT_EQ(prog->find("errors")->as_int64(), 1);

  const JsonValue* monitors = doc.find("monitors");
  ASSERT_NE(monitors, nullptr);
  bool found = false;
  for (const JsonValue& m : monitors->as_array()) {
    if (m.find("label")->as_string() != "status-test") continue;
    found = true;
    const auto& beats = m.find("heartbeats")->as_array();
    ASSERT_EQ(beats.size(), 2u);
    EXPECT_EQ(beats[0].find("nodes")->as_int64(), 100);
    EXPECT_EQ(beats[1].find("nodes")->as_int64(), 200);
    EXPECT_EQ(beats[1].find("incumbent_nops")->as_int64(), 4);
  }
  EXPECT_TRUE(found);
  ASSERT_NE(doc.find("stacks"), nullptr);
}

TEST_F(HttpExporterTest, StacksEndpointAnswers) {
  HttpExporter server;
  const HttpResponse resp = get(server.port(), "/stacks");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 200);
  EXPECT_FALSE(resp.body.empty());
}

TEST_F(HttpExporterTest, UnknownPathIs404) {
  HttpExporter server;
  const HttpResponse resp = get(server.port(), "/no/such/endpoint");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 404);
}

TEST_F(HttpExporterTest, NonGetIs405WithAllowHeader) {
  HttpExporter server;
  for (const char* method : {"POST", "PUT", "DELETE", "HEAD"}) {
    const HttpResponse resp = raw_request(
        server.port(), std::string(method) + " /metrics HTTP/1.1\r\n\r\n");
    ASSERT_TRUE(resp.ok) << method;
    EXPECT_EQ(resp.code, 405) << method;
    EXPECT_TRUE(headers_contain(resp, "Allow: GET")) << method;
  }
}

TEST_F(HttpExporterTest, UnsupportedVersionIs505) {
  HttpExporter server;
  const HttpResponse resp =
      raw_request(server.port(), "GET /metrics HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 505);
}

TEST_F(HttpExporterTest, MalformedRequestIs400) {
  HttpExporter server;
  for (const char* garbage :
       {"GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET  /two-spaces HTTP/1.1\r\n\r\n",
        "GET / NOTHTTP\r\n\r\n", "GET / HTTP/1.1 extra\r\n\r\n"}) {
    const HttpResponse resp = raw_request(server.port(), garbage);
    ASSERT_TRUE(resp.ok) << garbage;
    EXPECT_EQ(resp.code, 400) << garbage;
  }
}

TEST_F(HttpExporterTest, OversizedRequestIs431) {
  HttpExporter server;
  // > 8 KiB of headers with no terminating blank line.
  std::string huge = "GET /metrics HTTP/1.1\r\n";
  while (huge.size() <= 9000) huge += "X-Padding: aaaaaaaaaaaaaaaa\r\n";
  huge += "\r\n";
  const HttpResponse resp = raw_request(server.port(), huge);
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 431);
}

TEST_F(HttpExporterTest, ShutdownIsCleanAndIdempotent) {
  HttpExporterOptions options;
  HttpExporter server(options);
  const std::uint16_t port = server.port();
  ASSERT_TRUE(get(port, "/healthz").ok);
  server.stop();
  server.stop();  // idempotent
  // The port no longer answers.
  EXPECT_FALSE(get(port, "/healthz").ok);
}

TEST_F(HttpExporterTest, ProfileEndpointCollectsAndConflicts) {
  HttpExporterOptions options;
  options.max_profile_seconds = 0.3;  // clamp target
  HttpExporter server(options);

  // Busy thread with annotated phases so the window catches samples.
  std::atomic<bool> stop{false};
  std::thread busy([&stop] {
    while (!stop.load()) {
      PS_PROF_PHASE("http_profile_test");
      volatile int x = 0;
      for (int i = 0; i < 1000; ++i) x = x + i;
    }
  });

  const HttpResponse resp = get(server.port(), "/profile?seconds=0.2");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, 200);
  EXPECT_NE(resp.body.find("http_profile_test"), std::string::npos);
  EXPECT_FALSE(profiler_enabled());  // session closed after the window

  // Bad queries are 400, not silently defaulted.
  EXPECT_EQ(get(server.port(), "/profile?seconds=").code, 400);
  EXPECT_EQ(get(server.port(), "/profile?seconds=abc").code, 400);
  EXPECT_EQ(get(server.port(), "/profile?seconds=-1").code, 400);
  EXPECT_EQ(get(server.port(), "/profile?minutes=1").code, 400);

  // seconds=100 must clamp to max_profile_seconds, not sleep 100s.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(get(server.port(), "/profile?seconds=100").code, 200);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);

  // A CLI-owned --profile session makes /profile answer 409.
  profiler_enable();
  const HttpResponse conflict = get(server.port(), "/profile?seconds=0.1");
  ASSERT_TRUE(conflict.ok);
  EXPECT_EQ(conflict.code, 409);
  profiler_disable();

  stop.store(true);
  busy.join();
}

// 8 concurrent clients x 25 scrapes each, racing a live 4-thread parallel
// search (this test is the TSan lane's main target: server workers read
// the same registries the search writes). At quiescence the server's own
// ps_http_requests_total must reconcile EXACTLY with client receipts —
// the contract that only fully-written responses count.
TEST_F(HttpExporterTest, ConcurrentScrapeHammerReconcilesExactly) {
  HttpExporter server;
  server.set_ready(true);
  const std::uint16_t port = server.port();

  // The racing search: a block hard enough to stay busy through the
  // hammer, searched exhaustively by 4 workers with heartbeats flowing.
  std::thread search([] {
    GeneratorParams params;
    params.statements = 11;
    params.variables = 4;
    params.constants = 2;
    params.seed = 20260809;
    const BasicBlock block = generate_block(params);
    const DepGraph dag(block);
    SearchConfig config;
    config.curtail_lambda = 0;  // exhaustive
    config.search_threads = 4;
    (void)run_optimal_backend(Machine::paper_simulation(), dag, config);
  });

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok_health{0}, ok_status{0}, ok_metrics{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        // Mostly /healthz (the reconciled endpoint), with /status and
        // /metrics mixed in to race the JSON/exposition render paths.
        if (i % 5 == 3) {
          if (get(port, "/status").code == 200) ok_status.fetch_add(1);
        } else if (i % 5 == 4) {
          if (get(port, "/metrics").code == 200) ok_metrics.fetch_add(1);
        } else {
          if (get(port, "/healthz").code == 200) ok_health.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  search.join();

  // Every request must have succeeded.
  EXPECT_EQ(ok_health.load(), kClients * 15);
  EXPECT_EQ(ok_status.load(), kClients * 5);
  EXPECT_EQ(ok_metrics.load(), kClients * 5);

  // Exact reconciliation at quiescence, per endpoint.
  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_EQ(snapshot.value_or_zero(
                "ps_http_requests_total",
                {{"endpoint", "/healthz"}, {"code", "200"}}),
            kClients * 15);
  EXPECT_EQ(snapshot.value_or_zero(
                "ps_http_requests_total",
                {{"endpoint", "/status"}, {"code", "200"}}),
            kClients * 5);
  EXPECT_EQ(snapshot.value_or_zero(
                "ps_http_requests_total",
                {{"endpoint", "/metrics"}, {"code", "200"}}),
            kClients * 5);
  // And the latency histogram observed every one of them.
  const MetricsSnapshot::Series* latency = snapshot.find(
      "ps_http_request_seconds", {{"endpoint", "/healthz"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, static_cast<std::uint64_t>(kClients * 15));
}

// The acceptance scenario: a served 300-block corpus run must answer
// /metrics and /status while blocks are still in flight. The fault hook
// stretches each block by ~2ms so 300 blocks give the scraper a window
// measured in hundreds of milliseconds even on one core.
TEST_F(HttpExporterTest, ServedCorpusRunAnswersScrapesMidRun) {
  HttpExporter server;
  server.set_ready(true);
  const std::uint16_t port = server.port();

  CorpusSpec spec;
  spec.total_runs = 300;
  CorpusRunOptions options;
  options.fault_hook = [](std::size_t, const BasicBlock&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };

  std::atomic<bool> corpus_done{false};
  std::atomic<int> live_scrapes{0};  ///< scrapes showing 0 < done < 300
  std::atomic<int> failed{0};
  std::thread scraper([&] {
    while (!corpus_done.load()) {
      const HttpResponse status = get(port, "/status");
      const HttpResponse metrics = get(port, "/metrics");
      if (!status.ok || status.code != 200 || !metrics.ok ||
          metrics.code != 200) {
        failed.fetch_add(1);
        continue;
      }
      const JsonValue doc = parse_json(status.body);
      const JsonValue* prog = doc.find("progress");
      ASSERT_NE(prog, nullptr);
      if (prog->find("live")->as_bool()) {
        EXPECT_EQ(prog->find("total")->as_int64(), 300);
        const std::int64_t done = prog->find("done")->as_int64();
        if (done > 0 && done < 300) live_scrapes.fetch_add(1);
      }
    }
  });

  // No explicit ProgressReporter: the corpus runner's silent fallback is
  // what feeds /status here.
  const std::vector<RunRecord> records =
      run_corpus(corpus_params(spec), options);
  corpus_done.store(true);
  scraper.join();

  EXPECT_EQ(records.size(), 300u);
  EXPECT_EQ(failed.load(), 0);
  // The scraper must have caught the run mid-flight at least once.
  EXPECT_GT(live_scrapes.load(), 0);
}

}  // namespace
}  // namespace pipesched
