// Robustness and observability of the corpus harness and the search's
// wall-clock deadline:
//   * a per-block fault must not destroy the batch — the failed block gets
//     an error record plus a `--tuples` reproducer dump, the rest survive;
//   * corpus results are deterministic across thread counts (all record
//     fields except wall-clock seconds);
//   * deadline expiry curtails like lambda: completed=false, the curtail
//     reason is recorded, and the incumbent is a simulator-valid schedule;
//   * the CSV/JSONL per-block exports and the BENCH_corpus.json roll-up
//     are written and internally consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/corpus_runner.hpp"
#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace pipesched {
namespace {

std::vector<GeneratorParams> small_corpus(int count, int statements = 8) {
  std::vector<GeneratorParams> params;
  for (int i = 0; i < count; ++i) {
    GeneratorParams p;
    p.statements = statements;
    p.variables = 4;
    p.constants = 2;
    p.seed = 100 + static_cast<std::uint64_t>(i);
    params.push_back(p);
  }
  return params;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// Every deterministic field (seconds is wall-clock and excluded).
void expect_records_equal(const RunRecord& a, const RunRecord& b,
                          std::size_t index) {
  EXPECT_EQ(a.block_size, b.block_size) << index;
  EXPECT_EQ(a.initial_nops, b.initial_nops) << index;
  EXPECT_EQ(a.final_nops, b.final_nops) << index;
  EXPECT_EQ(a.omega_calls, b.omega_calls) << index;
  EXPECT_EQ(a.schedules_examined, b.schedules_examined) << index;
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded) << index;
  EXPECT_EQ(a.cache_probes, b.cache_probes) << index;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << index;
  EXPECT_EQ(a.cache_evictions, b.cache_evictions) << index;
  EXPECT_EQ(a.cache_superseded, b.cache_superseded) << index;
  EXPECT_EQ(a.completed, b.completed) << index;
  EXPECT_EQ(a.curtail_reason, b.curtail_reason) << index;
  EXPECT_EQ(a.feasible, b.feasible) << index;
  EXPECT_EQ(a.pruned_window, b.pruned_window) << index;
  EXPECT_EQ(a.pruned_readiness, b.pruned_readiness) << index;
  EXPECT_EQ(a.pruned_equivalence, b.pruned_equivalence) << index;
  EXPECT_EQ(a.pruned_alpha_beta, b.pruned_alpha_beta) << index;
  EXPECT_EQ(a.pruned_lower_bound, b.pruned_lower_bound) << index;
  EXPECT_EQ(a.pruned_dominance, b.pruned_dominance) << index;
  EXPECT_EQ(a.pruned_pressure, b.pruned_pressure) << index;
  EXPECT_EQ(a.error, b.error) << index;
}

TEST(CorpusRunner, FaultInjectionKeepsOtherRecords) {
  const auto params = small_corpus(24);
  const std::string prefix =
      (std::filesystem::path(testing::TempDir()) / "ps_repro_").string();

  CorpusRunOptions options;
  options.search.curtail_lambda = 2000;
  options.threads = 4;
  options.reproducer_prefix = prefix;
  options.fault_hook = [](std::size_t i, const BasicBlock&) {
    if (i == 7) throw Error("injected fault for testing");
  };

  const std::vector<RunRecord> records = run_corpus(params, options);
  ASSERT_EQ(records.size(), params.size());

  EXPECT_NE(records[7].error.find("injected fault"), std::string::npos);
  EXPECT_FALSE(records[7].completed);
  ASSERT_FALSE(records[7].reproducer.empty());
  EXPECT_TRUE(std::filesystem::exists(records[7].reproducer));

  // The reproducer must round-trip through the --tuples parser into the
  // exact block that failed.
  const BasicBlock replayed = parse_block(slurp(records[7].reproducer));
  EXPECT_EQ(replayed.size(), static_cast<std::size_t>(records[7].block_size));
  EXPECT_EQ(replayed.to_string(),
            generate_block(params[7]).to_string());

  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i == 7) continue;
    EXPECT_TRUE(records[i].error.empty()) << i;
    EXPECT_GT(records[i].block_size, 0) << i;
    // A zero-NOP list-schedule seed can satisfy the search before a single
    // omega call, so only the result fields are guaranteed populated.
    EXPECT_TRUE(records[i].feasible) << i;
    EXPECT_GE(records[i].final_nops, 0) << i;
  }

  const CorpusSummary summary = summarize_corpus(records);
  EXPECT_EQ(summary.total.errors, 1u);
  EXPECT_EQ(summary.completed.runs + summary.truncated.runs + 1,
            records.size());
  std::filesystem::remove(records[7].reproducer);
}

TEST(CorpusRunner, DeterministicAcrossThreadCounts) {
  const auto params = small_corpus(16);
  CorpusRunOptions serial;
  serial.search.curtail_lambda = 2000;
  serial.threads = 1;
  CorpusRunOptions parallel = serial;
  parallel.threads = 4;

  const auto a = run_corpus(params, serial);
  const auto b = run_corpus(params, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_records_equal(a[i], b[i], i);
  }
}

/// A block whose optimum is several NOPs above zero (seed 31337 under the
/// paper machine), so the search cannot short-circuit on a perfect seed.
BasicBlock huge_block() {
  GeneratorParams params;
  params.statements = 40;
  params.variables = 8;
  params.constants = 3;
  params.seed = 31337;
  BasicBlock block = generate_block(params);
  PS_CHECK(block.size() >= 20, "generator produced a degenerate block");
  return block;
}

/// With every prune disabled the search over huge_block() enumerates
/// hundreds of thousands of nodes — plenty for a deadline to interrupt.
SearchConfig explosive_config() {
  SearchConfig config;
  config.curtail_lambda = 0;  // lambda off: only the clock can stop us
  config.alpha_beta = false;
  config.equivalence_prune = false;
  config.window_prune = false;
  config.dominance_cache = false;
  return config;
}

TEST(Deadline, TinyDeadlineCurtailsWithValidIncumbent) {
  const Machine machine = Machine::paper_simulation();
  const BasicBlock block = huge_block();
  const DepGraph dag(block);

  SearchConfig config = explosive_config();
  config.deadline_seconds = 1e-9;
  const OptimalResult result = optimal_schedule(machine, dag, config);

  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.curtail_reason, CurtailReason::Deadline);
  EXPECT_TRUE(result.stats.feasible);

  // The incumbent must still be a complete, simulator-valid schedule.
  ASSERT_EQ(result.best.size(), block.size());
  EXPECT_TRUE(dag.is_legal_order(result.best.order));
  const SimResult sim = validate_padded(machine, dag, result.best);
  EXPECT_TRUE(sim.ok) << sim.error;
  EXPECT_EQ(result.stats.best_nops, result.best.total_nops());
  EXPECT_LE(result.stats.best_nops, result.stats.initial_nops);
}

TEST(Deadline, LambdaAndNoneReasonsRecorded) {
  const Machine machine = Machine::paper_simulation();
  const BasicBlock block = huge_block();
  const DepGraph dag(block);

  SearchConfig lambda_only;
  lambda_only.curtail_lambda = 500;
  const OptimalResult curtailed =
      optimal_schedule(machine, dag, lambda_only);
  EXPECT_FALSE(curtailed.stats.completed);
  EXPECT_EQ(curtailed.stats.curtail_reason, CurtailReason::Lambda);

  // A search that exhausts its space reports no curtail reason.
  GeneratorParams small;
  small.statements = 3;
  small.variables = 3;
  small.seed = 9;
  const BasicBlock tiny = generate_block(small);
  ASSERT_FALSE(tiny.empty());
  const DepGraph tiny_dag(tiny);
  SearchConfig unlimited;
  unlimited.curtail_lambda = 0;
  const OptimalResult full = optimal_schedule(machine, tiny_dag, unlimited);
  EXPECT_TRUE(full.stats.completed);
  EXPECT_EQ(full.stats.curtail_reason, CurtailReason::None);
}

TEST(Deadline, GenerousDeadlineDoesNotPerturbSearch) {
  // With a deadline that cannot fire, counters and the optimum must be
  // identical to the no-deadline run — the clock check is observation
  // only.
  const Machine machine = Machine::paper_simulation();
  const auto params = small_corpus(8);
  CorpusRunOptions plain;
  plain.search.curtail_lambda = 2000;
  plain.threads = 2;
  CorpusRunOptions timed = plain;
  timed.search.deadline_seconds = 3600.0;

  const auto a = run_corpus(params, plain);
  const auto b = run_corpus(params, timed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_records_equal(a[i], b[i], i);
  }
}

TEST(CorpusRunner, PruneCountersAreLiveAndSummarized) {
  const auto params = small_corpus(12);
  CorpusRunOptions options;
  options.search.curtail_lambda = 2000;
  options.threads = 2;
  const auto records = run_corpus(params, options);

  std::uint64_t ab = 0, ready = 0, dominance = 0, hits = 0;
  for (const RunRecord& r : records) {
    ab += r.pruned_alpha_beta;
    ready += r.pruned_readiness;
    dominance += r.pruned_dominance;
    hits += r.cache_hits;
  }
  EXPECT_GT(ab, 0u);
  EXPECT_GT(ready, 0u);
  EXPECT_EQ(dominance, hits);  // duplicated counter must stay in lock-step

  const CorpusSummary summary = summarize_corpus(records);
  EXPECT_GT(summary.total.avg_pruned_alpha_beta, 0.0);
  EXPECT_GT(summary.total.avg_pruned_readiness, 0.0);
  // Per-block wall-time quantiles: ordered, and bounded by the extremes
  // of a sorted sample (p50 <= p90 <= p99).
  EXPECT_GT(summary.total.p50_seconds, 0.0);
  EXPECT_LE(summary.total.p50_seconds, summary.total.p90_seconds);
  EXPECT_LE(summary.total.p90_seconds, summary.total.p99_seconds);

  const std::string rendered = render_corpus_summary(summary);
  EXPECT_NE(rendered.find("Alpha-Beta Prunes"), std::string::npos);
  EXPECT_NE(rendered.find("Curtailed (deadline)"), std::string::npos);
  EXPECT_NE(rendered.find("Errored Blocks"), std::string::npos);
  EXPECT_NE(rendered.find("p50 Search Time"), std::string::npos);
  EXPECT_NE(rendered.find("p99 Search Time"), std::string::npos);
}

TEST(CorpusRunner, ExportsAndRollupSurviveFaultAndDeadline) {
  // The acceptance scenario: a corpus run with a wall-clock deadline and
  // an injected per-block fault must finish, report the error row, and
  // write valid CSV + JSONL + BENCH roll-up.
  const auto params = small_corpus(16, 14);
  const std::filesystem::path dir(testing::TempDir());

  CorpusRunOptions options;
  options.search.curtail_lambda = 0;
  options.search.deadline_seconds = 0.02;
  options.threads = 4;
  options.reproducer_prefix = (dir / "ps_export_repro_").string();
  options.fault_hook = [](std::size_t i, const BasicBlock&) {
    if (i == 3) throw Error("injected export fault");
  };

  const auto records = run_corpus(params, options);
  ASSERT_EQ(records.size(), params.size());
  EXPECT_FALSE(records[3].error.empty());

  // Any block the deadline curtailed must still carry a valid incumbent.
  const Machine machine = Machine::paper_simulation();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i == 3 || records[i].completed) continue;
    EXPECT_EQ(records[i].curtail_reason, CurtailReason::Deadline) << i;
    const BasicBlock block = generate_block(params[i]);
    const DepGraph dag(block);
    SearchConfig config = options.search;
    const OptimalResult redo = optimal_schedule(machine, dag, config);
    EXPECT_TRUE(validate_padded(machine, dag, redo.best).ok) << i;
  }

  const std::string csv_path = (dir / "ps_export.csv").string();
  const std::string jsonl_path = (dir / "ps_export.jsonl").string();
  const std::string bench_path = (dir / "ps_BENCH_corpus.json").string();
  write_corpus_csv(records, csv_path);
  write_corpus_jsonl(records, jsonl_path);

  const CorpusSummary summary = summarize_corpus(records);
  CorpusBenchMeta meta;
  meta.machine = machine.name();
  meta.curtail_lambda = options.search.curtail_lambda;
  meta.deadline_seconds = options.search.deadline_seconds;
  meta.total_wall_seconds = 1.0;
  write_corpus_bench_json(summary, records, meta, bench_path);

  const std::string csv = slurp(csv_path);
  const std::string jsonl = slurp(jsonl_path);
  const std::string bench = slurp(bench_path);

  // CSV: header + one line per record; the error row carries the message.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            records.size() + 1);
  EXPECT_NE(csv.find("curtail_reason"), std::string::npos);
  EXPECT_NE(csv.find("injected export fault"), std::string::npos);

  // JSONL: one object per record, fields present and quoted correctly.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            records.size());
  EXPECT_NE(jsonl.find("\"error\":\"injected export fault\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"pruned_alpha_beta\":"), std::string::npos);

  // Roll-up: the three columns and the deadline metadata.
  EXPECT_NE(bench.find("\"deadline_seconds\""), std::string::npos);
  EXPECT_NE(bench.find("\"completed\""), std::string::npos);
  EXPECT_NE(bench.find("\"truncated\""), std::string::npos);
  EXPECT_NE(bench.find("\"errors\""), std::string::npos);
  EXPECT_NE(bench.find("\"p50_seconds\""), std::string::npos);
  EXPECT_NE(bench.find("\"p99_seconds\""), std::string::npos);

  // The roll-up is valid JSON, and its exact-integer "metrics" section
  // (the bench_diff gate's correctness fields) reconciles with the
  // records it was written from.
  const JsonValue doc = parse_json_file(bench_path);
  std::uint64_t want_initial = 0, want_final = 0, want_nodes = 0;
  std::size_t want_errors = 0, want_optimal = 0;
  for (const RunRecord& r : records) {
    if (!r.error.empty()) {
      ++want_errors;
      continue;
    }
    if (r.feasible) {
      want_initial += static_cast<std::uint64_t>(r.initial_nops);
      want_final += static_cast<std::uint64_t>(r.final_nops);
    }
    if (r.completed) ++want_optimal;
    want_nodes += r.nodes_expanded;
  }
  auto metric = [&](const char* field) {
    const JsonValue* v = doc.find_path({"metrics", field});
    PS_CHECK(v != nullptr, "roll-up missing metrics." << field);
    return static_cast<std::uint64_t>(v->as_number());
  };
  EXPECT_EQ(metric("blocks"), records.size());
  EXPECT_EQ(metric("errors"), want_errors);
  EXPECT_EQ(metric("optimal_blocks"), want_optimal);
  EXPECT_EQ(metric("total_initial_nops"), want_initial);
  EXPECT_EQ(metric("total_final_nops"), want_final);
  EXPECT_EQ(metric("total_nodes_expanded"), want_nodes);
  // Cross-check against the summary's own count of the same thing.
  const JsonValue* col_curtailed =
      doc.find_path({"total", "curtailed_deadline"});
  ASSERT_NE(col_curtailed, nullptr);
  EXPECT_EQ(metric("curtailed_deadline_blocks"),
            static_cast<std::uint64_t>(col_curtailed->as_number()));

  for (const std::string& p : {csv_path, jsonl_path, bench_path}) {
    std::filesystem::remove(p);
  }
  for (const RunRecord& r : records) {
    if (!r.reproducer.empty()) std::filesystem::remove(r.reproducer);
  }
}

}  // namespace
}  // namespace pipesched
