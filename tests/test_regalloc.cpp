// Tests for liveness, linear-scan allocation (Section 3.4: allocation
// happens after scheduling) and the false-dependence injection used by the
// pre-allocation ablation.
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

std::vector<TupleIndex> identity_order(std::size_t n) {
  std::vector<TupleIndex> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<TupleIndex>(i);
  return order;
}

TEST(Liveness, RangesSpanDefToLastUse) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Add 1, 2\n"
      "4: Mul 3, 1\n"
      "5: Store #a, 4\n");
  const auto ranges = compute_live_ranges(block, identity_order(5));
  ASSERT_EQ(ranges.size(), 4u);  // Store produces no value
  // Load a (tuple 1) is used by Add (pos 2) and Mul (pos 3).
  EXPECT_EQ(ranges[0].tuple, 0);
  EXPECT_EQ(ranges[0].def_pos, 0);
  EXPECT_EQ(ranges[0].last_use_pos, 3);
  // Add's value dies at Mul.
  EXPECT_EQ(ranges[2].tuple, 2);
  EXPECT_EQ(ranges[2].last_use_pos, 3);
  // At the Add (pos 2): a, b and the Add's own result are live.
  EXPECT_EQ(max_live(ranges), 3);
}

TEST(Liveness, UnusedResultHasPointRange) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Store #c, 2\n");
  const auto ranges = compute_live_ranges(block, identity_order(3));
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].last_use_pos, ranges[0].def_pos);
}

TEST(LinearScan, UsesMinimumRegistersOnChain) {
  // A pure chain never needs more than 2 registers.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n"
      "3: Neg 2\n"
      "4: Neg 3\n"
      "5: Store #a, 4\n");
  const Allocation alloc = linear_scan(block, identity_order(5), 32);
  EXPECT_LE(alloc.registers_used, 2);
  EXPECT_TRUE(verify_allocation(block, identity_order(5), alloc));
}

TEST(LinearScan, ThrowsWhenSpillWouldBeNeeded) {
  // Three loads live across the first Add, whose own result is live
  // concurrently with its operands (an instruction's output register may
  // not alias an input — the allocator's conservative boundary
  // convention): MAXLIVE is 4.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n"
      "4: Add 1, 2\n"
      "5: Add 4, 3\n"
      "6: Store #a, 5\n");
  const auto ranges = compute_live_ranges(block, identity_order(6));
  EXPECT_EQ(max_live(ranges), 4);
  EXPECT_THROW(linear_scan(block, identity_order(6), 3), Error);
  EXPECT_NO_THROW(linear_scan(block, identity_order(6), 4));
}

TEST(LinearScan, RegistersNeverExceedMaxLive) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    GeneratorParams params;
    params.statements = 10;
    params.variables = 5;
    params.constants = 3;
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const std::vector<TupleIndex> order = list_schedule_order(dag);
    const auto ranges = compute_live_ranges(block, order);
    const Allocation alloc = linear_scan(block, order, 64);
    EXPECT_LE(alloc.registers_used, max_live(ranges)) << seed;
    EXPECT_TRUE(verify_allocation(block, order, alloc)) << seed;
  }
}

TEST(LinearScan, WorksOnScheduledOrderNotOriginal) {
  GeneratorParams params;
  params.statements = 8;
  params.variables = 4;
  params.constants = 2;
  params.seed = 21;
  const BasicBlock block = generate_block(params);
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 10000;
  const Schedule s =
      optimal_schedule(Machine::paper_simulation(), dag, config).best;
  const Allocation alloc = linear_scan(block, s.order, 64);
  EXPECT_TRUE(verify_allocation(block, s.order, alloc));
}

TEST(LinearScan, RoundRobinCyclesTheFile) {
  // Two short-lived values: LowestFree reuses r0, RoundRobin moves on.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Store #x, 1\n"
      "3: Load #b\n"
      "4: Store #y, 3\n");
  const auto order = identity_order(4);
  const Allocation lowest =
      linear_scan(block, order, 4, AllocPolicy::LowestFree);
  EXPECT_EQ(lowest.reg_of[0], lowest.reg_of[2]);  // r0 reused
  const Allocation rr = linear_scan(block, order, 4, AllocPolicy::RoundRobin);
  EXPECT_NE(rr.reg_of[0], rr.reg_of[2]);  // file cycles before reuse
  EXPECT_TRUE(verify_allocation(block, order, rr));
}

TEST(LinearScan, RoundRobinStillRespectsOverlap) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GeneratorParams params;
    params.statements = 9;
    params.variables = 5;
    params.constants = 2;
    params.seed = seed + 400;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const auto order = list_schedule_order(dag);
    const Allocation alloc =
        linear_scan(block, order, 64, AllocPolicy::RoundRobin);
    EXPECT_TRUE(verify_allocation(block, order, alloc)) << seed;
  }
}

TEST(FalseDeps, RegisterReuseInducesAntiEdges) {
  // With 1 register, value lifetimes must be strictly nested in original
  // order: every later def gets an anti edge from the earlier def's users.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Store #x, 1\n"
      "3: Load #b\n"
      "4: Store #y, 3\n");
  const Allocation alloc = linear_scan(block, identity_order(4), 1);
  EXPECT_EQ(alloc.registers_used, 1);
  const auto edges = false_dependence_edges(block, alloc);
  // Load b reuses Load a's register: edges Load a -> Load b and
  // Store x -> Load b.
  EXPECT_NE(std::find(edges.begin(), edges.end(),
                      std::make_pair(TupleIndex{0}, TupleIndex{2})),
            edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(),
                      std::make_pair(TupleIndex{1}, TupleIndex{2})),
            edges.end());
}

TEST(FalseDeps, ConstrainedDagNeverBeatsUnconstrained) {
  // The paper's motivating claim: scheduling before allocation can only
  // help. Property: optimal NOPs with injected false deps >= without.
  const Machine machine = Machine::risc_classic();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratorParams params;
    params.statements = 7;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed * 7;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph free_dag(block);
    const auto order = identity_order(block.size());
    const auto ranges = compute_live_ranges(block, order);
    const int tight_regs = std::max(1, max_live(ranges));
    const Allocation alloc = linear_scan(block, order, tight_regs);
    const DepGraph constrained(block,
                               false_dependence_edges(block, alloc));

    SearchConfig config;
    config.curtail_lambda = 50000;
    const int free_nops =
        optimal_schedule(machine, free_dag, config).best.total_nops();
    const int constrained_nops =
        optimal_schedule(machine, constrained, config).best.total_nops();
    EXPECT_GE(constrained_nops, free_nops) << seed;
  }
}

}  // namespace
}  // namespace pipesched
