// The structured trace layer (util/trace) and the live progress
// reporter (util/progress):
//   * disabled mode records nothing (spans/counters are inert);
//   * enabled spans balance — every PS_TRACE_SPAN yields one complete
//     event whose [ts, ts+dur] nests inside its parent's — and the
//     exported file is well-formed JSON;
//   * concurrent spans from parallel_for_each workers land on distinct
//     per-thread track ids;
//   * the search heartbeat and corpus instrumentation emit their counter
//     tracks end-to-end;
//   * ProgressReporter renders sane output on a non-tty stream and
//     rate-limits tty redraws.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <set>
#include <string>
#include <vector>

#include "core/corpus_runner.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"
#include "util/progress.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace pipesched {
namespace {

/// Minimal structural JSON check: braces/brackets balance outside string
/// literals and the document is non-empty. (CI additionally validates
/// real trace files with `python3 -m json.tool`.)
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && !text.empty();
}

/// Every test starts and ends with a quiet, empty collector.
class TraceTest : public testing::Test {
 protected:
  void SetUp() override {
    trace_disable();
    trace_clear();
  }
  void TearDown() override {
    trace_disable();
    trace_clear();
  }
};

TEST_F(TraceTest, DisabledModeEmitsNothing) {
  {
    PS_TRACE_SPAN("should_not_appear");
    trace_counter("ctr", 42.0);
    trace_instant("marker");
    trace_set_thread_name("ghost");
  }
  EXPECT_FALSE(trace_enabled());
  EXPECT_TRUE(trace_snapshot().empty());

  std::ostringstream out;
  trace_write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(json.find("ghost"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST_F(TraceTest, BalancedNestedSpansAndValidJson) {
  trace_enable();
  {
    PS_TRACE_SPAN("outer");
    {
      PS_TRACE_SPAN("inner");
      trace_counter("ctr", 7.5);
    }
  }
  trace_disable();

  const std::vector<TraceEvent> events = trace_snapshot();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* ctr = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
    if (e.name == "ctr") ctr = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(ctr, nullptr);
  EXPECT_EQ(outer->phase, TraceEvent::Phase::Complete);
  EXPECT_EQ(inner->phase, TraceEvent::Phase::Complete);
  EXPECT_EQ(ctr->phase, TraceEvent::Phase::Counter);
  EXPECT_DOUBLE_EQ(ctr->value, 7.5);

  // The inner complete event nests inside the outer one.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
  // Same thread, same track.
  EXPECT_EQ(inner->tid, outer->tid);

  std::ostringstream out;
  trace_write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(TraceTest, ConcurrentWorkersLandOnDistinctTracks) {
  trace_enable();
  ThreadPool pool(4);
  // Rendezvous: every task spins until all four have entered its span,
  // forcing four distinct worker threads to record concurrently.
  std::atomic<int> arrived{0};
  parallel_for_each(pool, 4, [&](std::size_t) {
    PS_TRACE_SPAN("worker_span");
    arrived.fetch_add(1);
    while (arrived.load() < 4) {
    }
  });
  trace_disable();

  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : trace_snapshot()) {
    if (e.name == "worker_span") tids.insert(e.tid);
  }
  EXPECT_EQ(tids.size(), 4u);

  // The pool's workers named their tracks; the metadata reaches the file.
  std::ostringstream out;
  trace_write_json(out);
  EXPECT_NE(out.str().find("pool-worker-"), std::string::npos);
  EXPECT_NE(out.str().find("\"ph\":\"M\""), std::string::npos);
  EXPECT_TRUE(json_balanced(out.str()));
}

TEST_F(TraceTest, EnableResetsPreviousSession) {
  trace_enable();
  { PS_TRACE_SPAN("first_session"); }
  trace_disable();
  ASSERT_FALSE(trace_snapshot().empty());

  trace_enable();
  { PS_TRACE_SPAN("second_session"); }
  trace_disable();
  const std::vector<TraceEvent> events = trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second_session");
}

TEST_F(TraceTest, SearchHeartbeatEmitsCounterTracks) {
  GeneratorParams params;
  params.statements = 10;
  params.variables = 4;
  params.constants = 2;
  params.seed = 42;
  const BasicBlock block = generate_block(params);
  ASSERT_FALSE(block.empty());
  const DepGraph dag(block);

  trace_enable();
  const OptimalResult result =
      optimal_schedule(Machine::paper_simulation(), dag, SearchConfig{});
  trace_disable();
  EXPECT_GE(result.stats.nodes_expanded, 1u);

  bool saw_nodes = false, saw_depth = false, saw_span = false;
  for (const TraceEvent& e : trace_snapshot()) {
    if (e.name == "search/nodes_expanded") {
      saw_nodes = true;
      EXPECT_EQ(e.phase, TraceEvent::Phase::Counter);
      EXPECT_GT(e.value, 0.0);
    }
    if (e.name == "search/depth") saw_depth = true;
    if (e.name == "optimal_search") saw_span = true;
  }
  // Even a search that finishes inside the first 1,024-node tick emits
  // one final heartbeat sample.
  EXPECT_TRUE(saw_nodes);
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_span);
}

TEST_F(TraceTest, CorpusRunTracesBlocksAndProgressCounter) {
  std::vector<GeneratorParams> params;
  for (int i = 0; i < 12; ++i) {
    GeneratorParams p;
    p.statements = 6;
    p.variables = 4;
    p.seed = 500 + static_cast<std::uint64_t>(i);
    params.push_back(p);
  }
  CorpusRunOptions options;
  options.search.curtail_lambda = 2000;
  options.threads = 3;

  trace_enable();
  const std::vector<RunRecord> records = run_corpus(params, options);
  trace_disable();
  ASSERT_EQ(records.size(), params.size());

  std::size_t block_spans = 0;
  double max_done = 0;
  for (const TraceEvent& e : trace_snapshot()) {
    if (e.name == "corpus_block" &&
        e.phase == TraceEvent::Phase::Complete) {
      ++block_spans;
    }
    if (e.name == "corpus/blocks_done") max_done = std::max(max_done, e.value);
  }
  EXPECT_EQ(block_spans, params.size());
  EXPECT_DOUBLE_EQ(max_done, static_cast<double>(params.size()));
}

TEST(ProgressReporter, NonTtyStreamWritesCompleteLines) {
  std::ostringstream out;
  {
    ProgressReporter progress(5, out, /*tty=*/false);
    for (int i = 0; i < 5; ++i) progress.add(/*errored=*/i == 2);
    EXPECT_EQ(progress.done(), 5u);
    EXPECT_EQ(progress.errors(), 1u);
    progress.finish();
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("5/5"), std::string::npos);
  EXPECT_NE(text.find("(100%)"), std::string::npos);
  EXPECT_NE(text.find("1 errored"), std::string::npos);
  EXPECT_NE(text.find("blocks/s"), std::string::npos);
  // Non-tty mode never uses in-place carriage-return redraws.
  EXPECT_EQ(text.find('\r'), std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ProgressReporter, TtyModeRateLimitsRedraws) {
  std::ostringstream out;
  ProgressReporter progress(100, out, /*tty=*/true,
                            /*min_redraw_seconds=*/3600.0);
  for (int i = 0; i < 99; ++i) progress.add();
  progress.finish();
  // First add() draws (nothing drawn yet), every other add() is inside
  // the redraw window, finish() draws the final line: exactly two.
  const std::string text = out.str();
  std::size_t redraws = 0;
  for (char c : text) {
    if (c == '\r') ++redraws;
  }
  EXPECT_EQ(redraws, 2u);
  EXPECT_NE(text.find("99/100"), std::string::npos);
}

TEST(ProgressReporter, SnapshotReportsLiveStateMidRun) {
  std::ostringstream out;
  ProgressReporter progress(8, out, /*tty=*/false);
  progress.add();
  progress.add(/*errored=*/true);
  progress.add();
  const ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.done, 3u);
  EXPECT_EQ(snap.total, 8u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_FALSE(snap.finished);
  EXPECT_GT(snap.elapsed_seconds, 0.0);
  EXPECT_GT(snap.rate_per_second, 0.0);
  // rate = done/elapsed and eta = remaining/rate, consistently.
  EXPECT_NEAR(snap.rate_per_second, 3.0 / snap.elapsed_seconds, 1e-9);
  EXPECT_NEAR(snap.eta_seconds, 5.0 / snap.rate_per_second, 1e-9);
  progress.finish();
  EXPECT_TRUE(progress.snapshot().finished);
}

TEST(ProgressReporter, SilentModeCountsWithoutOutput) {
  ProgressReporter progress(4);  // no stream: snapshot-only
  progress.add();
  progress.add();
  const ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.done, 2u);
  EXPECT_EQ(snap.total, 4u);
  progress.finish();  // must not crash or write anywhere
}

TEST(ProgressReporter, RegistryServesInnermostLiveReporter) {
  ProgressSnapshot snap;
  {
    ProgressReporter outer(100);
    outer.add();
    {
      // Innermost live reporter wins (the current run).
      ProgressReporter inner(7);
      inner.add();
      inner.add();
      ASSERT_TRUE(current_progress(&snap));
      EXPECT_EQ(snap.total, 7u);
      EXPECT_EQ(snap.done, 2u);
    }
    // Inner died: the registry falls back to the outer reporter.
    ASSERT_TRUE(current_progress(&snap));
    EXPECT_EQ(snap.total, 100u);
    EXPECT_EQ(snap.done, 1u);
  }
  // No live reporters at all (assuming no other test leaks one).
  EXPECT_FALSE(current_progress(&snap));
}

TEST(ProgressReporter, FinishAllFinishesEveryLiveReporter) {
  ProgressReporter a(3);
  ProgressReporter b(5);
  a.add();
  progress_finish_all();
  EXPECT_TRUE(a.snapshot().finished);
  EXPECT_TRUE(b.snapshot().finished);
  progress_finish_all();  // idempotent
}

TEST(ProgressReporter, FinishIsIdempotentAndScopedSafe) {
  std::ostringstream out;
  {
    ProgressReporter progress(2, out, /*tty=*/false);
    progress.add();
    progress.add();
    progress.finish();
    progress.finish();  // second call must not re-render
  }  // destructor also calls finish()
  const std::string text = out.str();
  // Exactly one final summary line (only the final render appends the
  // total wall time), despite two finish() calls plus the destructor.
  std::size_t count = 0;
  for (std::size_t pos = text.find("s total"); pos != std::string::npos;
       pos = text.find("s total", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace pipesched
