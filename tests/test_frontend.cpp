// Tests for the mini language front end: parser, AST, and the Section 5.2
// load/store code-generation rules.
#include <gtest/gtest.h>

#include "frontend/codegen.hpp"
#include "frontend/parser.hpp"
#include "ir/interp.hpp"
#include "util/check.hpp"

namespace pipesched {
namespace {

TEST(SourceParser, ParsesFigure3Program) {
  const SourceProgram prog = parse_source("{ b = 15; a = b * a; }");
  ASSERT_EQ(prog.statements.size(), 2u);
  EXPECT_EQ(prog.statements[0].target, "b");
  EXPECT_EQ(prog.statements[0].value->kind, Expr::Kind::Number);
  EXPECT_EQ(prog.statements[1].target, "a");
  EXPECT_EQ(prog.statements[1].value->kind, Expr::Kind::Mul);
}

TEST(SourceParser, PrecedenceAndParentheses) {
  const SourceProgram prog = parse_source("x = a + b * c; y = (a + b) * c;");
  const Expr& sum = *prog.statements[0].value;
  EXPECT_EQ(sum.kind, Expr::Kind::Add);
  EXPECT_EQ(sum.rhs->kind, Expr::Kind::Mul);
  const Expr& prod = *prog.statements[1].value;
  EXPECT_EQ(prod.kind, Expr::Kind::Mul);
  EXPECT_EQ(prod.lhs->kind, Expr::Kind::Add);
}

TEST(SourceParser, UnaryMinusAndComments) {
  const SourceProgram prog = parse_source(
      "// negate a\n"
      "x = -a; y = --a;\n");
  EXPECT_EQ(prog.statements[0].value->kind, Expr::Kind::Negate);
  EXPECT_EQ(prog.statements[1].value->kind, Expr::Kind::Negate);
  EXPECT_EQ(prog.statements[1].value->lhs->kind, Expr::Kind::Negate);
}

TEST(SourceParser, DiagnosesSyntaxErrors) {
  EXPECT_THROW(parse_source("x = ;"), Error);
  EXPECT_THROW(parse_source("x + 1;"), Error);
  EXPECT_THROW(parse_source("x = 1"), Error);
  EXPECT_THROW(parse_source("x = (1;"), Error);
}

TEST(SourceParser, RoundTripsThroughToString) {
  const SourceProgram prog =
      parse_source("x = a + b * c; y = -(x) / 3; z = y - x;");
  const SourceProgram again = parse_source(prog.to_string());
  EXPECT_EQ(again.to_string(), prog.to_string());
}

TEST(Codegen, ReproducesFigure3Tuples) {
  // { b = 15; a = b * a; } must lower exactly to the paper's Figure 3.
  const BasicBlock block =
      generate_tuples(parse_source("{ b = 15; a = b * a; }"));
  ASSERT_EQ(block.size(), 5u);
  EXPECT_EQ(block.tuple(0).op, Opcode::Const);   // 1: Const "15"
  EXPECT_EQ(block.tuple(0).a.imm, 15);
  EXPECT_EQ(block.tuple(1).op, Opcode::Store);   // 2: Store #b, 1
  EXPECT_EQ(block.var_name(block.tuple(1).a.var), "b");
  EXPECT_EQ(block.tuple(1).b.ref, 0);
  EXPECT_EQ(block.tuple(2).op, Opcode::Load);    // 3: Load #a
  EXPECT_EQ(block.var_name(block.tuple(2).a.var), "a");
  EXPECT_EQ(block.tuple(3).op, Opcode::Mul);     // 4: Mul 1, 3
  EXPECT_EQ(block.tuple(3).a.ref, 0);
  EXPECT_EQ(block.tuple(3).b.ref, 2);
  EXPECT_EQ(block.tuple(4).op, Opcode::Store);   // 5: Store #a, 4
  EXPECT_EQ(block.tuple(4).b.ref, 3);
}

TEST(Codegen, FirstReferenceLoadsOnlyOnce) {
  // 'a' is read three times but loaded once (Section 5.2's rule plus
  // current-value tracking).
  const BasicBlock block =
      generate_tuples(parse_source("x = a + a; y = a;"));
  int loads = 0;
  for (const Tuple& t : block.tuples()) loads += t.op == Opcode::Load;
  EXPECT_EQ(loads, 1);
}

TEST(Codegen, AssignmentForwardsWithoutReload) {
  // After 'a = b + c', reading 'a' reuses the Add result, not a Load.
  const BasicBlock block =
      generate_tuples(parse_source("a = b + c; d = a * 2;"));
  for (const Tuple& t : block.tuples()) {
    if (t.op == Opcode::Load) {
      EXPECT_NE(block.var_name(t.a.var), "a");
    }
  }
}

TEST(Codegen, EveryAssignmentStores) {
  const BasicBlock block =
      generate_tuples(parse_source("a = 1; a = 2; a = 3;"));
  int stores = 0;
  for (const Tuple& t : block.tuples()) stores += t.op == Opcode::Store;
  EXPECT_EQ(stores, 3);
}

TEST(Codegen, GeneratedCodeComputesTheProgram) {
  // End-to-end semantics: run the tuple code and check the math.
  // x = (a+b)*(a-b); y = x/2 - a;   with a=9, b=5:
  //   x = 14*4 = 56; y = 28-9 = 19.
  const BasicBlock block = generate_tuples(
      parse_source("x = (a + b) * (a - b); y = x / 2 - a;"));
  VarEnv initial;
  initial[block.find_var("a")] = 9;
  initial[block.find_var("b")] = 5;
  const ExecResult result = interpret(block, initial);
  EXPECT_EQ(result.final_vars.at(block.find_var("x")), 56);
  EXPECT_EQ(result.final_vars.at(block.find_var("y")), 19);
}

}  // namespace
}  // namespace pipesched
