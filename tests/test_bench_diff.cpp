// Tests for the noise-aware bench regression gate: the three-way
// exact/timing/info policy, jsonl aggregation, and the CLI-facing file
// loader.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/bench_diff.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace pipesched {
namespace {

/// A small, self-consistent roll-up in the BENCH_corpus.json shape.
/// Tests perturb individual fields via the json text before parsing.
std::string rollup_text(const std::string& machine, double wall_seconds,
                        std::uint64_t total_final_nops,
                        double total_p90_seconds) {
  std::ostringstream oss;
  oss << R"({
  "machine": ")"
      << machine << R"(",
  "curtail_lambda": 50000,
  "deadline_seconds": 0,
  "total_wall_seconds": )"
      << wall_seconds << R"(,
  "metrics": {
    "blocks": 100,
    "errors": 0,
    "optimal_blocks": 99,
    "infeasible_blocks": 2,
    "curtailed_lambda_blocks": 1,
    "curtailed_deadline_blocks": 0,
    "total_initial_nops": 2345,
    "total_final_nops": )"
      << total_final_nops << R"(,
    "total_omega_calls": 51234,
    "total_nodes_expanded": 9876,
    "total_schedules_examined": 432,
    "total_cache_probes": 8000,
    "total_cache_hits": 1200
  },
  "completed": {
    "avg_seconds": 0.001, "p50_seconds": 0.0008,
    "p90_seconds": 0.002, "p99_seconds": 0.004
  },
  "truncated": {
    "avg_seconds": 0.01, "p50_seconds": 0.01,
    "p90_seconds": 0.011, "p99_seconds": 0.012
  },
  "total": {
    "avg_seconds": 0.0011, "p50_seconds": 0.0008,
    "p90_seconds": )"
      << total_p90_seconds << R"(, "p99_seconds": 0.0041
  }
})";
  return oss.str();
}

JsonValue rollup(const std::string& machine = "paper", double wall = 12.5,
                 std::uint64_t final_nops = 678,
                 double total_p90 = 0.0021) {
  return parse_json(rollup_text(machine, wall, final_nops, total_p90));
}

std::size_t count_status(const BenchDiffResult& result,
                         BenchDiffLine::Status status) {
  std::size_t n = 0;
  for (const BenchDiffLine& line : result.lines) {
    if (line.status == status) ++n;
  }
  return n;
}

TEST(BenchDiff, IdenticalRollupsPass) {
  const JsonValue base = rollup();
  const BenchDiffResult result = diff_bench_rollups(base, base);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_EQ(count_status(result, BenchDiffLine::Status::Mismatch), 0u);
  EXPECT_EQ(count_status(result, BenchDiffLine::Status::Regressed), 0u);
  EXPECT_EQ(count_status(result, BenchDiffLine::Status::Missing), 0u);
  // The delta table covers config + correctness + info + timing rows.
  EXPECT_GE(result.lines.size(), 20u);
  const std::string table = render_bench_diff(result);
  EXPECT_NE(table.find("bench_diff: OK"), std::string::npos);
}

TEST(BenchDiff, CorrectnessMismatchFails) {
  const JsonValue base = rollup();
  const JsonValue cand = rollup("paper", 12.5, /*final_nops=*/679);
  const BenchDiffResult result = diff_bench_rollups(base, cand);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(count_status(result, BenchDiffLine::Status::Mismatch), 1u);
  bool saw = false;
  for (const BenchDiffLine& line : result.lines) {
    if (line.field != "metrics.total_final_nops") continue;
    saw = true;
    EXPECT_EQ(line.status, BenchDiffLine::Status::Mismatch);
    EXPECT_EQ(line.baseline, "678");
    EXPECT_EQ(line.candidate, "679");
  }
  EXPECT_TRUE(saw);
  EXPECT_NE(render_bench_diff(result).find("bench_diff: FAIL"),
            std::string::npos);
}

TEST(BenchDiff, MachineConfigMismatchFails) {
  const BenchDiffResult result =
      diff_bench_rollups(rollup("paper"), rollup("asymmetric"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(count_status(result, BenchDiffLine::Status::Mismatch), 1u);
}

TEST(BenchDiff, TimingRegressionBeyondBothThresholdsFails) {
  // +50% and +1.05ms on total.p90_seconds: beyond the default 25%
  // relative tolerance and the 100us absolute floor.
  const JsonValue base = rollup();
  const JsonValue cand = rollup("paper", 12.5, 678, /*total_p90=*/0.00315);
  const BenchDiffResult result = diff_bench_rollups(base, cand);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(count_status(result, BenchDiffLine::Status::Regressed), 1u);
  for (const BenchDiffLine& line : result.lines) {
    if (line.field == "total.p90_seconds") {
      EXPECT_EQ(line.status, BenchDiffLine::Status::Regressed);
    }
  }
}

TEST(BenchDiff, SmallAbsoluteDeltaIsNoiseNotRegression) {
  // +100% relative but only +2.1us absolute: under the 100us floor, so
  // jitter on a tiny corpus does not trip the gate.
  const JsonValue base = rollup("paper", 12.5, 678, /*total_p90=*/2.1e-6);
  const JsonValue cand = rollup("paper", 12.5, 678, /*total_p90=*/4.2e-6);
  EXPECT_TRUE(diff_bench_rollups(base, cand).ok());
}

TEST(BenchDiff, SmallRelativeDeltaIsNoiseNotRegression) {
  // +10ms absolute but only +10% relative: under the 25% tolerance.
  const JsonValue base = rollup("paper", 12.5, 678, /*total_p90=*/0.1);
  const JsonValue cand = rollup("paper", 12.5, 678, /*total_p90=*/0.11);
  EXPECT_TRUE(diff_bench_rollups(base, cand).ok());
}

TEST(BenchDiff, ImprovementsNeverFail) {
  const JsonValue base = rollup("paper", 12.5, 678, /*total_p90=*/0.1);
  const JsonValue cand = rollup("paper", 6.0, 678, /*total_p90=*/0.001);
  EXPECT_TRUE(diff_bench_rollups(base, cand).ok());
}

TEST(BenchDiff, ThresholdsAreConfigurable) {
  const JsonValue base = rollup("paper", 12.5, 678, /*total_p90=*/0.1);
  const JsonValue cand = rollup("paper", 12.5, 678, /*total_p90=*/0.111);
  BenchDiffOptions strict;
  strict.rel_tol = 0.05;
  strict.abs_floor_seconds = 1e-6;
  EXPECT_FALSE(diff_bench_rollups(base, cand, strict).ok());
  BenchDiffOptions loose;
  loose.rel_tol = 0.50;
  EXPECT_TRUE(diff_bench_rollups(base, cand, loose).ok());
}

TEST(BenchDiff, MissingCorrectnessFieldFails) {
  const JsonValue base = rollup();
  // Drop total_final_nops from the candidate only: schema drift on a
  // correctness field must not pass silently.
  std::string text = rollup_text("paper", 12.5, 678, 0.0021);
  const std::string needle = "\"total_final_nops\": 678,\n";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.erase(at, needle.size());
  const BenchDiffResult result = diff_bench_rollups(base, parse_json(text));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(count_status(result, BenchDiffLine::Status::Missing), 1u);
  for (const BenchDiffLine& line : result.lines) {
    if (line.field == "metrics.total_final_nops") {
      EXPECT_EQ(line.candidate, "-");
    }
  }
}

TEST(BenchDiff, InfoFieldsReportButNeverFail) {
  std::string text = rollup_text("paper", 12.5, 678, 0.0021);
  const std::string needle = "\"total_omega_calls\": 51234";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"total_omega_calls\": 40000");
  const BenchDiffResult result =
      diff_bench_rollups(rollup(), parse_json(text));
  EXPECT_TRUE(result.ok());
  bool saw = false;
  for (const BenchDiffLine& line : result.lines) {
    if (line.field != "metrics.total_omega_calls") continue;
    saw = true;
    EXPECT_EQ(line.status, BenchDiffLine::Status::Info);
    EXPECT_NE(line.delta.find("-11234"), std::string::npos);
  }
  EXPECT_TRUE(saw);
}

TEST(BenchDiff, FieldsAbsentFromBothSidesAreSkipped) {
  // jsonl aggregations carry no machine config and no completed/truncated
  // columns; two such roll-ups must still be comparable.
  const char* records = R"({
    "metrics": {"blocks": 2, "errors": 0, "optimal_blocks": 2,
      "infeasible_blocks": 0, "curtailed_lambda_blocks": 0,
      "curtailed_deadline_blocks": 0, "total_initial_nops": 10,
      "total_final_nops": 4},
    "total_wall_seconds": 0.5,
    "total": {"avg_seconds": 0.25, "p50_seconds": 0.25,
      "p90_seconds": 0.3, "p99_seconds": 0.3}
  })";
  const JsonValue reduced = parse_json(records);
  const BenchDiffResult result = diff_bench_rollups(reduced, reduced);
  EXPECT_TRUE(result.ok());
  for (const BenchDiffLine& line : result.lines) {
    EXPECT_NE(line.field, "machine");
    EXPECT_NE(line.field.substr(0, 10), "completed.");
  }
}

std::vector<JsonValue> sample_records() {
  std::vector<JsonValue> records;
  auto record = [&](int initial, int final_nops, bool completed,
                    const char* reason, double seconds, bool feasible,
                    const char* error) {
    std::ostringstream oss;
    oss << R"({"initial_nops": )" << initial << R"(, "final_nops": )"
        << final_nops << R"(, "completed": )"
        << (completed ? "true" : "false") << R"(, "curtail_reason": ")"
        << reason << R"(", "feasible": )" << (feasible ? "true" : "false")
        << R"(, "omega_calls": 100, "nodes_expanded": 50,
            "schedules_examined": 3, "cache_probes": 40, "cache_hits": 8,
            "seconds": )"
        << seconds << R"(, "error": ")" << error << R"("})";
    records.push_back(parse_json(oss.str()));
  };
  record(10, 4, true, "none", 0.001, true, "");
  record(8, 2, true, "none", 0.002, true, "");
  record(12, 12, false, "lambda", 0.004, true, "");
  record(0, -1, true, "none", 0.0005, false, "");
  record(0, 0, false, "none", 0.0, true, "boom");
  return records;
}

TEST(BenchDiff, RollupFromRecordsAggregatesExactly) {
  const JsonValue roll = rollup_from_records(sample_records());
  auto num = [&](std::vector<std::string> path) {
    const JsonValue* v = roll.find_path(path);
    PS_CHECK(v != nullptr, "missing " << path.back());
    return v->as_number();
  };
  EXPECT_EQ(num({"metrics", "blocks"}), 5.0);
  EXPECT_EQ(num({"metrics", "errors"}), 1.0);
  EXPECT_EQ(num({"metrics", "optimal_blocks"}), 3.0);
  EXPECT_EQ(num({"metrics", "infeasible_blocks"}), 1.0);
  EXPECT_EQ(num({"metrics", "curtailed_lambda_blocks"}), 1.0);
  EXPECT_EQ(num({"metrics", "curtailed_deadline_blocks"}), 0.0);
  // NOP totals cover feasible, clean records only (the infeasible
  // record's final_nops=-1 must not wrap the total).
  EXPECT_EQ(num({"metrics", "total_initial_nops"}), 30.0);
  EXPECT_EQ(num({"metrics", "total_final_nops"}), 18.0);
  EXPECT_EQ(num({"metrics", "total_omega_calls"}), 400.0);
  EXPECT_NEAR(num({"total_wall_seconds"}), 0.0075, 1e-12);
  EXPECT_GT(num({"total", "p90_seconds"}), 0.0);
}

TEST(BenchDiff, JsonlPairModeEndToEnd) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ps_bench_diff_test";
  fs::create_directories(dir);
  const std::string path = (dir / "records.jsonl").string();
  {
    std::ofstream out(path);
    for (const JsonValue& r : sample_records()) {
      // Re-serialize each record onto ONE line (jsonl requires it).
      out << R"({"initial_nops": )" << r.find("initial_nops")->as_number()
          << R"(, "final_nops": )" << r.find("final_nops")->as_number()
          << R"(, "completed": )"
          << (r.find("completed")->as_bool() ? "true" : "false")
          << R"(, "curtail_reason": ")"
          << r.find("curtail_reason")->as_string() << R"(", "feasible": )"
          << (r.find("feasible")->as_bool() ? "true" : "false")
          << R"(, "omega_calls": 100, "nodes_expanded": 50, )"
          << R"("schedules_examined": 3, "cache_probes": 40, )"
          << R"("cache_hits": 8, "seconds": )"
          << r.find("seconds")->as_number() << R"(, "error": ")"
          << r.find("error")->as_string() << R"("})" << "\n";
    }
  }
  const BenchDiffResult result = diff_bench_files(path, path);
  EXPECT_TRUE(result.ok());
  EXPECT_THROW(diff_bench_files((dir / "nope.json").string(), path), Error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pipesched
