// Correctness of the branch-and-bound scheduler (paper Section 4.2.3):
// with the curtail point disabled it must find exactly the exhaustive
// optimum, under every combination of pruning rules, machines and random
// blocks — the pruning rules are only allowed to cut *provably equivalent
// or worse* schedules.
#include <gtest/gtest.h>

#include "ir/dag.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

SearchConfig unlimited() {
  SearchConfig c;
  c.curtail_lambda = 0;
  return c;
}

struct PropertyCase {
  std::string machine;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  std::string name =
      info.param.machine + "_seed" + std::to_string(info.param.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class OptimalVsExhaustive : public testing::TestWithParam<PropertyCase> {};

TEST_P(OptimalVsExhaustive, MatchesGroundTruthOnSmallBlocks) {
  const PropertyCase& param = GetParam();
  const Machine machine = Machine::preset(param.machine);

  // Small statement counts keep blocks <= ~12 instructions, where the
  // exhaustive search is still tractable.
  for (int statements = 2; statements <= 5; ++statements) {
    GeneratorParams params;
    params.statements = statements;
    params.variables = 3;
    params.constants = 2;
    params.seed = param.seed * 1000 + static_cast<std::uint64_t>(statements);
    const BasicBlock block = generate_block(params);
    if (block.empty() || block.size() > 12) continue;
    const DepGraph dag(block);

    const ExhaustiveResult truth = exhaustive_schedule(machine, dag);
    ASSERT_TRUE(truth.completed);
    const int optimum = truth.best.total_nops();

    const OptimalResult result = optimal_schedule(machine, dag, unlimited());
    EXPECT_TRUE(result.stats.completed);
    EXPECT_EQ(result.best.total_nops(), optimum)
        << "machine=" << param.machine << " seed=" << params.seed
        << " statements=" << statements << "\n"
        << block.to_string();
    EXPECT_TRUE(dag.is_legal_order(result.best.order));
  }
}

TEST_P(OptimalVsExhaustive, EveryPruningComboPreservesOptimality) {
  const PropertyCase& param = GetParam();
  const Machine machine = Machine::preset(param.machine);

  GeneratorParams params;
  params.statements = 4;
  params.variables = 3;
  params.constants = 2;
  params.seed = param.seed;
  const BasicBlock block = generate_block(params);
  if (block.empty() || block.size() > 12) GTEST_SKIP();
  const DepGraph dag(block);

  const int optimum =
      exhaustive_schedule(machine, dag).best.total_nops();

  for (int mask = 0; mask < 64; ++mask) {
    SearchConfig config = unlimited();
    config.alpha_beta = mask & 1;
    config.equivalence_prune = mask & 2;
    config.strong_equivalence = mask & 4;
    config.window_prune = mask & 8;
    config.lower_bound_prune = mask & 16;
    config.seed_with_list_schedule = mask & 32;
    const OptimalResult result = optimal_schedule(machine, dag, config);
    EXPECT_EQ(result.best.total_nops(), optimum)
        << "machine=" << param.machine << " seed=" << param.seed
        << " pruning mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalVsExhaustive,
    testing::ValuesIn([] {
      std::vector<PropertyCase> cases;
      for (const std::string& machine : Machine::preset_names()) {
        for (std::uint64_t seed = 1; seed <= 12; ++seed) {
          cases.push_back({machine, seed});
        }
      }
      return cases;
    }()),
    case_name);

TEST(Optimal, NeverWorseThanHeuristics) {
  // Property over larger random blocks: optimal <= greedy and
  // optimal <= list, and all three are legal orders.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    GeneratorParams params;
    params.statements = 8;
    params.variables = 5;
    params.constants = 3;
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const Machine machine = Machine::paper_simulation();

    const Schedule list = list_schedule(machine, dag);
    const Schedule greedy = greedy_schedule(machine, dag);
    SearchConfig config;
    config.curtail_lambda = 200000;
    const OptimalResult best = optimal_schedule(machine, dag, config);

    EXPECT_LE(best.best.total_nops(), list.total_nops()) << "seed " << seed;
    EXPECT_LE(best.best.total_nops(), greedy.total_nops()) << "seed " << seed;
    EXPECT_TRUE(dag.is_legal_order(best.best.order));
  }
}

TEST(Optimal, CurtailPointBoundsWork) {
  // A lambda of 1 stops after a single placement attempt; the result must
  // still be the (legal) seed schedule.
  GeneratorParams params;
  params.statements = 10;
  params.variables = 4;
  params.constants = 2;
  params.seed = 7;
  const BasicBlock block = generate_block(params);
  const DepGraph dag(block);
  const Machine machine = Machine::paper_simulation();

  SearchConfig config;
  config.curtail_lambda = 1;
  const OptimalResult result = optimal_schedule(machine, dag, config);
  EXPECT_LE(result.stats.omega_calls, 1u);
  EXPECT_TRUE(dag.is_legal_order(result.best.order));
  EXPECT_EQ(result.best.total_nops(), result.stats.initial_nops);
}

TEST(Optimal, CurtailedSearchReportsTruncation) {
  // Find a block where lambda=2 genuinely truncates (initial != optimal).
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 60 && !found; ++seed) {
    GeneratorParams params;
    params.statements = 9;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const Machine machine = Machine::paper_simulation();

    SearchConfig full;
    full.curtail_lambda = 0;
    const int optimum =
        optimal_schedule(machine, dag, full).best.total_nops();
    const int initial = list_schedule(machine, dag).total_nops();
    if (initial == optimum) continue;

    SearchConfig tiny;
    tiny.curtail_lambda = 2;
    const OptimalResult truncated = optimal_schedule(machine, dag, tiny);
    EXPECT_FALSE(truncated.stats.completed);
    EXPECT_GE(truncated.best.total_nops(), optimum);
    found = true;
  }
  EXPECT_TRUE(found) << "no block with improvable seed schedule found";
}

TEST(Optimal, ZeroNopSeedShortCircuits) {
  // A block whose list schedule already needs no NOPs must return
  // immediately with zero search nodes.
  BasicBlock block;
  for (int i = 0; i < 6; ++i) {
    block.append(Opcode::Const, Operand::of_imm(i));
  }
  const DepGraph dag(block);
  const OptimalResult result =
      optimal_schedule(Machine::paper_simulation(), dag, SearchConfig{});
  EXPECT_EQ(result.best.total_nops(), 0);
  EXPECT_EQ(result.stats.omega_calls, 0u);
  EXPECT_TRUE(result.stats.completed);
}

TEST(Optimal, StatsAreInternallyConsistent) {
  GeneratorParams params;
  params.statements = 7;
  params.variables = 4;
  params.constants = 2;
  params.seed = 3;
  const BasicBlock block = generate_block(params);
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 100000;
  const OptimalResult result =
      optimal_schedule(Machine::paper_simulation(), dag, config);
  EXPECT_LE(result.stats.best_nops, result.stats.initial_nops);
  EXPECT_EQ(result.stats.best_nops, result.best.total_nops());
  EXPECT_GE(result.stats.omega_calls, result.stats.schedules_examined);
}

TEST(Optimal, FindsKnownOptimalReordering) {
  // Hand-checked case on risc-classic (loader latency 4, alu latency 1):
  // two independent (load -> neg -> store) chains. The naive order
  //   La Na Lb Nb Sa Sb
  // stalls 3 cycles before each Neg (total 6 NOPs); interleaving
  //   La Lb Na Nb Sa Sb
  // hides all but 2 of the load-latency cycles.
  const Machine machine = Machine::risc_classic();
  BasicBlock block;
  const VarId a = block.var_id("a");
  const VarId b = block.var_id("b");
  const TupleIndex la = block.append(Opcode::Load, Operand::of_var(a));
  const TupleIndex na = block.append(Opcode::Neg, Operand::of_ref(la));
  const TupleIndex lb = block.append(Opcode::Load, Operand::of_var(b));
  const TupleIndex nb = block.append(Opcode::Neg, Operand::of_ref(lb));
  block.append(Opcode::Store, Operand::of_var(a), Operand::of_ref(na));
  block.append(Opcode::Store, Operand::of_var(b), Operand::of_ref(nb));
  const DepGraph dag(block);

  const Schedule naive = evaluate_order(
      machine, dag, {la, na, lb, nb, static_cast<TupleIndex>(4),
                     static_cast<TupleIndex>(5)});
  SearchConfig config;
  config.curtail_lambda = 0;
  const OptimalResult best = optimal_schedule(machine, dag, config);
  EXPECT_LT(best.best.total_nops(), naive.total_nops());
  EXPECT_EQ(best.best.total_nops(),
            exhaustive_schedule(machine, dag).best.total_nops());
}

}  // namespace
}  // namespace pipesched
