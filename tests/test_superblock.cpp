// Tests for superblock formation (linear-chain merging).
#include <gtest/gtest.h>

#include "core/program_compiler.hpp"
#include "core/superblock.hpp"
#include "frontend/codegen.hpp"
#include "frontend/parser.hpp"
#include "frontend/program_codegen.hpp"
#include "ir/block_parser.hpp"
#include "ir/interp.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

TEST(Superblock, ConcatenateOffsetsRefsAndMergesVars) {
  const BasicBlock a = parse_block(
      "1: Const \"5\"\n"
      "2: Store #x, 1\n");
  const BasicBlock b = parse_block(
      "1: Load #x\n"
      "2: Neg 1\n"
      "3: Store #y, 2\n");
  const BasicBlock merged = concatenate_blocks(a, b);
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged.tuple(2).op, Opcode::Load);
  // b's Neg referenced its tuple 1 -> now tuple 3 (offset by 2).
  EXPECT_EQ(merged.tuple(3).a.ref, 2);
  // 'x' is the same variable in both halves.
  EXPECT_EQ(merged.tuple(1).a.var, merged.tuple(2).a.var);
  // Memory dependence store->load is now intra-block.
  const ExecResult exec = interpret(merged);
  EXPECT_EQ(exec.final_vars.at(merged.find_var("y")), -5);
}

TEST(Superblock, MergesWhileLoopPreheader) {
  // The while lowering produces pre -> HEAD with HEAD having two preds
  // (pre + back edge): NOT mergeable. But straight if-arms rejoin through
  // jump/fallthrough chains that are.
  const Program prog = generate_program(parse_source(
      "a = 1;\n"
      "while (n) { n = n - 1; }\n"
      "b = 2;\n"));
  const SuperblockResult merged = merge_linear_chains(prog);
  // pre->head blocked (head has the back edge), body->exit blocked
  // (exit also reached by head's branch): nothing merges here.
  EXPECT_EQ(merged.merges, 0);
  EXPECT_EQ(merged.program.size(), prog.size());
}

TEST(Superblock, MergesIfArmIntoJoinWhenLinear) {
  // if without else: cond -Branch-> END, THEN -FallThrough-> END.
  // END has two preds: no merge of THEN->END. But a chain of two
  // straight-line statements split artificially merges.
  Program prog;
  const BlockId b0 = prog.add_block("p0");
  prog.block_mut(b0).block = parse_block("1: Const \"1\"\n2: Store #x, 1\n");
  prog.block_mut(b0).term = Terminator::fall_through();
  const BlockId b1 = prog.add_block("p1");
  prog.block_mut(b1).block = parse_block("1: Load #x\n2: Store #y, 1\n");
  prog.block_mut(b1).term = Terminator::jump(2);
  const BlockId b2 = prog.add_block("p2");
  prog.block_mut(b2).block = parse_block("1: Load #y\n2: Store #z, 1\n");
  prog.block_mut(b2).term = Terminator::ret();
  prog.validate();

  const SuperblockResult merged = merge_linear_chains(prog);
  EXPECT_EQ(merged.merges, 2);
  ASSERT_EQ(merged.program.size(), 1u);
  EXPECT_EQ(merged.program.block(0).term.kind, Terminator::Kind::Return);
  // Semantics preserved.
  const auto before = interpret_program(prog);
  const auto after = interpret_program(merged.program);
  EXPECT_EQ(before.final_vars, after.final_vars);
}

TEST(Superblock, RemapsBranchTargetsAcrossMerges) {
  // Layout: A (falls into B), B (branch back to A-merged region? no —
  // forward): build A->B merged chain followed by a branch to a later
  // block whose id shifts.
  Program prog;
  const BlockId a = prog.add_block("A");
  prog.block_mut(a).block = parse_block("1: Const \"1\"\n2: Store #c, 1\n");
  prog.block_mut(a).term = Terminator::fall_through();
  const BlockId b = prog.add_block("B");
  prog.block_mut(b).block = parse_block("1: Load #c\n2: Store #d, 1\n");
  prog.block_mut(b).term = Terminator::branch("c", 3);
  const BlockId c = prog.add_block("C");
  prog.block_mut(c).block = parse_block("1: Const \"7\"\n2: Store #e, 1\n");
  prog.block_mut(c).term = Terminator::fall_through();
  const BlockId d = prog.add_block("D");
  prog.block_mut(d).block = parse_block("1: Const \"9\"\n2: Store #f, 1\n");
  prog.block_mut(d).term = Terminator::ret();
  prog.validate();

  const SuperblockResult merged = merge_linear_chains(prog);
  // A+B merge; C and D survive (C reached by fall-through from merged AB
  // *and* nothing else; D reached by branch + fallthrough from C).
  EXPECT_EQ(merged.merges, 1);
  ASSERT_EQ(merged.program.size(), 3u);
  EXPECT_EQ(merged.program.block(0).term.kind, Terminator::Kind::Branch);
  EXPECT_EQ(merged.program.block(0).term.target, 2);  // D's new id
  const auto before = interpret_program(prog, {{"c", 0}});
  const auto after = interpret_program(merged.program, {{"c", 0}});
  EXPECT_EQ(before.final_vars, after.final_vars);
}

TEST(Superblock, PreservesSemanticsOnGeneratedCfgs) {
  Rng rng(31);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    std::string source =
        "x = a + b;\n"
        "if (x) { y = x * 2; } else { y = a - b; }\n"
        "z = y + x;\n"
        "if (z - 4) { w = z * z; }\n"
        "out = w + y + z;\n";
    const Program prog = generate_program(parse_source(source));
    const SuperblockResult merged = merge_linear_chains(prog);
    ProgramEnv env;
    env["a"] = rng.next_in(-9, 9);
    env["b"] = rng.next_in(-9, 9);
    env["w"] = rng.next_in(-9, 9);
    const auto before = interpret_program(prog, env);
    const auto after = interpret_program(merged.program, env);
    EXPECT_EQ(before.final_vars, after.final_vars) << seed;
  }
}

TEST(Superblock, WidensSchedulingAndOptimizationScope) {
  // Two artificial cuts in a straight-line computation: merging lets the
  // optimizer forward x across the cut and the scheduler overlap the
  // loads, so merged compilation needs no more (and here strictly fewer)
  // total cycles.
  Program prog;
  const BlockId b0 = prog.add_block();
  prog.block_mut(b0).block =
      generate_tuples(parse_source("x = a * b;"), "part1");
  prog.block_mut(b0).term = Terminator::fall_through();
  const BlockId b1 = prog.add_block();
  prog.block_mut(b1).block =
      generate_tuples(parse_source("y = x * c;"), "part2");
  prog.block_mut(b1).term = Terminator::ret();

  ProgramCompileOptions options;
  options.block.search.curtail_lambda = 20000;
  const ProgramCompileResult split_result = compile_program(prog, options);
  const SuperblockResult merged = merge_linear_chains(prog);
  const ProgramCompileResult merged_result =
      compile_program(merged.program, options);

  EXPECT_LT(merged_result.total_instructions,
            split_result.total_instructions);  // x load forwarded away
  EXPECT_LE(merged_result.total_nops + merged_result.total_instructions,
            split_result.total_nops + split_result.total_instructions);
}

TEST(Superblock, FracturedChainsCompileIdenticallyAfterMerge) {
  // Semantics fuzz: straight-line programs fractured one-block-per-
  // statement, merged back, compiled both ways — interpreter agreement
  // and strictly fewer (or equal) blocks.
  Rng rng(808);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorParams params;
    params.statements = 6;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed * 41;
    const SourceProgram source = generate_source(params);

    Program fractured;
    for (std::size_t st = 0; st < source.statements.size(); ++st) {
      BlockEmitter emitter;
      emitter.emit_assign(source.statements[st].target,
                          *source.statements[st].value);
      const BlockId id = fractured.add_block();
      fractured.block_mut(id).block = emitter.take();
      fractured.block_mut(id).term =
          st + 1 == source.statements.size() ? Terminator::ret()
                                             : Terminator::fall_through();
    }
    fractured.validate();
    const SuperblockResult merged = merge_linear_chains(fractured);
    EXPECT_EQ(merged.program.size(), 1u) << seed;

    ProgramEnv env;
    for (int v = 0; v < params.variables; ++v) {
      env["v" + std::to_string(v)] = rng.next_in(-30, 30);
    }
    EXPECT_EQ(interpret_program(fractured, env).final_vars,
              interpret_program(merged.program, env).final_vars)
        << seed;

    // And both compile cleanly.
    ProgramCompileOptions options;
    options.block.search.curtail_lambda = 5000;
    EXPECT_GE(compile_program(fractured, options).total_nops,
              compile_program(merged.program, options).total_nops)
        << seed;
  }
}

}  // namespace
}  // namespace pipesched
