// Tests for heterogeneous alternative units — the general Section 4.1
// model that footnote 3 excludes from the paper's own algorithm. The
// optimal search branches over unit-signature groups; the greedy timer
// assignment (earliest-free) is only a heuristic there.
#include <gtest/gtest.h>

#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"

namespace pipesched {
namespace {

/// Fast and slow adders; `slow_first` controls mapping order, hence the
/// greedy earliest-free tiebreak.
Machine two_speed_alus(bool slow_first) {
  Machine m(slow_first ? "slow-first" : "fast-first");
  m.add_pipeline("loader", 3, 1);
  const PipelineId fast = m.add_pipeline("fast-alu", 1, 1);
  const PipelineId slow = m.add_pipeline("slow-alu", 4, 1);
  m.map_op(Opcode::Load, "loader");
  for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::Neg}) {
    if (slow_first) {
      m.map_op(op, std::vector<PipelineId>{slow, fast});
    } else {
      m.map_op(op, std::vector<PipelineId>{fast, slow});
    }
  }
  m.validate();
  return m;
}

const char* kChain =
    "1: Load #a\n"
    "2: Add 1, 1\n"
    "3: Store #x, 2\n";

TEST(Hetero, OptimalPicksTheFastUnitForCriticalWork) {
  // Regardless of mapping order, the optimal search must route the Add to
  // the 1-cycle ALU: load@1, add@4 (2 NOPs), store@5 -> total 2 NOPs.
  for (bool slow_first : {false, true}) {
    const Machine machine = two_speed_alus(slow_first);
    const BasicBlock block = parse_block(kChain);
    const DepGraph dag(block);
    SearchConfig config;
    config.curtail_lambda = 0;
    const OptimalResult result = optimal_schedule(machine, dag, config);
    EXPECT_EQ(result.best.total_nops(), 2) << machine.name();
    // The chosen unit is the fast ALU.
    const int add_pos = result.best.position_of(1) - 1;
    EXPECT_EQ(machine.pipeline(result.best.unit[add_pos]).function,
              "fast-alu")
        << machine.name();
  }
}

TEST(Hetero, GreedyTiebreakCanBeSuboptimal) {
  // With the slow ALU listed first, both units are idle when the Add
  // issues; the greedy earliest-free rule tiebreaks to the slow unit and
  // pays its 4-cycle latency at the Store.
  const Machine machine = two_speed_alus(/*slow_first=*/true);
  const BasicBlock block = parse_block(kChain);
  const DepGraph dag(block);
  const Schedule greedy = greedy_schedule(machine, dag);
  SearchConfig config;
  config.curtail_lambda = 0;
  const OptimalResult best = optimal_schedule(machine, dag, config);
  EXPECT_GT(greedy.total_nops(), best.best.total_nops());
  EXPECT_EQ(greedy.total_nops(), 5);  // slow ALU: store waits 4 cycles
  EXPECT_EQ(best.best.total_nops(), 2);
}

TEST(Hetero, SlowUnitIsWorthUsingUnderContention) {
  // Two independent (add -> store) pairs; the fast ALU has enqueue 3, so
  // routing BOTH adds through it serializes them. The optimum sends one
  // add to the slow unit and overlaps.
  Machine m("contended");
  m.add_pipeline("fast-alu", 1, 3);
  m.add_pipeline("slow-alu", 3, 1);
  for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::Neg}) {
    m.map_op(op, "fast-alu");
    m.map_op(op, "slow-alu");
  }
  m.validate();
  const BasicBlock block = parse_block(
      "1: Const \"1\"\n"
      "2: Const \"2\"\n"
      "3: Add 1, 2\n"
      "4: Add 2, 1\n"
      "5: Store #x, 3\n"
      "6: Store #y, 4\n");
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 0;
  const OptimalResult best = optimal_schedule(m, dag, config);
  const ExhaustiveResult truth = exhaustive_schedule(m, dag);
  EXPECT_EQ(best.best.total_nops(), truth.best.total_nops());
  // Both units appear in the optimal schedule.
  bool used_fast = false;
  bool used_slow = false;
  for (PipelineId unit : best.best.unit) {
    if (unit == 0) used_fast = true;
    if (unit == 1) used_slow = true;
  }
  EXPECT_TRUE(used_fast);
  EXPECT_TRUE(used_slow);
}

TEST(Hetero, OptimalNeverWorseThanGreedyOnRandomBlocks) {
  const Machine machine = Machine::asymmetric_alus();
  int strict = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorParams params;
    params.statements = 7;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed * 5;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    const Schedule greedy = greedy_schedule(machine, dag);
    SearchConfig config;
    config.curtail_lambda = 100000;
    const OptimalResult best = optimal_schedule(machine, dag, config);
    EXPECT_LE(best.best.total_nops(), greedy.total_nops()) << seed;
    strict += best.best.total_nops() < greedy.total_nops();
    // The schedule must replay exactly on the simulator with its units.
    const SimResult sim =
        simulate_interlocked(machine, dag, best.best.order, best.best.unit);
    EXPECT_EQ(sim.total_delay, best.best.total_nops()) << seed;
  }
  EXPECT_GT(strict, 0) << "unit branching never improved on greedy";
}

TEST(Hetero, UnitBranchingCostsNodesOnlyWhenHeterogeneous) {
  // On a homogeneous machine the signature loop degenerates to one pass:
  // node counts must be identical to the single-group formulation (i.e.
  // branching adds nothing). We check a proxy: omega calls on
  // paper-example (homogeneous, duplicated units) stay below the
  // all-orders bound times one.
  GeneratorParams params;
  params.statements = 5;
  params.variables = 3;
  params.constants = 2;
  params.seed = 11;
  const BasicBlock block = generate_block(params);
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 0;
  const OptimalResult homo =
      optimal_schedule(Machine::paper_example(), dag, config);
  EXPECT_TRUE(homo.stats.completed);
  // Sanity: still matches exhaustive on the multi-unit machine.
  EXPECT_EQ(homo.best.total_nops(),
            exhaustive_schedule(Machine::paper_example(), dag)
                .best.total_nops());
}

}  // namespace
}  // namespace pipesched
