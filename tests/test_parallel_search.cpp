// Frontier-split parallel branch-and-bound: differential equivalence with
// the sequential search, ledger-merge exactness, global budget semantics,
// and concurrency soundness of the sharded dominance cache.
//
// The load-bearing property is the first one: for EXHAUSTIVE runs
// (curtail_lambda = 0, no deadline) the parallel search must report the
// same best_nops as the sequential search at every thread count, on
// heterogeneous machines included — the frontier partitions exactly the
// branches the sequential candidate loop would take, and every shared
// component (incumbent, cache, budgets) only ever strengthens pruning
// soundly. The *schedule attaining* the optimum may legitimately differ
// (workers race to publish equal-cost optima), so schedules are checked
// for validity, not equality.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "frontend/codegen.hpp"
#include "frontend/parser.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/dominance_cache.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

/// Random machine with 1-4 units of mixed latency/enqueue signatures and
/// random op->unit subsets, so heterogeneous-alternative branching is
/// exercised (mirrors the generator in test_fuzz.cpp).
Machine random_machine(Rng& rng) {
  Machine machine("parallel-random");
  const int units = 1 + static_cast<int>(rng.next_below(4));
  for (int u = 0; u < units; ++u) {
    machine.add_pipeline("u" + std::to_string(u),
                         1 + static_cast<int>(rng.next_below(6)),
                         1 + static_cast<int>(rng.next_below(4)));
  }
  for (Opcode op : {Opcode::Load, Opcode::Mov, Opcode::Neg, Opcode::Add,
                    Opcode::Sub, Opcode::Mul, Opcode::Div}) {
    if (!rng.next_bool(0.8)) continue;  // sigma = empty sometimes
    std::vector<PipelineId> subset;
    for (int u = 0; u < units; ++u) {
      if (rng.next_bool()) subset.push_back(u);
    }
    if (subset.empty()) {
      subset.push_back(static_cast<PipelineId>(
          rng.next_below(static_cast<std::uint64_t>(units))));
    }
    machine.map_op(op, subset);
  }
  return machine;
}

BasicBlock random_block(Rng& rng, int max_statements) {
  GeneratorParams params;
  params.statements = 3 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(max_statements)));
  params.variables = 3 + static_cast<int>(rng.next_below(5));
  params.constants = 1 + static_cast<int>(rng.next_below(4));
  params.seed = rng.next_u64();
  params.optimize = rng.next_bool(0.5);
  return generate_block(params);
}

/// Assert that the merged top-level stats are EXACTLY the frontier ledger
/// plus every per-subtree worker ledger, counter by counter — the
/// invariant that makes parallel runs indistinguishable from sequential
/// ones for every downstream consumer (metrics, corpus roll-ups).
void expect_stats_equal_summed_ledgers(const OptimalResult& result) {
  ASSERT_TRUE(result.parallel.has_value());
  const auto& detail = *result.parallel;
  SearchStats sum = detail.frontier;
  bool completed = detail.frontier.completed;
  for (const SearchStats& ws : detail.subtrees) {
    sum.omega_calls += ws.omega_calls;
    sum.schedules_examined += ws.schedules_examined;
    sum.nodes_expanded += ws.nodes_expanded;
    sum.pruned_window += ws.pruned_window;
    sum.pruned_readiness += ws.pruned_readiness;
    sum.pruned_equivalence += ws.pruned_equivalence;
    sum.pruned_alpha_beta += ws.pruned_alpha_beta;
    sum.pruned_lower_bound += ws.pruned_lower_bound;
    sum.pruned_dominance += ws.pruned_dominance;
    sum.pruned_pressure += ws.pruned_pressure;
    sum.cache_probes += ws.cache_probes;
    sum.cache_hits += ws.cache_hits;
    sum.cache_misses += ws.cache_misses;
    sum.cache_evictions += ws.cache_evictions;
    sum.cache_superseded += ws.cache_superseded;
    sum.incumbent_improvements += ws.incumbent_improvements;
    completed = completed && ws.completed;
  }
  const SearchStats& merged = result.stats;
  EXPECT_EQ(merged.omega_calls, sum.omega_calls);
  EXPECT_EQ(merged.schedules_examined, sum.schedules_examined);
  EXPECT_EQ(merged.nodes_expanded, sum.nodes_expanded);
  EXPECT_EQ(merged.pruned_window, sum.pruned_window);
  EXPECT_EQ(merged.pruned_readiness, sum.pruned_readiness);
  EXPECT_EQ(merged.pruned_equivalence, sum.pruned_equivalence);
  EXPECT_EQ(merged.pruned_alpha_beta, sum.pruned_alpha_beta);
  EXPECT_EQ(merged.pruned_lower_bound, sum.pruned_lower_bound);
  EXPECT_EQ(merged.pruned_dominance, sum.pruned_dominance);
  EXPECT_EQ(merged.pruned_pressure, sum.pruned_pressure);
  EXPECT_EQ(merged.cache_probes, sum.cache_probes);
  EXPECT_EQ(merged.cache_hits, sum.cache_hits);
  EXPECT_EQ(merged.cache_misses, sum.cache_misses);
  EXPECT_EQ(merged.cache_evictions, sum.cache_evictions);
  EXPECT_EQ(merged.cache_superseded, sum.cache_superseded);
  EXPECT_EQ(merged.incumbent_improvements, sum.incumbent_improvements);
  EXPECT_EQ(merged.completed, completed);
  // Cache-ledger internal invariant, per worker and merged.
  EXPECT_EQ(merged.cache_hits + merged.cache_misses, merged.cache_probes);
  EXPECT_EQ(merged.frontier_subtrees, detail.subtrees.size());
}

TEST(ParallelSearch, MatchesSequentialOverRandomHeterogeneousPairs) {
  // >= 200 random machine/block pairs, each searched to exhaustion
  // sequentially and at 2/4/8 threads: identical best_nops everywhere,
  // simulator-valid schedules, exact ledger sums.
  Rng rng(0x9A8A11E1u);
  int pairs = 0;
  int heterogeneous_seen = 0;
  while (pairs < 200) {
    const Machine machine = random_machine(rng);
    const BasicBlock block = random_block(rng, 4);
    // Exhaustive searches are run 4x per pair; cap the block size so the
    // sweep stays seconds, not minutes, even with the cache rolled off.
    if (block.empty() || block.size() > 12) continue;
    ++pairs;
    if (machine.has_heterogeneous_alternatives()) ++heterogeneous_seen;
    const DepGraph dag(block);

    SearchConfig config;
    config.curtail_lambda = 0;  // exhaustive: optimality is provable
    config.dominance_cache = rng.next_bool();
    config.strong_equivalence = rng.next_bool(0.3);
    config.lower_bound_prune = rng.next_bool(0.3);

    const OptimalResult seq = optimal_schedule(machine, dag, config);
    ASSERT_TRUE(seq.stats.completed);
    ASSERT_FALSE(seq.parallel.has_value());

    for (std::size_t threads : {2u, 4u, 8u}) {
      SearchConfig parallel_config = config;
      parallel_config.search_threads = threads;
      const OptimalResult par =
          optimal_schedule(machine, dag, parallel_config);

      ASSERT_TRUE(par.stats.completed)
          << threads << " threads, pair " << pairs;
      ASSERT_EQ(par.stats.best_nops, seq.stats.best_nops)
          << threads << " threads, pair " << pairs << ", block:\n"
          << block.to_string();
      EXPECT_EQ(par.stats.initial_nops, seq.stats.initial_nops);
      EXPECT_EQ(par.best.total_nops(), par.stats.best_nops);

      ASSERT_TRUE(dag.is_legal_order(par.best.order));
      const SimResult padded = validate_padded(machine, dag, par.best);
      ASSERT_TRUE(padded.ok) << padded.error;

      if (dag.size() >= 2) {
        expect_stats_equal_summed_ledgers(par);
      }
    }
  }
  // The machine generator must actually exercise unit-group branching.
  EXPECT_GT(heterogeneous_seen, 20);
}

TEST(ParallelSearch, SearchThreadsOneIsTheSequentialPath) {
  // threads = 1 must take the classic code path: no parallel detail, and
  // (being the same algorithm object for object) identical stats AND an
  // identical schedule, not merely an equal-cost one.
  Rng rng(0x51D2BEEFu);
  for (int trial = 0; trial < 20; ++trial) {
    const Machine machine = random_machine(rng);
    const BasicBlock block = random_block(rng, 6);
    if (block.empty() || block.size() > 14) continue;
    const DepGraph dag(block);
    SearchConfig config;
    config.curtail_lambda = 0;
    const OptimalResult a = optimal_schedule(machine, dag, config);
    SearchConfig explicit_one = config;
    explicit_one.search_threads = 1;
    const OptimalResult b = optimal_schedule(machine, dag, explicit_one);
    EXPECT_FALSE(b.parallel.has_value());
    EXPECT_EQ(a.best.order, b.best.order);
    EXPECT_EQ(a.best.nops, b.best.nops);
    EXPECT_EQ(a.stats.omega_calls, b.stats.omega_calls);
    EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
    EXPECT_EQ(a.stats.frontier_subtrees, 0u);
  }
}

/// A block whose search cannot finish under a small budget: many
/// statements over very few variables, so value reuse builds deep latency
/// chains (the seed schedule needs NOPs) while the permutation space stays
/// astronomically large. The budget tests below additionally PROVE
/// hardness by asserting the sequential search curtails on it.
BasicBlock wide_hard_block(std::uint64_t seed) {
  GeneratorParams params;
  params.statements = 60;
  params.variables = 3;
  params.constants = 2;
  params.seed = seed;
  params.optimize = false;
  return generate_block(params);
}

/// Budget/deadline tests need a search that cannot finish: turn off every
/// prune that could collapse the tree (equivalence classes, the dominance
/// cache, forced-position windows), leaving only alpha-beta — the rule the
/// shared incumbent implements.
SearchConfig unprunable_config() {
  SearchConfig config;
  config.equivalence_prune = false;
  config.strong_equivalence = false;
  config.window_prune = false;
  config.dominance_cache = false;
  return config;
}

TEST(ParallelSearch, GlobalLambdaFiresWithinOneSlopInterval) {
  // A block far too large to exhaust, with a lambda the workers must
  // collectively respect: the total omega count lands in
  // [lambda, lambda + threads x kParallelOmegaFlushInterval] — the
  // documented overshoot bound of the batched global ledger (sequential
  // searches curtail at exactly lambda; parallel workers flush local
  // counts every interval, so each can overrun by at most one batch).
  const BasicBlock block = wide_hard_block(0xC0FFEE);
  ASSERT_GE(block.size(), 40u);
  const DepGraph dag(block);
  const Machine machine = Machine::paper_simulation();

  const std::uint64_t lambda = 5000;
  {
    // Hardness proof: sequentially the budget fires (at exactly lambda).
    SearchConfig config = unprunable_config();
    config.curtail_lambda = lambda;
    const OptimalResult seq = optimal_schedule(machine, dag, config);
    ASSERT_FALSE(seq.stats.completed);
    ASSERT_EQ(seq.stats.omega_calls, lambda);
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    SearchConfig config = unprunable_config();
    config.curtail_lambda = lambda;
    config.search_threads = threads;
    const OptimalResult result = optimal_schedule(machine, dag, config);

    EXPECT_FALSE(result.stats.completed);
    EXPECT_EQ(result.stats.curtail_reason, CurtailReason::Lambda);
    EXPECT_GE(result.stats.omega_calls, lambda);
    EXPECT_LE(result.stats.omega_calls,
              lambda + threads * kParallelOmegaFlushInterval)
        << threads << " threads";
    // Every curtailed worker ledger must agree on the cause.
    ASSERT_TRUE(result.parallel.has_value());
    for (const SearchStats& ws : result.parallel->subtrees) {
      if (!ws.completed) {
        EXPECT_EQ(ws.curtail_reason, CurtailReason::Lambda);
      }
    }
    // The incumbent survives curtailment.
    EXPECT_EQ(result.best.total_nops(), result.stats.best_nops);
    EXPECT_LE(result.stats.best_nops, result.stats.initial_nops);
  }
}

TEST(ParallelSearch, GlobalDeadlineCurtailsAllWorkers) {
  // Two long serial multiply chains on a single deep pipeline: the NOP
  // floor is provably positive (every op has latency 8 and each chain is
  // serial, so no interleaving hides all stalls), which disarms the
  // best == 0 early exit; with every structural prune off, alpha-beta
  // alone can never finish proving optimality, so only the clock stops
  // this search.
  std::string src;
  for (int i = 0; i < 25; ++i) src += "x = x * x + 1; ";
  for (int i = 0; i < 25; ++i) src += "y = y * y + 2; ";
  const BasicBlock block = generate_tuples(parse_source(src));
  ASSERT_GE(block.size(), 40u);
  const DepGraph dag(block);
  const Machine machine = Machine::single_issue_deep();

  SearchConfig config = unprunable_config();
  config.curtail_lambda = 0;  // only the clock can stop this search
  config.deadline_seconds = 0.05;
  config.search_threads = 4;
  const OptimalResult result = optimal_schedule(machine, dag, config);

  EXPECT_GT(result.stats.best_nops, 0);

  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.curtail_reason, CurtailReason::Deadline);
  ASSERT_TRUE(result.parallel.has_value());
  for (const SearchStats& ws : result.parallel->subtrees) {
    if (!ws.completed) {
      EXPECT_EQ(ws.curtail_reason, CurtailReason::Deadline);
    }
  }
  EXPECT_EQ(result.best.total_nops(), result.stats.best_nops);
}

TEST(ParallelSearch, PressureCeilingAgreesWithSequential) {
  // Register-pressure ceilings interact with every pruning rule; the
  // parallel split must preserve both the feasibility verdict and the
  // optimal-among-feasible cost.
  Rng rng(0x9E55EEu);
  int infeasible_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Machine machine = random_machine(rng);
    const BasicBlock block = random_block(rng, 4);
    if (block.empty() || block.size() > 12) continue;
    const DepGraph dag(block);

    SearchConfig config;
    config.curtail_lambda = 0;
    config.max_live_registers = 2 + static_cast<int>(rng.next_below(3));

    const OptimalResult seq = optimal_schedule(machine, dag, config);
    for (std::size_t threads : {2u, 4u}) {
      SearchConfig parallel_config = config;
      parallel_config.search_threads = threads;
      const OptimalResult par =
          optimal_schedule(machine, dag, parallel_config);
      ASSERT_TRUE(par.stats.completed);
      EXPECT_EQ(par.stats.feasible, seq.stats.feasible) << "trial " << trial;
      EXPECT_EQ(par.stats.best_nops, seq.stats.best_nops)
          << "trial " << trial;
    }
    if (!seq.stats.feasible) ++infeasible_seen;
  }
  // The ceiling range must produce both verdicts, or the test is vacuous.
  EXPECT_GT(infeasible_seen, 0);
}

TEST(ShardedDominanceCache, ConcurrentHammerKeepsExactLedgers) {
  // Four threads pound one sharded cache with overlapping key streams;
  // afterwards the cache's own aggregate stats must equal the summed
  // caller-owned ledgers exactly — no lost updates, no smearing. (This is
  // also the designated ThreadSanitizer target for the cache.)
  ShardedDominanceCache cache(std::size_t{1} << 18, 8);
  constexpr int kThreads = 4;
  constexpr int kProbesPerThread = 50000;
  std::vector<DominanceCacheStats> ledgers(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &ledgers, t] {
      Rng rng(0xABCD + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kProbesPerThread; ++i) {
        // Small key/depth spaces force heavy cross-thread collisions. The
        // verify word is a function of the same underlying id, as in the
        // real search (both hashes describe one state).
        const std::uint64_t id = rng.next_below(5000) + 1;
        const std::uint64_t key = hash64(id);
        const std::uint64_t verify = hash64_alt(id);
        const int depth = static_cast<int>(rng.next_below(12));
        const int cost = static_cast<int>(rng.next_below(40));
        cache.probe_and_update(key, verify, depth, cost,
                               ledgers[static_cast<std::size_t>(t)]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  DominanceCacheStats sum;
  for (const DominanceCacheStats& l : ledgers) {
    sum.probes += l.probes;
    sum.hits += l.hits;
    sum.misses += l.misses;
    sum.inserts += l.inserts;
    sum.evictions += l.evictions;
    sum.superseded += l.superseded;
    sum.verified_rejects += l.verified_rejects;
  }
  EXPECT_EQ(sum.probes,
            static_cast<std::uint64_t>(kThreads) * kProbesPerThread);
  EXPECT_EQ(sum.hits + sum.misses, sum.probes);

  const DominanceCacheStats total = cache.stats();
  EXPECT_EQ(total.probes, sum.probes);
  EXPECT_EQ(total.hits, sum.hits);
  EXPECT_EQ(total.misses, sum.misses);
  EXPECT_EQ(total.inserts, sum.inserts);
  EXPECT_EQ(total.evictions, sum.evictions);
  EXPECT_EQ(total.superseded, sum.superseded);
  EXPECT_EQ(total.verified_rejects, sum.verified_rejects);
  // Every key derives its verify word from the same id, so no probe can
  // ever present a matching key with a mismatched verify word here.
  EXPECT_EQ(total.verified_rejects, 0u);
}

TEST(ShardedDominanceCache, ShardingPreservesDominanceSemantics) {
  // Single-threaded semantic check: repeat visits at equal-or-worse cost
  // are dominated, strictly better costs supersede in place — exactly the
  // sequential cache's contract, just routed through a shard.
  ShardedDominanceCache cache(std::size_t{1} << 16, 4);
  DominanceCacheStats ledger;
  EXPECT_FALSE(cache.probe_and_update(42, 9, 3, 10, ledger));  // insert
  EXPECT_TRUE(cache.probe_and_update(42, 9, 3, 10, ledger));   // equal: hit
  EXPECT_TRUE(cache.probe_and_update(42, 9, 3, 12, ledger));   // worse: hit
  EXPECT_FALSE(cache.probe_and_update(42, 9, 3, 7, ledger));  // better: supersede
  EXPECT_TRUE(cache.probe_and_update(42, 9, 3, 7, ledger));
  EXPECT_FALSE(cache.probe_and_update(42, 9, 4, 7, ledger));  // new depth
  EXPECT_EQ(ledger.probes, 6u);
  EXPECT_EQ(ledger.hits, 3u);
  EXPECT_EQ(ledger.misses, 3u);
  EXPECT_EQ(ledger.inserts, 2u);
  EXPECT_EQ(ledger.superseded, 1u);
  EXPECT_EQ(ledger.verified_rejects, 0u);

  // Shard counts round up to a power of two; the byte budget is split.
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(ShardedDominanceCache(1 << 16, 5).shard_count(), 8u);
  EXPECT_EQ(ShardedDominanceCache(1 << 16, 0).shard_count(), 1u);
  EXPECT_GT(cache.capacity(), 0u);
}

TEST(DominanceCache, ForcedCollisionIsRejectedNotTrusted) {
  // The regression this guards: before the verification word, an entry
  // matched on the bare 64-bit key, so two distinct states colliding on
  // the full word were treated as transpositions — and the second one's
  // subtree was unsoundly pruned. Plant an entry, then probe with the
  // SAME key but a DIFFERENT verify word (a simulated full-word
  // collision): the probe must miss, be counted as a verified reject,
  // and coexist as its own entry afterwards.
  DominanceCache cache;
  const std::uint64_t key = hash64(0xDEADBEEF);
  const std::uint64_t verify_a = hash64_alt(0xDEADBEEF);
  const std::uint64_t verify_b = hash64_alt(0xFEEDFACE);
  ASSERT_NE(verify_a, verify_b);

  EXPECT_FALSE(cache.probe_and_update(key, verify_a, 5, 10));  // plant
  // Colliding stranger, same depth, equal cost: a key-only cache would
  // answer "dominated" here and prune. The verified cache must not.
  EXPECT_FALSE(cache.probe_and_update(key, verify_b, 5, 10));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().verified_rejects, 1u);

  // Both states now live side by side and each matches only itself.
  EXPECT_TRUE(cache.probe_and_update(key, verify_a, 5, 10));
  EXPECT_TRUE(cache.probe_and_update(key, verify_b, 5, 10));
  EXPECT_EQ(cache.stats().hits, 2u);
  // The two self-hits each walked past the other's entry first.
  EXPECT_GE(cache.stats().verified_rejects, 2u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            cache.stats().probes);
}

TEST(ShardedDominanceCache, ForcedCollisionIsRejectedNotTrusted) {
  // Same regression, routed through a shard: the sharded wrapper must
  // propagate the verify word and surface the reject in the caller ledger.
  ShardedDominanceCache cache(std::size_t{1} << 16, 4);
  DominanceCacheStats ledger;
  EXPECT_FALSE(cache.probe_and_update(77, 1111, 6, 4, ledger));
  EXPECT_FALSE(cache.probe_and_update(77, 2222, 6, 4, ledger));
  EXPECT_EQ(ledger.hits, 0u);
  EXPECT_EQ(ledger.verified_rejects, 1u);
  EXPECT_EQ(cache.stats().verified_rejects, 1u);
  EXPECT_TRUE(cache.probe_and_update(77, 1111, 6, 4, ledger));
  EXPECT_TRUE(cache.probe_and_update(77, 2222, 6, 4, ledger));
}

TEST(ParallelSearch, ZeroThreadsSelectsHardwareConcurrency) {
  // search_threads = 0 must resolve rather than hang or divide by zero;
  // on a single-core host this degenerates to the sequential path, so
  // only the cost contract is asserted.
  const Machine machine = Machine::paper_simulation();
  GeneratorParams params;
  params.statements = 6;
  params.variables = 4;
  params.constants = 2;
  params.seed = 7;
  const BasicBlock block = generate_block(params);
  if (block.empty()) GTEST_SKIP();
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 0;
  const OptimalResult seq = optimal_schedule(machine, dag, config);
  config.search_threads = 0;
  const OptimalResult par = optimal_schedule(machine, dag, config);
  EXPECT_TRUE(par.stats.completed);
  EXPECT_EQ(par.stats.best_nops, seq.stats.best_nops);
}

}  // namespace
}  // namespace pipesched
