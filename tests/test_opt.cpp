// Tests for the optimizer passes (Section 3.1), including the semantic-
// preservation property every pass must satisfy.
#include <gtest/gtest.h>

#include "frontend/codegen.hpp"
#include "frontend/opt/passes.hpp"
#include "frontend/parser.hpp"
#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "ir/interp.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

int count_op(const BasicBlock& block, Opcode op) {
  int n = 0;
  for (const Tuple& t : block.tuples()) n += t.op == op;
  return n;
}

TEST(ConstantFolding, FoldsArithmeticChains) {
  const BasicBlock block = parse_block(
      "1: Const \"6\"\n"
      "2: Const \"7\"\n"
      "3: Mul 1, 2\n"
      "4: Const \"2\"\n"
      "5: Add 3, 4\n"
      "6: Store #x, 5\n");
  const PassResult result = constant_folding(block);
  EXPECT_TRUE(result.changed);
  // Mul and Add both become Consts within ONE pass (folds chain through
  // the emitted output).
  EXPECT_EQ(count_op(result.block, Opcode::Mul), 0);
  EXPECT_EQ(count_op(result.block, Opcode::Add), 0);
  const ExecResult exec = interpret(result.block);
  EXPECT_EQ(exec.final_vars.at(result.block.find_var("x")), 44);
}

TEST(ConstantFolding, FoldsDivByZeroWithInterpreterConvention) {
  const BasicBlock block = parse_block(
      "1: Const \"9\"\n"
      "2: Const \"0\"\n"
      "3: Div 1, 2\n"
      "4: Store #x, 3\n");
  const PassResult result = constant_folding(block);
  const ExecResult exec = interpret(result.block);
  EXPECT_EQ(exec.final_vars.at(result.block.find_var("x")), 0);
}

TEST(CopyPropagation, CollapsesMovChains) {
  BasicBlock block;
  const VarId x = block.var_id("x");
  const TupleIndex load = block.append(Opcode::Load, Operand::of_var(x));
  const TupleIndex m1 = block.append(Opcode::Mov, Operand::of_ref(load));
  const TupleIndex m2 = block.append(Opcode::Mov, Operand::of_ref(m1));
  block.append(Opcode::Store, Operand::of_var(x), Operand::of_ref(m2));
  const PassResult result = copy_propagation(block);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(count_op(result.block, Opcode::Mov), 0);
  ASSERT_EQ(result.block.size(), 2u);
  EXPECT_EQ(result.block.tuple(1).b.ref, 0);  // Store reads the Load
}

TEST(Algebraic, SimplifiesIdentities) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Const \"0\"\n"
      "3: Add 1, 2\n"      // a + 0 -> a
      "4: Const \"1\"\n"
      "5: Mul 3, 4\n"      // a * 1 -> a
      "6: Sub 5, 1\n"      // a - a -> 0
      "7: Store #x, 6\n");
  const PassResult result = algebraic_simplification(block);
  EXPECT_TRUE(result.changed);
  // The store's value must resolve to a constant zero.
  const ExecResult exec =
      interpret(result.block, {{result.block.find_var("a"), 123}});
  EXPECT_EQ(exec.final_vars.at(result.block.find_var("x")), 0);
  EXPECT_EQ(count_op(result.block, Opcode::Sub), 0);
}

TEST(Algebraic, StrengthReducesMulByTwo) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Const \"2\"\n"
      "3: Mul 1, 2\n"
      "4: Store #x, 3\n");
  const PassResult result = algebraic_simplification(block);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(count_op(result.block, Opcode::Mul), 0);
  EXPECT_EQ(count_op(result.block, Opcode::Add), 1);
  const ExecResult exec =
      interpret(result.block, {{result.block.find_var("a"), 21}});
  EXPECT_EQ(exec.final_vars.at(result.block.find_var("x")), 42);
}

TEST(Algebraic, DoubleNegationCancels) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n"
      "3: Neg 2\n"
      "4: Store #x, 3\n");
  const PassResult result = algebraic_simplification(block);
  EXPECT_TRUE(result.changed);
  // Store now reads the Load directly; the dead Negs go in DCE.
  const BasicBlock cleaned = dead_code_elimination(result.block).block;
  EXPECT_EQ(count_op(cleaned, Opcode::Neg), 0);
}

TEST(LoadForwarding, ReusesStoredValue) {
  const BasicBlock block = parse_block(
      "1: Const \"5\"\n"
      "2: Store #a, 1\n"
      "3: Load #a\n"
      "4: Neg 3\n"
      "5: Store #b, 4\n");
  const PassResult result = load_forwarding(block);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(count_op(result.block, Opcode::Load), 0);
  const ExecResult exec = interpret(result.block);
  EXPECT_EQ(exec.final_vars.at(result.block.find_var("b")), -5);
}

TEST(LoadForwarding, MergesRepeatedLoads) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #a\n"
      "3: Add 1, 2\n"
      "4: Store #x, 3\n");
  const PassResult result = load_forwarding(block);
  EXPECT_EQ(count_op(result.block, Opcode::Load), 1);
}

TEST(Cse, MergesPureExpressionsAndRespectsCommutativity) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Add 1, 2\n"
      "4: Add 2, 1\n"     // same as 3 by commutativity
      "5: Mul 3, 4\n"
      "6: Store #x, 5\n");
  const PassResult result = common_subexpression_elimination(block);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(count_op(result.block, Opcode::Add), 1);
  // Mul now squares the single Add.
  const ExecResult exec = interpret(
      result.block, {{result.block.find_var("a"), 3},
                     {result.block.find_var("b"), 4}});
  EXPECT_EQ(exec.final_vars.at(result.block.find_var("x")), 49);
}

TEST(Cse, DoesNotMergeLoadsAcrossStores) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Const \"9\"\n"
      "3: Store #a, 2\n"
      "4: Load #a\n"
      "5: Add 1, 4\n"
      "6: Store #x, 5\n");
  const PassResult result = common_subexpression_elimination(block);
  EXPECT_EQ(count_op(result.block, Opcode::Load), 2);
}

TEST(Cse, DoesNotMergeNonCommutativeSwaps) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Sub 1, 2\n"
      "4: Sub 2, 1\n"
      "5: Mul 3, 4\n"
      "6: Store #x, 5\n");
  const PassResult result = common_subexpression_elimination(block);
  EXPECT_EQ(count_op(result.block, Opcode::Sub), 2);
}

TEST(Dce, RemovesUnobservableStoresAndTheirInputs) {
  const BasicBlock block = parse_block(
      "1: Const \"1\"\n"
      "2: Store #a, 1\n"   // overwritten before any read: dead
      "3: Const \"2\"\n"
      "4: Store #a, 3\n");
  const PassResult result = dead_code_elimination(block);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(result.block.size(), 2u);
  const ExecResult exec = interpret(result.block);
  EXPECT_EQ(exec.final_vars.at(result.block.find_var("a")), 2);
}

TEST(Dce, KeepsStoresObservedByLoads) {
  const BasicBlock block = parse_block(
      "1: Const \"1\"\n"
      "2: Store #a, 1\n"
      "3: Load #a\n"       // reads store 2
      "4: Store #b, 3\n"
      "5: Const \"2\"\n"
      "6: Store #a, 5\n");
  const PassResult result = dead_code_elimination(block);
  EXPECT_EQ(count_op(result.block, Opcode::Store), 3);
}

TEST(Dce, RemovesDeadLoads) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Store #x, 2\n");
  const PassResult result = dead_code_elimination(block);
  EXPECT_EQ(count_op(result.block, Opcode::Load), 1);
}

TEST(Reassociation, BalancesAdditionChains) {
  // ((((a+b)+c)+d)+e): height 4 chain -> balanced height 3 tree.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n"
      "4: Load #d\n"
      "5: Load #e\n"
      "6: Add 1, 2\n"
      "7: Add 6, 3\n"
      "8: Add 7, 4\n"
      "9: Add 8, 5\n"
      "10: Store #x, 9\n");
  const PassResult result = reassociation(block);
  EXPECT_TRUE(result.changed);
  const BasicBlock cleaned = dead_code_elimination(result.block).block;
  const DepGraph before(block);
  const DepGraph after(cleaned);
  EXPECT_LT(after.critical_path_length(), before.critical_path_length());
  // Semantics: a+b+c+d+e with a..e = 1..5 -> 15.
  VarEnv env;
  for (std::size_t v = 0; v < cleaned.var_count(); ++v) {
    const std::string& name = cleaned.var_name(static_cast<VarId>(v));
    if (name.size() == 1 && name[0] >= 'a' && name[0] <= 'e') {
      env[static_cast<VarId>(v)] = name[0] - 'a' + 1;
    }
  }
  EXPECT_EQ(interpret(cleaned, env).final_vars.at(cleaned.find_var("x")), 15);
}

TEST(Reassociation, LeavesMultiUseInteriorNodesAlone) {
  // The (a+b) value is used twice: it must not be duplicated or folded.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Add 1, 2\n"
      "4: Add 3, 1\n"
      "5: Store #x, 4\n"
      "6: Store #y, 3\n");
  const PassResult result = reassociation(block);
  EXPECT_FALSE(result.changed);
}

TEST(Reassociation, DoesNotTouchNonAssociativeOps) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n"
      "4: Sub 1, 2\n"
      "5: Sub 4, 3\n"
      "6: Store #x, 5\n");
  EXPECT_FALSE(reassociation(block).changed);
}

TEST(Reassociation, PreservesSemanticsOnRandomPrograms) {
  Rng rng(606);
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    GeneratorParams params;
    params.statements = 10;
    params.variables = 4;
    params.constants = 3;
    params.seed = seed * 7 + 1;
    params.optimize = false;
    const BasicBlock block = generate_tuples(generate_source(params));
    VarEnv initial;
    for (std::size_t v = 0; v < block.var_count(); ++v) {
      initial[static_cast<VarId>(v)] = rng.next_in(-40, 40);
    }
    const VarEnv expected = interpret(block, initial).final_vars;
    const PassResult result = reassociation(block);
    const VarEnv got = interpret(result.block, initial).final_vars;
    EXPECT_EQ(got, expected) << seed;
    // And composed with the standard pipeline afterwards.
    const BasicBlock full = run_standard_pipeline(result.block);
    EXPECT_EQ(interpret(full, initial).final_vars, expected) << seed;
  }
}

TEST(Reassociation, ShortensSchedulesOnDeepChains) {
  // The scheduling payoff: a long multiply chain on the paper machine.
  const BasicBlock block = generate_tuples(
      parse_source("p = a * b * c * d * e * f * g * h;"));
  const Machine machine = Machine::paper_simulation();
  const BasicBlock plain = run_standard_pipeline(block);
  const BasicBlock balanced =
      run_standard_pipeline(reassociation(block).block);
  SearchConfig config;
  config.curtail_lambda = 100000;
  const int nops_plain =
      optimal_schedule(machine, DepGraph(plain), config).best.total_nops();
  const int nops_balanced =
      optimal_schedule(machine, DepGraph(balanced), config)
          .best.total_nops();
  EXPECT_LT(nops_balanced, nops_plain);
}

TEST(Pipeline, EveryPassPreservesSemanticsOnRandomPrograms) {
  // Property: for random generated programs and random inputs, each pass
  // (and the whole pipeline) leaves the final variable state unchanged.
  Rng rng(2024);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorParams params;
    params.statements = 9;
    params.variables = 4;
    params.constants = 3;
    params.seed = seed;
    params.optimize = false;
    const SourceProgram source = generate_source(params);
    const BasicBlock block = generate_tuples(source);

    VarEnv initial;
    for (std::size_t v = 0; v < block.var_count(); ++v) {
      initial[static_cast<VarId>(v)] = rng.next_in(-50, 50);
    }
    const VarEnv expected = interpret(block, initial).final_vars;

    for (const Pass& pass : standard_passes()) {
      const PassResult result = pass.run(block);
      VarEnv got = interpret(result.block, initial).final_vars;
      // DCE may drop unread variables from the final state only if they
      // were never stored; compare on the expected keys that still exist.
      for (const auto& [var, value] : got) {
        EXPECT_EQ(value, expected.at(var))
            << pass.name << " seed " << seed << " var "
            << block.var_name(var);
      }
      EXPECT_EQ(got.size(), expected.size()) << pass.name << " seed " << seed;
    }

    const BasicBlock optimized = run_standard_pipeline(block);
    const VarEnv after = interpret(optimized, initial).final_vars;
    for (const auto& [var, value] : after) {
      EXPECT_EQ(value, expected.at(var)) << "pipeline seed " << seed;
    }
  }
}

TEST(Pipeline, ReachesFixpoint) {
  GeneratorParams params;
  params.statements = 12;
  params.variables = 4;
  params.constants = 2;
  params.seed = 77;
  params.optimize = false;
  const BasicBlock block = generate_tuples(generate_source(params));
  const BasicBlock once = run_standard_pipeline(block);
  const BasicBlock twice = run_standard_pipeline(once);
  EXPECT_EQ(once.to_string(), twice.to_string());
}

TEST(Pipeline, OptimizationShrinksTypicalBlocks) {
  // "The resulting code is usually substantially smaller" (Section 3.1).
  std::size_t before = 0;
  std::size_t after = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratorParams params;
    params.statements = 10;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed;
    params.optimize = false;
    const BasicBlock raw = generate_tuples(generate_source(params));
    before += raw.size();
    after += run_standard_pipeline(raw).size();
  }
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace pipesched
