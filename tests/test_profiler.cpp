// The sampling profiler, flight recorder, and stall watchdog
// (util/profiler):
//   * disabled mode is silent — markers are inert, no samples accumulate,
//     and nothing leaks into the metrics registry;
//   * phase stacks stay balanced under concurrent push/pop from worker
//     threads, including nesting deeper than the fixed recording depth
//     and enable/disable flips mid-scope;
//   * the sampler's phase shares agree with the annotated wall time on a
//     controlled spin workload, and real searches attribute under "bnb";
//   * collapsed-stack output parses (path + count lines, counts summing
//     to the session total) and the phase table's shares sum to ~100%;
//   * the flight-recorder ring keeps the last N heartbeats in order;
//   * the watchdog dumps a stalled search exactly once — and leaves a
//     progressing search alone — and the stall JSON is well-formed.
//
// Test order matters once: DisabledModeIsSilent asserts the registry has
// no ps_profile_samples_total family, so it must run before any test that
// flushes one (gtest runs tests in declaration order within a file).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/timer.hpp"

namespace pipesched {
namespace {

/// Minimal structural JSON check (same contract as test_trace): braces
/// and brackets balance outside string literals, document non-empty. CI
/// additionally round-trips real stall files through python3 -m json.tool.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && !text.empty();
}

/// Burn wall time inside the current scope. The sink defeats the
/// optimizer; the Timer bounds the loop by time, not iterations, so the
/// test is robust to machine speed.
std::atomic<std::uint64_t> g_spin_sink{0};

void spin_for(double seconds) {
  Timer t;
  std::uint64_t acc = 0;
  while (t.seconds() < seconds) {
    for (int i = 0; i < 1000; ++i) acc += static_cast<std::uint64_t>(i) * 31;
  }
  g_spin_sink.fetch_add(acc, std::memory_order_relaxed);
}

/// Every test starts and ends with the profiler, watchdog, and metrics
/// registry off and empty.
class ProfilerTest : public testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    profiler_disable();
    profiler_clear();
    watchdog_disable();
    metrics_disable();
    metrics_reset();
  }
};

TEST_F(ProfilerTest, DisabledModeIsSilent) {
  metrics_enable();
  {
    PS_PROF_PHASE("ghost");
    { PS_PROF_PHASE("nested_ghost"); }
    spin_for(0.01);
  }
  EXPECT_FALSE(profiler_enabled());
  EXPECT_TRUE(profiler_samples().empty());
  EXPECT_EQ(profiler_total_samples(), 0u);
  EXPECT_EQ(profiler_phase_table(), "");

  // A no-op disable must not flush an empty counter family either.
  profiler_disable();
  for (const MetricsSnapshot::Series& s : metrics_snapshot().series) {
    EXPECT_NE(s.name, "ps_profile_samples_total");
  }

  std::ostringstream out;
  profiler_write_collapsed(out);
  EXPECT_EQ(out.str(), "");
}

TEST_F(ProfilerTest, BalancedPushPopUnderThreads) {
  profiler_enable();
  std::atomic<int> unbalanced{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&unbalanced] {
      for (int i = 0; i < 2000; ++i) {
        PS_PROF_PHASE("level1");
        PS_PROF_PHASE("level2");
        {
          // Nest past kProfilerMaxDepth: frames clamp, depth still
          // counts, and the pops below must rebalance exactly.
          PS_PROF_PHASE("d3");
          PS_PROF_PHASE("d4");
          PS_PROF_PHASE("d5");
          PS_PROF_PHASE("d6");
          PS_PROF_PHASE("d7");
          PS_PROF_PHASE("d8");
          PS_PROF_PHASE("d9");
          PS_PROF_PHASE("d10");
        }
      }
      if (prof_detail::local_stack().depth.load() != 0) {
        unbalanced.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  profiler_disable();
  EXPECT_EQ(unbalanced.load(), 0);

  // Disable mid-scope: the destructor still pops (the marker remembered
  // its stack), so the owning thread's depth returns to zero.
  profiler_enable();
  {
    PS_PROF_PHASE("open_across_disable");
    profiler_disable();
  }
  EXPECT_EQ(prof_detail::local_stack().depth.load(), 0u);

  // Enable mid-scope: a marker constructed while off never pushes, and
  // must not pop either.
  {
    PS_PROF_PHASE("constructed_while_off");
    profiler_enable();
  }
  profiler_disable();
  EXPECT_EQ(prof_detail::local_stack().depth.load(), 0u);
}

TEST_F(ProfilerTest, SamplerAgreesWithAnnotatedSpin) {
  profiler_enable();
  {
    PS_PROF_PHASE("spin_outer");
    { PS_PROF_PHASE("spin_hot"); spin_for(0.30); }
    spin_for(0.10);
  }
  profiler_disable();

  std::uint64_t hot = 0;
  std::uint64_t outer_only = 0;
  for (const ProfileSample& s : profiler_samples()) {
    if (s.path == "spin_outer;spin_hot") hot += s.count;
    if (s.path == "spin_outer") outer_only += s.count;
  }
  const std::uint64_t total = hot + outer_only;
  ASSERT_GT(total, 50u);  // ~400 expected at 997 Hz over 0.4 s
  // spin_hot held 75% of the annotated wall time; allow a generous
  // scheduling-noise band.
  const double hot_share = static_cast<double>(hot) /
                           static_cast<double>(total);
  EXPECT_GT(hot_share, 0.60);
  EXPECT_LT(hot_share, 0.90);
  EXPECT_GT(profiler_sample_period_seconds(), 0.0);
}

TEST_F(ProfilerTest, CollapsedOutputAndPhaseTableParse) {
  profiler_enable();
  {
    PS_PROF_PHASE("outer");
    { PS_PROF_PHASE("inner"); spin_for(0.08); }
    spin_for(0.04);
  }
  profiler_disable();
  ASSERT_GT(profiler_total_samples(), 0u);

  std::ostringstream out;
  profiler_write_collapsed(out);
  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t summed = 0;
  bool saw_outer = false;
  bool saw_nested = false;
  while (std::getline(lines, line)) {
    // Every line is "path count" with a non-empty, space-free path.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string path = line.substr(0, space);
    EXPECT_EQ(path.find(' '), std::string::npos) << line;
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) ASSERT_TRUE(c >= '0' && c <= '9') << line;
    summed += std::strtoull(count.c_str(), nullptr, 10);
    if (path == "outer") saw_outer = true;
    if (path == "outer;inner") saw_nested = true;
  }
  EXPECT_EQ(summed, profiler_total_samples());
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_nested);

  // The phase table reports every path and its shares sum to ~100%.
  const std::string table = profiler_phase_table();
  EXPECT_NE(table.find("outer;inner"), std::string::npos) << table;
  double share_sum = 0;
  std::istringstream rows(table);
  while (std::getline(rows, line)) {
    const std::size_t pct = line.rfind('%');
    if (pct == std::string::npos) continue;
    const std::size_t start = line.find_last_of(' ', pct);
    ASSERT_NE(start, std::string::npos) << line;
    share_sum += std::atof(line.substr(start + 1, pct - start - 1).c_str());
  }
  EXPECT_NEAR(share_sum, 100.0, 1.0) << table;
}

TEST_F(ProfilerTest, RealSearchAttributesUnderBnb) {
  metrics_enable();
  profiler_enable();
  Timer wall;
  SearchConfig config;
  config.curtail_lambda = 500000;
  std::uint64_t seed = 9000;
  // Keep searching fresh blocks until the sampler has had real time to
  // observe the annotated search phases.
  while (wall.seconds() < 0.25) {
    GeneratorParams params;
    params.statements = 14;
    params.variables = 5;
    params.seed = seed++;
    const BasicBlock block = generate_block(params);
    const DepGraph dag(block);
    optimal_schedule(Machine::paper_simulation(), dag, config);
  }
  profiler_disable();

  std::uint64_t bnb = 0;
  for (const ProfileSample& s : profiler_samples()) {
    if (s.path.rfind("bnb", 0) == 0) bnb += s.count;
  }
  EXPECT_GT(bnb, 0u);

  // profiler_disable flushed per-top-level-phase counters into the
  // enabled registry.
  const MetricsSnapshot snapshot = metrics_snapshot();
  EXPECT_GT(snapshot.value_or_zero("ps_profile_samples_total",
                                   {{"phase", "bnb"}}),
            0.0);
}

TEST_F(ProfilerTest, RingKeepsLastHeartbeatsInOrder) {
  SearchMonitor monitor("ring_test");
  EXPECT_STREQ(monitor.label(), "ring_test");
  const std::size_t pushes = SearchMonitor::kRingCapacity + 10;
  for (std::size_t i = 1; i <= pushes; ++i) {
    monitor.heartbeat(/*nodes=*/i * 1024, /*incumbent_nops=*/
                      static_cast<int>(pushes - i), /*depth=*/
                      static_cast<std::uint32_t>(i), /*cache_hit_pct=*/50.0);
  }
  const std::vector<HeartbeatSnapshot> ring = monitor.ring();
  ASSERT_EQ(ring.size(), SearchMonitor::kRingCapacity);
  // Oldest surviving entry is push #11; newest is the final push.
  EXPECT_EQ(ring.front().nodes, 11u * 1024u);
  EXPECT_EQ(ring.back().nodes, pushes * 1024u);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_GT(ring[i].nodes, ring[i - 1].nodes);
    EXPECT_GE(ring[i].t_us, ring[i - 1].t_us);
  }
  EXPECT_EQ(ring.back().depth, pushes);
  EXPECT_EQ(ring.back().incumbent_nops, 0);
}

TEST_F(ProfilerTest, WatchdogDumpsStalledSearchOnceAndSparesProgress) {
  // CI overrides the stall-JSON path so it can round-trip the file
  // through python3 -m json.tool after the test run.
  const char* env_path = std::getenv("PS_TEST_STALL_JSON");
  const std::string stall_path =
      env_path && env_path[0] != '\0'
          ? std::string(env_path)
          : std::string(testing::TempDir()) + "ps_test_stall.json";

  const std::uint64_t before = watchdog_stall_count();
  SearchMonitor stalled("bnb");
  stalled.heartbeat(4096, 7, 12, 33.0);  // ...then silence: a stall

  std::atomic<bool> stop{false};
  std::thread progressing_search([&stop] {
    SearchMonitor progressing("cp");
    std::uint64_t nodes = 0;
    while (!stop.load()) {
      progressing.heartbeat(nodes += 1024, -1, 3, 0.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  watchdog_enable(/*seconds=*/0.1, stall_path);
  EXPECT_TRUE(watchdog_enabled());
  Timer wall;
  while (watchdog_stall_count() == before && wall.seconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(watchdog_stall_count(), before + 1);

  // The dump is one-shot: the stalled monitor stays stalled, yet no
  // second dump arrives, and the progressing search is never dumped.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(watchdog_stall_count(), before + 1);
  stop.store(true);
  progressing_search.join();
  watchdog_disable();
  EXPECT_FALSE(watchdog_enabled());

  std::ifstream in(stall_path);
  ASSERT_TRUE(in.is_open()) << stall_path;
  std::ostringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"label\""), std::string::npos);
  EXPECT_NE(json.find("bnb"), std::string::npos);
  EXPECT_NE(json.find("\"ring\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_stacks\""), std::string::npos);
  // The flight recorder captured the stalled search's last heartbeat.
  EXPECT_NE(json.find("4096"), std::string::npos);
}

TEST_F(ProfilerTest, WatchdogIgnoresHealthyHeartbeats) {
  const std::uint64_t before = watchdog_stall_count();
  std::atomic<bool> stop{false};
  std::thread healthy([&stop] {
    SearchMonitor monitor("bnb");
    std::uint64_t nodes = 0;
    while (!stop.load()) {
      monitor.heartbeat(nodes += 1024, -1, 2, 0.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  watchdog_enable(/*seconds=*/0.08);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  healthy.join();
  watchdog_disable();
  EXPECT_EQ(watchdog_stall_count(), before);
}

}  // namespace
}  // namespace pipesched
