// Unit tests for the utility layer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <set>

#include "util/ascii_chart.hpp"
#include "util/bitset.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace pipesched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(3);
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 500; ++i) {
    const std::size_t pick = rng.next_weighted(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(99);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1_again = Rng(99).split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Bitset, SetTestResetCount) {
  DynBitset bits(130);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, SubsetAndDisjoint) {
  DynBitset a(100);
  DynBitset b(100);
  a.set(3);
  a.set(70);
  b.set(3);
  b.set(70);
  b.set(99);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  DynBitset c(100);
  c.set(42);
  EXPECT_TRUE(a.is_disjoint_from(c));
  c.set(70);
  EXPECT_FALSE(a.is_disjoint_from(c));
}

TEST(Bitset, ForEachVisitsAscending) {
  DynBitset bits(200);
  const std::vector<std::size_t> expected = {5, 63, 64, 150, 199};
  for (auto i : expected) bits.set(i);
  std::vector<std::size_t> seen;
  bits.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 25), 2.0);
}

TEST(Stats, QuantilesMatchPercentileWithOneSort) {
  std::vector<double> values = {9, 1, 5, 3, 7, 2, 8, 4, 6, 10};
  const std::vector<double> qs = quantiles(values, {0, 25, 50, 90, 100});
  ASSERT_EQ(qs.size(), 5u);
  EXPECT_DOUBLE_EQ(qs[0], percentile(values, 0));
  EXPECT_DOUBLE_EQ(qs[1], percentile(values, 25));
  EXPECT_DOUBLE_EQ(qs[2], percentile(values, 50));
  EXPECT_DOUBLE_EQ(qs[3], percentile(values, 90));
  EXPECT_DOUBLE_EQ(qs[4], percentile(values, 100));
}

TEST(Stats, QuantilesSingleValue) {
  const std::vector<double> qs = quantiles({42.0}, {0, 50, 99, 100});
  for (double q : qs) EXPECT_DOUBLE_EQ(q, 42.0);
}

TEST(Stats, PercentileSingleValueIsThatValueForAnyP) {
  for (double p : {0.0, 1.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile({7.5}, p), 7.5) << p;
  }
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(quantiles({}, {50.0}), Error);
  // An empty percentile LIST of a non-empty sample is fine: no work.
  EXPECT_TRUE(quantiles({1.0, 2.0}, {}).empty());
}

TEST(Stats, PercentileOutOfRangeThrows) {
  EXPECT_THROW(percentile({1.0, 2.0}, -0.5), Error);
  EXPECT_THROW(percentile({1.0, 2.0}, 100.5), Error);
  EXPECT_THROW(quantiles({1.0, 2.0}, {50.0, 101.0}), Error);
}

TEST(Stats, HistogramAccumulates) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(10);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_EQ(h.min_key(), 3);
  EXPECT_EQ(h.max_key(), 10);
  EXPECT_DOUBLE_EQ(h.bins().at(3), 2.0);
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1307674368000ull), "1,307,674,368,000");
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(split("a,b,,c", ',')[2], "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = "test_util_out.csv";
  {
    CsvWriter csv(path);
    csv.row({"a", "b,c", "d\"e"});
    csv.row_of(1, 2.5, "x");
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1,2.5,x");
  std::filesystem::remove(path);
}

TEST(Csv, FlushDetectsWriteFailure) {
  // /dev/full accepts the open but fails every physical write — the
  // classic disk-full simulation. Skip on systems without it.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  CsvWriter csv("/dev/full");
  // The stream buffers, so rows may appear to succeed; flush() must not.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100000; ++i) csv.row({"some", "cells", "here"});
        csv.flush();
      },
      Error);
}

TEST(Csv, CloseReportsCleanWrite) {
  const std::string path = "test_util_close.csv";
  CsvWriter csv(path);
  csv.row({"a", "b"});
  EXPECT_NO_THROW(csv.close());
  std::filesystem::remove(path);
}

TEST(Jsonl, WritesOneObjectPerLine) {
  const std::string path = "test_util_out.jsonl";
  {
    JsonlWriter out(path);
    out.begin();
    out.field("name", "a\"b\nc");
    out.field("count", std::uint64_t{42});
    out.field("ok", true);
    out.field_raw("ratio", "0.5");
    out.end();
    out.close();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "{\"name\":\"a\\\"b\\nc\",\"count\":42,\"ok\":true,"
            "\"ratio\":0.5}");
  std::filesystem::remove(path);
}

TEST(Jsonl, FlushDetectsWriteFailure) {
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  JsonlWriter out("/dev/full");
  EXPECT_THROW(
      {
        for (int i = 0; i < 100000; ++i) {
          out.begin();
          out.field("k", i);
          out.end();
        }
        out.flush();
      },
      Error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for_each(pool, hits.size(),
                    [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    parallel_for_each(pool, 50, [&](std::size_t) { ++counter; });
  }
  EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  // Before the fix a throwing worker called std::terminate and took the
  // whole process down; now the first exception is rethrown on the
  // calling thread once the batch drains.
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for_each(pool, 64,
                                 [&](std::size_t i) {
                                   if (i == 13) {
                                     throw Error("worker fault");
                                   }
                                 }),
               Error);

  // The pool must survive the failed batch and run later ones normally.
  std::atomic<int> counter{0};
  parallel_for_each(pool, 64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, FirstExceptionWinsWhenManyThrow) {
  ThreadPool pool(4);
  try {
    parallel_for_each(pool, 256, [&](std::size_t i) {
      throw Error("fault at " + std::to_string(i));
    });
    FAIL() << "expected parallel_for_each to rethrow";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fault at "), std::string::npos);
  }
}

TEST(AsciiChart, RendersWithoutCrashing) {
  std::vector<ChartPoint> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({static_cast<double>(i), static_cast<double>(i * i)});
  }
  ChartOptions options;
  options.title = "test";
  options.log_y = true;
  const std::string chart = render_scatter(points, options);
  EXPECT_NE(chart.find("test"), std::string::npos);
  EXPECT_GT(chart.size(), 100u);

  Histogram h;
  h.add(1, 5);
  h.add(2, 10);
  const std::string bars = render_histogram(h, options);
  EXPECT_NE(bars.find("#"), std::string::npos);
}

TEST(Json, ParsesScalarsObjectsArrays) {
  const JsonValue doc = parse_json(
      R"({"a": 1.5, "b": [true, false, null], "c": {"nested": "x"},
          "neg": -3e2, "big": 123456789})");
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 1.5);
  const auto& arr = doc.find("b")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(doc.find_path({"c", "nested"})->as_string(), "x");
  EXPECT_DOUBLE_EQ(doc.find("neg")->as_number(), -300.0);
  EXPECT_DOUBLE_EQ(doc.find("big")->as_number(), 123456789.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_EQ(doc.find_path({"c", "absent"}), nullptr);
}

TEST(Json, DecodesEscapesAndSurrogatePairs) {
  const JsonValue doc =
      parse_json(R"({"s": "tab\t quote\" back\\ u\u00e9 \ud83d\ude00"})");
  const std::string& s = doc.find("s")->as_string();
  EXPECT_NE(s.find('\t'), std::string::npos);
  EXPECT_NE(s.find('"'), std::string::npos);
  EXPECT_NE(s.find('\\'), std::string::npos);
  EXPECT_NE(s.find("\xc3\xa9"), std::string::npos);          // é
  EXPECT_NE(s.find("\xf0\x9f\x98\x80"), std::string::npos);  // emoji
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("{\"a\": }"), Error);
  EXPECT_THROW(parse_json("[1, 2,]"), Error);
  EXPECT_THROW(parse_json("01"), Error);       // leading zero
  EXPECT_THROW(parse_json("1.."), Error);
  EXPECT_THROW(parse_json("nul"), Error);
  EXPECT_THROW(parse_json("{} trailing"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("\"\\ud83d\""), Error);  // lone surrogate
}

TEST(Json, IntegerSyntaxKeepsExactInt64) {
  // 2^53 + 1 is the first integer a double cannot represent; a parser
  // routing everything through strtod would silently read 2^53.
  const JsonValue doc = parse_json(
      R"({"big": 9007199254740993, "neg": -9007199254740993,
          "max": 9223372036854775807, "min": -9223372036854775808,
          "flt": 9007199254740993.0, "exp": 9e15, "small": 42})");
  ASSERT_TRUE(doc.find("big")->is_integer());
  EXPECT_EQ(doc.find("big")->as_int64(), 9007199254740993LL);
  EXPECT_EQ(doc.find("neg")->as_int64(), -9007199254740993LL);
  EXPECT_EQ(doc.find("max")->as_int64(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(doc.find("min")->as_int64(),
            std::numeric_limits<std::int64_t>::min());
  // '.'/'e' syntax stays a double even when the value is integral.
  EXPECT_FALSE(doc.find("flt")->is_integer());
  EXPECT_FALSE(doc.find("exp")->is_integer());
  EXPECT_THROW(doc.find("flt")->as_int64(), Error);
  // as_number still works on exact integers (with the usual rounding).
  EXPECT_TRUE(doc.find("small")->is_integer());
  EXPECT_DOUBLE_EQ(doc.find("small")->as_number(), 42.0);
}

TEST(Json, OutOfRangeIntegerFallsBackToDouble) {
  const JsonValue doc = parse_json(R"({"v": 98765432109876543210})");
  ASSERT_TRUE(doc.find("v")->is_number());
  EXPECT_FALSE(doc.find("v")->is_integer());
  EXPECT_DOUBLE_EQ(doc.find("v")->as_number(), 9.876543210987654e19);
}

TEST(Json, MakeIntegerRoundTripsAbove2To53) {
  const JsonValue v = JsonValue::make_integer(9007199254740993LL);
  EXPECT_TRUE(v.is_integer());
  EXPECT_EQ(v.as_int64(), 9007199254740993LL);
}

TEST(Json, TypeMismatchAccessorsThrow) {
  const JsonValue doc = parse_json(R"({"n": 1})");
  EXPECT_THROW(doc.find("n")->as_string(), Error);
  EXPECT_THROW(doc.find("n")->as_array(), Error);
  EXPECT_THROW(doc.as_number(), Error);
}

TEST(Json, JsonlFileParsesLineByLine) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "ps_test_util.jsonl";
  {
    std::ofstream out(path);
    out << "{\"i\": 0}\n\n{\"i\": 1}\n";  // blank lines are skipped
  }
  const std::vector<JsonValue> records = parse_jsonl_file(path.string());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[1].find("i")->as_number(), 1.0);
  fs::remove(path);
  EXPECT_THROW(parse_json_file((fs::temp_directory_path() /
                                "ps_no_such_file.json")
                                   .string()),
               Error);
}

}  // namespace
}  // namespace pipesched
