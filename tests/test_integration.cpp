// End-to-end tests of the compiler driver (Figure 2's whole back end) and
// the corpus experiment harness.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/corpus_runner.hpp"
#include "ir/dag.hpp"
#include "sim/simulator.hpp"

namespace pipesched {
namespace {

const char* kKernel =
    "t = a * x;\n"
    "u = b * y;\n"
    "s = t + u;\n"
    "r = s / n;\n";

TEST(Compiler, SourceToAssemblyNopPadding) {
  CompileOptions options;
  options.search.curtail_lambda = 50000;
  const CompileResult result = compile_source(kKernel, options);
  EXPECT_FALSE(result.block.empty());
  EXPECT_NE(result.assembly.find("mul"), std::string::npos);
  EXPECT_NE(result.assembly.find("st"), std::string::npos);
  // The scheduler output must validate on the simulator.
  const DepGraph dag(result.block);
  const SimResult sim = validate_padded(options.machine, dag, result.schedule);
  EXPECT_TRUE(sim.ok) << sim.error;
  // Allocation covers the schedule.
  EXPECT_TRUE(verify_allocation(result.block, result.schedule.order,
                                result.allocation));
}

TEST(Compiler, EmitMechanismsAgreeOnInstructionCount) {
  CompileOptions padded;
  padded.emit.mechanism = DelayMechanism::NopPadding;
  CompileOptions interlock;
  interlock.emit.mechanism = DelayMechanism::ImplicitInterlock;
  CompileOptions tagged;
  tagged.emit.mechanism = DelayMechanism::ExplicitInterlock;

  const CompileResult a = compile_source(kKernel, padded);
  const CompileResult b = compile_source(kKernel, interlock);
  const CompileResult c = compile_source(kKernel, tagged);

  const auto count_lines = [](const std::string& text, const char* needle) {
    int n = 0;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  // Same schedule, so same real instructions; only padding differs.
  EXPECT_EQ(a.schedule.order, b.schedule.order);
  EXPECT_GT(count_lines(a.assembly, "nop"), 0);
  EXPECT_EQ(count_lines(b.assembly, "nop"), 0);
  EXPECT_GT(count_lines(c.assembly, "wait="), 0);
}

TEST(Compiler, SchedulerKindsRankCorrectly) {
  auto nops_with = [&](SchedulerKind kind) {
    CompileOptions options;
    options.machine = Machine::risc_classic();
    options.scheduler = kind;
    options.search.curtail_lambda = 100000;
    return compile_source(kKernel, options).schedule.total_nops();
  };
  const int original = nops_with(SchedulerKind::Original);
  const int list = nops_with(SchedulerKind::List);
  const int greedy = nops_with(SchedulerKind::Greedy);
  const int optimal = nops_with(SchedulerKind::Optimal);
  EXPECT_LE(optimal, list);
  EXPECT_LE(optimal, greedy);
  EXPECT_LE(optimal, original);
}

TEST(Compiler, UnoptimizedPathWorksToo) {
  CompileOptions options;
  options.optimize = false;
  const CompileResult result = compile_source(kKernel, options);
  // Without the optimizer the block keeps every generated tuple.
  CompileOptions optimized;
  const CompileResult opt = compile_source(kKernel, optimized);
  EXPECT_GE(result.block.size(), opt.block.size());
}

TEST(Compiler, SchedulerKindNamesAreStable) {
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::Optimal), "optimal");
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::Exhaustive), "exhaustive");
}

TEST(CorpusRunner, SmallCorpusEndToEnd) {
  CorpusSpec spec;
  spec.total_runs = 120;
  CorpusRunOptions options;
  options.search.curtail_lambda = 20000;
  const auto records = run_corpus(corpus_params(spec), options);
  ASSERT_EQ(records.size(), 120u);

  const CorpusSummary summary = summarize_corpus(records);
  EXPECT_EQ(summary.total.runs, 120u);
  EXPECT_EQ(summary.completed.runs + summary.truncated.runs, 120u);
  // The headline claim at small scale: the vast majority complete, and the
  // optimal schedules need far fewer NOPs than the seeds.
  EXPECT_GT(summary.completed.percent, 90.0);
  EXPECT_LT(summary.completed.avg_final_nops,
            summary.completed.avg_initial_nops);

  const std::string table = render_corpus_summary(summary);
  EXPECT_NE(table.find("Number of Runs"), std::string::npos);
  EXPECT_NE(table.find("Avg. Omega Calls"), std::string::npos);
}

TEST(CorpusRunner, DeterministicAcrossThreadCounts) {
  CorpusSpec spec;
  spec.total_runs = 40;
  CorpusRunOptions one;
  one.threads = 1;
  one.search.curtail_lambda = 5000;
  CorpusRunOptions four;
  four.threads = 4;
  four.search.curtail_lambda = 5000;
  const auto a = run_corpus(corpus_params(spec), one);
  const auto b = run_corpus(corpus_params(spec), four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].block_size, b[i].block_size) << i;
    EXPECT_EQ(a[i].final_nops, b[i].final_nops) << i;
    EXPECT_EQ(a[i].omega_calls, b[i].omega_calls) << i;
    EXPECT_EQ(a[i].completed, b[i].completed) << i;
  }
}

}  // namespace
}  // namespace pipesched
