// Unit tests for the machine model (Tables 2-5) and its config format.
#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "machine/machine_parser.hpp"
#include "util/check.hpp"

namespace pipesched {
namespace {

TEST(Machine, PaperSimulationMatchesTables4And5) {
  const Machine m = Machine::paper_simulation();
  ASSERT_EQ(m.pipeline_count(), 2u);  // Table 4: loader and multiplier only
  EXPECT_EQ(m.pipeline(0).function, "loader");
  EXPECT_EQ(m.pipeline(0).latency, 2);
  EXPECT_EQ(m.pipeline(0).enqueue, 1);
  EXPECT_EQ(m.pipeline(1).function, "multiplier");
  EXPECT_EQ(m.pipeline(1).latency, 4);
  EXPECT_EQ(m.pipeline(1).enqueue, 2);
  EXPECT_EQ(m.latency_for(Opcode::Load), 2);
  EXPECT_EQ(m.latency_for(Opcode::Mul), 4);
  EXPECT_EQ(m.enqueue_for(Opcode::Mul), 2);
  // Everything else is single-cycle with no pipelined resource.
  for (Opcode op : {Opcode::Const, Opcode::Store, Opcode::Add, Opcode::Sub,
                    Opcode::Neg, Opcode::Mov}) {
    EXPECT_FALSE(m.uses_pipeline(op));
    EXPECT_EQ(m.latency_for(op), 0);
  }
  EXPECT_EQ(m.max_latency(), 4);
}

TEST(Machine, PaperExampleHasDuplicatedUnits) {
  const Machine m = Machine::paper_example();
  ASSERT_EQ(m.pipeline_count(), 5u);
  EXPECT_EQ(m.pipelines_for(Opcode::Load).size(), 2u);
  EXPECT_EQ(m.pipelines_for(Opcode::Add).size(), 2u);
  EXPECT_EQ(m.pipelines_for(Opcode::Sub), m.pipelines_for(Opcode::Add));
  EXPECT_EQ(m.pipelines_for(Opcode::Mul).size(), 1u);
}

TEST(Machine, AllPresetsValidate) {
  for (const std::string& name : Machine::preset_names()) {
    const Machine m = Machine::preset(name);
    EXPECT_NO_THROW(m.validate()) << name;
    EXPECT_EQ(m.name(), name);
  }
  EXPECT_THROW(Machine::preset("nope"), Error);
}

TEST(Machine, RejectsBadParameters) {
  Machine m("bad");
  EXPECT_THROW(m.add_pipeline("u", 0, 1), Error);
  EXPECT_THROW(m.add_pipeline("u", 1, 0), Error);
  m.add_pipeline("u", 1, 1);
  EXPECT_THROW(m.map_op(Opcode::Add, "missing"), Error);
  EXPECT_THROW(m.map_op(Opcode::Add, std::vector<PipelineId>{7}), Error);
}

TEST(Machine, UnitGroupsClassifyBySignature) {
  Machine m("hetero");
  m.add_pipeline("alu", 2, 1);
  m.add_pipeline("alu", 3, 1);  // different latency, same function
  m.add_pipeline("alu", 2, 1);  // same signature as the first
  m.map_op(Opcode::Add, "alu");
  EXPECT_NO_THROW(m.validate());  // heterogeneous alternatives are legal
  EXPECT_TRUE(m.has_heterogeneous_alternatives());
  const auto& groups = m.unit_groups(Opcode::Add);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 2u);  // the two (2,1) units
  EXPECT_EQ(groups[1].size(), 1u);  // the (3,1) unit
  // latency_for/enqueue_for report the MINIMUM across alternatives.
  EXPECT_EQ(m.latency_for(Opcode::Add), 2);
  EXPECT_EQ(m.enqueue_for(Opcode::Add), 1);
}

TEST(Machine, HomogeneousMachinesHaveSingleGroups) {
  const Machine m = Machine::paper_example();
  EXPECT_FALSE(m.has_heterogeneous_alternatives());
  EXPECT_EQ(m.unit_groups(Opcode::Load).size(), 1u);
  EXPECT_EQ(m.unit_groups(Opcode::Load).front().size(), 2u);
  EXPECT_TRUE(m.unit_groups(Opcode::Const).empty());
}

TEST(Machine, AsymmetricAlusPreset) {
  const Machine m = Machine::asymmetric_alus();
  EXPECT_TRUE(m.has_heterogeneous_alternatives());
  EXPECT_EQ(m.unit_groups(Opcode::Add).size(), 2u);
  EXPECT_EQ(m.latency_for(Opcode::Add), 1);  // the fast ALU
}

TEST(Machine, MapOpDeduplicates) {
  Machine m("dup");
  m.add_pipeline("alu", 2, 1);
  m.map_op(Opcode::Add, "alu");
  m.map_op(Opcode::Add, "alu");
  EXPECT_EQ(m.pipelines_for(Opcode::Add).size(), 1u);
}

TEST(MachineParser, ParsesSimpleConfig) {
  const Machine m = parse_machine(
      "# two-unit toy machine\n"
      "machine toy\n"
      "pipeline loader latency 3 enqueue 1\n"
      "pipeline alu latency 1 enqueue 1\n"
      "map Load loader\n"
      "map Add alu\n"
      "map Sub alu\n");
  EXPECT_EQ(m.name(), "toy");
  EXPECT_EQ(m.pipeline_count(), 2u);
  EXPECT_EQ(m.latency_for(Opcode::Load), 3);
  EXPECT_TRUE(m.uses_pipeline(Opcode::Sub));
  EXPECT_FALSE(m.uses_pipeline(Opcode::Mul));
}

TEST(MachineParser, RoundTripsEveryPreset) {
  for (const std::string& name : Machine::preset_names()) {
    const Machine m = Machine::preset(name);
    const Machine again = parse_machine(machine_to_config(m));
    EXPECT_EQ(again.pipeline_count(), m.pipeline_count()) << name;
    for (int op = 0; op < kOpcodeCount; ++op) {
      EXPECT_EQ(again.pipelines_for(static_cast<Opcode>(op)),
                m.pipelines_for(static_cast<Opcode>(op)))
          << name << " op " << op;
    }
  }
}

TEST(MachineParser, DiagnosesErrorsWithLineNumbers) {
  try {
    parse_machine("machine t\npipeline u latency x enqueue 1\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_machine("pipeline u latency 1 enqueue 1\n"), Error);
  EXPECT_THROW(parse_machine("machine t\nmap Load loader\n"), Error);
  EXPECT_THROW(parse_machine("machine t\nfrobnicate\n"), Error);
  EXPECT_THROW(parse_machine(""), Error);
}

TEST(Machine, ToStringShowsBothTables) {
  const std::string text = Machine::paper_simulation().to_string();
  EXPECT_NE(text.find("Pipeline Function"), std::string::npos);
  EXPECT_NE(text.find("loader"), std::string::npos);
  EXPECT_NE(text.find("Operation"), std::string::npos);
  EXPECT_NE(text.find("Mul"), std::string::npos);
}

}  // namespace
}  // namespace pipesched
