// Tests for control flow: parser extensions, CFG lowering, the program
// interpreter, and whole-program compilation with block-boundary modes.
#include <gtest/gtest.h>

#include "core/program_compiler.hpp"
#include "frontend/parser.hpp"
#include "frontend/program_codegen.hpp"
#include "ir/program.hpp"
#include "ir/program_parser.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

TEST(SourceParser, ParsesIfElse) {
  const SourceProgram prog = parse_source(
      "x = 1;\n"
      "if (a - b) { x = 2; } else { x = 3; y = 4; }\n"
      "z = x;\n");
  ASSERT_EQ(prog.statements.size(), 3u);
  EXPECT_FALSE(prog.is_straight_line());
  const Stmt& cond = prog.statements[1];
  EXPECT_EQ(cond.kind, Stmt::Kind::If);
  EXPECT_EQ(cond.then_body.size(), 1u);
  EXPECT_EQ(cond.else_body.size(), 2u);
}

TEST(SourceParser, ParsesNestedWhile) {
  const SourceProgram prog = parse_source(
      "i = 10;\n"
      "while (i) {\n"
      "  j = i;\n"
      "  while (j) { j = j - 1; s = s + 1; }\n"
      "  i = i - 1;\n"
      "}\n");
  EXPECT_EQ(prog.statements[1].kind, Stmt::Kind::While);
  EXPECT_EQ(prog.statements[1].then_body[1].kind, Stmt::Kind::While);
}

TEST(SourceParser, ControlFlowRoundTripsThroughToString) {
  const char* source =
      "x = 1;\n"
      "if (a) { x = 2; } else { x = 3; }\n"
      "while (x) { x = x - 1; }\n";
  const SourceProgram prog = parse_source(source);
  const SourceProgram again = parse_source(prog.to_string());
  EXPECT_EQ(again.to_string(), prog.to_string());
}

TEST(SourceParser, RejectsMalformedControlFlow) {
  EXPECT_THROW(parse_source("if (a) x = 1;"), Error);
  EXPECT_THROW(parse_source("if a { x = 1; }"), Error);
  EXPECT_THROW(parse_source("while (a) { x = 1;"), Error);
  EXPECT_THROW(parse_source("else { x = 1; }"), Error);
}

TEST(ProgramCodegen, IfElseShapesTheCfg) {
  const Program prog = generate_program(parse_source(
      "if (a) { x = 1; } else { x = 2; }\n"
      "y = x;\n"));
  // cond | then (jump) | else (fall) | continuation(ret)
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog.block(0).term.kind, Terminator::Kind::Branch);
  EXPECT_TRUE(prog.block(0).term.when_zero);
  EXPECT_EQ(prog.block(0).term.target, 2);  // ELSE entry
  EXPECT_EQ(prog.block(1).term.kind, Terminator::Kind::Jump);
  EXPECT_EQ(prog.block(1).term.target, 3);  // END
  EXPECT_EQ(prog.block(2).term.kind, Terminator::Kind::FallThrough);
  EXPECT_EQ(prog.block(3).term.kind, Terminator::Kind::Return);
}

TEST(ProgramCodegen, WhileShapesTheCfg) {
  const Program prog = generate_program(parse_source(
      "s = 0;\n"
      "while (n) { s = s + n; n = n - 1; }\n"
      "r = s;\n"));
  // pre | head (branch to exit) | body (jump head) | exit(ret)
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog.block(1).term.kind, Terminator::Kind::Branch);
  EXPECT_TRUE(prog.block(1).term.when_zero);
  EXPECT_EQ(prog.block(1).term.target, 3);
  EXPECT_EQ(prog.block(2).term.kind, Terminator::Kind::Jump);
  EXPECT_EQ(prog.block(2).term.target, 1);
}

TEST(ProgramInterp, IfTakesTheRightArm) {
  const Program prog = generate_program(parse_source(
      "if (a) { x = 1; } else { x = 2; }\n"));
  EXPECT_EQ(interpret_program(prog, {{"a", 5}}).final_vars.at("x"), 1);
  EXPECT_EQ(interpret_program(prog, {{"a", 0}}).final_vars.at("x"), 2);
  EXPECT_EQ(interpret_program(prog, {{"a", -3}}).final_vars.at("x"), 1);
}

TEST(ProgramInterp, WhileLoopComputesSum) {
  // Gauss sum 1..10 = 55.
  const Program prog = generate_program(parse_source(
      "s = 0;\n"
      "while (n) { s = s + n; n = n - 1; }\n"));
  const ProgramExecResult result = interpret_program(prog, {{"n", 10}});
  EXPECT_TRUE(result.terminated);
  EXPECT_EQ(result.final_vars.at("s"), 55);
  EXPECT_EQ(result.final_vars.at("n"), 0);
}

TEST(ProgramInterp, StepLimitCatchesInfiniteLoops) {
  const Program prog = generate_program(parse_source(
      "x = 1;\n"
      "while (x) { y = x; }\n"));
  const ProgramExecResult result = interpret_program(prog, {}, 100);
  EXPECT_FALSE(result.terminated);
}

TEST(ProgramText, RoundTripsGeneratedCfgs) {
  const char* source =
      "x = a + b;\n"
      "if (x) { y = x * 2; } else { y = a - b; }\n"
      "while (y) { y = y - 1; s = s + x; }\n"
      "out = s;\n";
  const Program prog = generate_program(parse_source(source));
  const std::string text = program_to_text(prog);
  const Program again = parse_program_text(text);
  ASSERT_EQ(again.size(), prog.size());
  // Exact structural round trip.
  EXPECT_EQ(program_to_text(again), text);
  // Semantic round trip.
  const ProgramEnv env{{"a", 4}, {"b", 1}, {"s", 0}};
  EXPECT_EQ(interpret_program(prog, env).final_vars,
            interpret_program(again, env).final_vars);
}

TEST(ProgramText, ParsesHandWrittenProgram) {
  const Program prog = parse_program_text(
      "program\n"
      "; countdown accumulator\n"
      "block entry\n"
      "  1: Const \"0\"\n"
      "  2: Store #s, 1\n"
      "  fallthrough\n"
      "block head\n"
      "  1: Load #n\n"
      "  2: Store #.c, 1\n"
      "  beqz .c exit\n"
      "block body\n"
      "  1: Load #s\n"
      "  2: Load #n\n"
      "  3: Add 1, 2\n"
      "  4: Store #s, 3\n"
      "  5: Const \"1\"\n"
      "  6: Sub 2, 5\n"
      "  7: Store #n, 6\n"
      "  jump head\n"
      "block exit\n"
      "  1: Load #s\n"
      "  2: Store #out, 1\n"
      "  ret\n");
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog.block(1).term.kind, Terminator::Kind::Branch);
  EXPECT_TRUE(prog.block(1).term.when_zero);
  EXPECT_EQ(prog.block(1).term.target, 3);
  EXPECT_EQ(prog.block(2).term.target, 1);
  const ProgramExecResult run = interpret_program(prog, {{"n", 10}});
  EXPECT_EQ(run.final_vars.at("out"), 55);
}

TEST(ProgramText, DiagnosesFormatErrors) {
  EXPECT_THROW(parse_program_text("block a\n  ret\nblock a\n  ret\n"), Error);
  EXPECT_THROW(parse_program_text("block a\n  jump nowhere\n"), Error);
  EXPECT_THROW(parse_program_text("block a\n  1: Const \"1\"\n"), Error);
  EXPECT_THROW(parse_program_text("  1: Const \"1\"\n  ret\n"), Error);
  EXPECT_THROW(parse_program_text("block a\n  ret\n  2: Const \"1\"\n"),
               Error);
  EXPECT_THROW(parse_program_text(""), Error);
}

TEST(ProgramCompiler, OptimizationPreservesProgramSemantics) {
  const char* source =
      "acc = 0;\n"
      "if (a - b) { acc = a * b + 3 * 1; } else { acc = a + b + 0; }\n"
      "while (k) { acc = acc + a; k = k - 1; }\n"
      "out = acc * 2;\n";
  const Program prog = generate_program(parse_source(source));
  const Program optimized = optimize_program(prog);
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    ProgramEnv env;
    env["a"] = rng.next_in(-9, 9);
    env["b"] = rng.next_in(-9, 9);
    env["k"] = rng.next_in(0, 6);
    const auto base = interpret_program(prog, env);
    const auto opt = interpret_program(optimized, env);
    ASSERT_TRUE(base.terminated);
    EXPECT_EQ(base.final_vars.at("out"), opt.final_vars.at("out"));
    EXPECT_EQ(base.final_vars.at("acc"), opt.final_vars.at("acc"));
  }
}

TEST(ProgramCompiler, EmitsLabelsAndBranches) {
  ProgramCompileOptions options;
  options.block.search.curtail_lambda = 10000;
  const ProgramCompileResult result = compile_program_source(
      "if (a) { x = a * a; } else { x = a + a; }\n"
      "y = x;\n",
      options);
  EXPECT_EQ(result.blocks.size(), 4u);
  EXPECT_NE(result.assembly.find("beqz .c0"), std::string::npos);
  EXPECT_NE(result.assembly.find("j    "), std::string::npos);
  EXPECT_NE(result.assembly.find("ret"), std::string::npos);
  EXPECT_NE(result.assembly.find("b0:"), std::string::npos);
  EXPECT_GT(result.total_instructions, 0);
}

TEST(ProgramCompiler, ChainingNeverAddsNops) {
  // Chained boundaries can only reuse or equal the drained schedule's
  // quality on each chainable block... globally, chaining constrains
  // entry state, so per-program total NOPs may go either way in theory;
  // in practice for straight-line fallthrough chains the chained total
  // must be <= drained total + 0 (the chained scheduler sees strictly
  // more constraints but the program executes the same instructions).
  // We assert the well-defined property: both compile successfully and
  // the chained run marks at least one block as chained for a program
  // with a straight-line split.
  const char* source =
      "t0 = c0 * x0;\n"
      "t1 = c1 * x1;\n"
      "if (sel) { y = t0; } else { y = t1; }\n"
      "z = y * y;\n";
  ProgramCompileOptions drain;
  drain.boundary = BoundaryMode::Drain;
  ProgramCompileOptions chain;
  chain.boundary = BoundaryMode::Chain;
  const auto a = compile_program_source(source, drain);
  const auto b = compile_program_source(source, chain);
  EXPECT_EQ(a.blocks.size(), b.blocks.size());
  bool any_chained = false;
  for (const CompiledBlock& cb : b.blocks) any_chained |= cb.chained;
  EXPECT_TRUE(any_chained);
  for (const CompiledBlock& cb : a.blocks) EXPECT_FALSE(cb.chained);
}

TEST(ProgramCompiler, ChainedEntryStateDelaysConflictingOps) {
  // Two-block fall-through program on the non-pipelined-units machine
  // (multiplier enqueue == latency == 5). Block 0 ends with a Mul issued
  // at its final cycle; block 1's first real work is another Mul. With
  // Chain, the entering Mul must wait out the occupied multiplier; with
  // Drain the analysis wrongly assumes an empty unit.
  Program prog;
  {
    const BlockId b0 = prog.add_block("first");
    BasicBlock& blk = prog.block_mut(b0).block;
    const VarId a = blk.var_id("a");
    const TupleIndex load = blk.append(Opcode::Load, Operand::of_var(a));
    blk.append(Opcode::Mul, Operand::of_ref(load), Operand::of_ref(load));
    prog.block_mut(b0).term = Terminator::fall_through();
  }
  {
    const BlockId b1 = prog.add_block("second");
    BasicBlock& blk = prog.block_mut(b1).block;
    const TupleIndex c = blk.append(Opcode::Const, Operand::of_imm(3));
    const TupleIndex mul =
        blk.append(Opcode::Mul, Operand::of_ref(c), Operand::of_ref(c));
    blk.append(Opcode::Store, Operand::of_var(blk.var_id("n")),
               Operand::of_ref(mul));
    prog.block_mut(b1).term = Terminator::ret();
  }

  ProgramCompileOptions options;
  options.block.machine = Machine::unpipelined_units();
  options.block.optimize = false;
  options.boundary = BoundaryMode::Chain;
  const ProgramCompileResult chained = compile_program(prog, options);
  ASSERT_TRUE(chained.blocks[1].chained);

  options.boundary = BoundaryMode::Drain;
  const ProgramCompileResult drained = compile_program(prog, options);
  // The chained schedule pays for the in-flight multiply; the drained one
  // pretends the unit is free (cheaper on paper, wrong on the machine).
  EXPECT_GT(chained.blocks[1].schedule.total_nops(),
            drained.blocks[1].schedule.total_nops());
}

}  // namespace
}  // namespace pipesched
