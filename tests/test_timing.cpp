// Tests for the incremental NOP-insertion engine (paper Section 4.2.2),
// anchored on the worked examples of Section 2.1.
#include <gtest/gtest.h>

#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "machine/machine.hpp"
#include "sched/timing.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

/// Machine of the Section 2.1 examples: a 4-tick loader whose MAR is held
/// for the first 2 ticks (enqueue 2), plus a 2-tick adder.
Machine section21_machine() {
  Machine m("section-2.1");
  m.add_pipeline("loader", 4, 2);
  m.add_pipeline("adder", 2, 1);
  m.map_op(Opcode::Load, "loader");
  m.map_op(Opcode::Add, "adder");
  m.validate();
  return m;
}

std::vector<TupleIndex> identity_order(std::size_t n) {
  std::vector<TupleIndex> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<TupleIndex>(i);
  return order;
}

// Section 2.1, dependence example: "Load R1,X; Add R0,R1" on a 4-tick
// loader forces a delay of 3 clock ticks between the two instructions.
TEST(Timing, DependenceDelayMatchesPaperExample) {
  const BasicBlock block = parse_block(
      "1: Load #x\n"
      "2: Load #r0\n"
      "3: Add 2, 1\n");
  const Machine m = section21_machine();
  const DepGraph dag(block);
  // Schedule only [Load x, Add] adjacent: place Load r0 first so the pair
  // under test is consecutive.
  const Schedule s = evaluate_order(m, dag, {1, 0, 2});
  // Load r0 at cycle 1; Load x at cycle 2 (1 NOP for the MAR conflict is
  // NOT needed here: enqueue 2 means cycle 3... verify below); Add waits
  // for Load x's 4-tick latency.
  EXPECT_EQ(s.nops[0], 0);
  EXPECT_EQ(s.nops[1], 1);  // MAR conflict: second load 2 ticks after first
  EXPECT_EQ(s.issue_cycle[1], 3);
  EXPECT_EQ(s.issue_cycle[2], 3 + 4);  // operand ready 4 ticks later
  EXPECT_EQ(s.nops[2], 3);             // the paper's 3-tick delay
}

// Section 2.1, conflict example: two Loads back-to-back with the MAR held
// 2 ticks need 1 delay slot between them.
TEST(Timing, ConflictDelayMatchesPaperExample) {
  const BasicBlock block = parse_block(
      "1: Load #x\n"
      "2: Load #y\n");
  const Machine m = section21_machine();
  const DepGraph dag(block);
  const Schedule s = evaluate_order(m, dag, identity_order(2));
  EXPECT_EQ(s.issue_cycle[0], 1);
  EXPECT_EQ(s.issue_cycle[1], 3);
  EXPECT_EQ(s.nops[1], 1);
  EXPECT_EQ(s.total_nops(), 1);
}

TEST(Timing, SigmaEmptyOpsNeverDelay) {
  // Const and Store use no pipeline on the paper machine: a chain of them
  // issues one per cycle with zero NOPs.
  const BasicBlock block = parse_block(
      "1: Const \"1\"\n"
      "2: Const \"2\"\n"
      "3: Store #a, 1\n"
      "4: Store #b, 2\n");
  const Machine m = Machine::paper_simulation();
  const DepGraph dag(block);
  const Schedule s = evaluate_order(m, dag, identity_order(4));
  EXPECT_EQ(s.total_nops(), 0);
  EXPECT_EQ(s.completion_cycle(), 4);
}

TEST(Timing, MultiplierLatencyOnPaperMachine) {
  // Figure 3's block on the Tables 4-5 machine.
  const BasicBlock block = parse_block(
      "1: Const \"15\"\n"
      "2: Store #b, 1\n"
      "3: Load #a\n"
      "4: Mul 1, 3\n"
      "5: Store #a, 4\n");
  const Machine m = Machine::paper_simulation();
  const DepGraph dag(block);
  const Schedule s = evaluate_order(m, dag, identity_order(5));
  // Load at cycle 3 (latency 2) -> Mul must wait until cycle 5: 1 NOP.
  // Mul latency 4 -> Store waits until cycle 9: 3 NOPs.
  EXPECT_EQ(s.issue_cycle[3], 5);
  EXPECT_EQ(s.nops[3], 1);
  EXPECT_EQ(s.issue_cycle[4], 9);
  EXPECT_EQ(s.nops[4], 3);
  EXPECT_EQ(s.total_nops(), 4);
}

TEST(Timing, EnqueueEqualsLatencyModelsUnpipelinedUnit) {
  // Two independent Muls on a non-pipelined multiplier (enqueue == latency
  // == 5) serialize completely.
  Machine m("unpipelined");
  m.add_pipeline("multiplier", 5, 5);
  m.map_op(Opcode::Mul, "multiplier");
  m.validate();
  const BasicBlock block = parse_block(
      "1: Const \"2\"\n"
      "2: Const \"3\"\n"
      "3: Mul 1, 2\n"
      "4: Mul 2, 1\n");
  const DepGraph dag(block);
  const Schedule s = evaluate_order(m, dag, identity_order(4));
  EXPECT_EQ(s.issue_cycle[3] - s.issue_cycle[2], 5);
  EXPECT_EQ(s.nops[3], 4);
}

TEST(Timing, TwoLoadersAbsorbTheConflict) {
  // On the Tables 2-3 machine (two loaders) back-to-back loads issue in
  // consecutive cycles using distinct units.
  const BasicBlock block = parse_block(
      "1: Load #x\n"
      "2: Load #y\n");
  const Machine m = Machine::paper_example();
  const DepGraph dag(block);
  const Schedule s = evaluate_order(m, dag, identity_order(2));
  EXPECT_EQ(s.total_nops(), 0);
  EXPECT_NE(s.unit[0], s.unit[1]);
}

TEST(Timing, PushPopRestoresStateExactly) {
  // Property: at every depth of a random placement walk, pop() restores
  // NOP totals and issue cycles bit-for-bit (checked via re-push).
  const Machine m = Machine::risc_classic();
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BasicBlock block;
    const VarId a = block.var_id("a");
    const VarId b = block.var_id("b");
    const TupleIndex l1 = block.append(Opcode::Load, Operand::of_var(a));
    const TupleIndex l2 = block.append(Opcode::Load, Operand::of_var(b));
    const TupleIndex mul = block.append(Opcode::Mul, Operand::of_ref(l1),
                                        Operand::of_ref(l2));
    const TupleIndex add = block.append(Opcode::Add, Operand::of_ref(mul),
                                        Operand::of_ref(l1));
    block.append(Opcode::Store, Operand::of_var(a), Operand::of_ref(add));
    const DepGraph dag(block);

    PipelineTimer timer(m, dag);
    std::vector<TupleIndex> order = {l1, l2, mul, add,
                                     static_cast<TupleIndex>(4)};
    // Random prefix, then verify push/pop round trip at each extension.
    const std::size_t prefix = rng.next_below(order.size());
    for (std::size_t i = 0; i < prefix; ++i) timer.push(order[i]);
    const int nops_before = timer.total_nops();
    const int cycle_before = timer.last_issue_cycle();
    if (prefix < order.size()) {
      timer.push(order[prefix]);
      timer.pop();
    }
    EXPECT_EQ(timer.total_nops(), nops_before);
    EXPECT_EQ(timer.last_issue_cycle(), cycle_before);
    EXPECT_EQ(timer.depth(), prefix);
  }
}

TEST(Timing, IncrementalMatchesFromScratchAtEveryDepth) {
  // Property: the incremental timer agrees with a from-scratch evaluation
  // of every prefix.
  const Machine m = Machine::paper_simulation();
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Add 1, 2\n"
      "4: Mul 3, 1\n"
      "5: Sub 4, 2\n"
      "6: Store #a, 5\n");
  const DepGraph dag(block);
  PipelineTimer timer(m, dag);
  std::vector<TupleIndex> prefix;
  for (TupleIndex t : {0, 1, 2, 3, 4, 5}) {
    timer.push(t);
    prefix.push_back(t);
    PipelineTimer fresh(m, dag);
    for (TupleIndex p : prefix) fresh.push(p);
    EXPECT_EQ(timer.total_nops(), fresh.total_nops());
    EXPECT_EQ(timer.last_issue_cycle(), fresh.last_issue_cycle());
  }
}

TEST(Timing, InitialStateDelaysConflictingFirstInstruction) {
  // Residual multiplier occupancy at block entry (footnote 1): last issue
  // at relative cycle 0 with enqueue 2 pushes an entering Mul to cycle 2.
  const Machine m = Machine::paper_simulation();
  const BasicBlock block = parse_block(
      "1: Const \"3\"\n"
      "2: Mul 1, 1\n");
  const DepGraph dag(block);

  PipelineState state = PipelineState::drained(m);
  ASSERT_TRUE(state.is_drained());
  state.unit_last_issue[1] = 0;  // multiplier just issued at the boundary
  EXPECT_FALSE(state.is_drained());

  const Schedule chained = evaluate_order(m, dag, {0, 1}, state);
  const Schedule drained = evaluate_order(m, dag, {0, 1});
  EXPECT_EQ(drained.issue_cycle[1], 2);
  EXPECT_EQ(chained.issue_cycle[1], 2);  // the Const fills the gap: no NOP

  // Back-to-back multiplies make the residual occupancy bind.
  PipelineState hot = PipelineState::drained(m);
  hot.unit_last_issue[1] = 0;
  const BasicBlock mul_only = parse_block(
      "1: Const \"3\"\n"
      "2: Mul 1, 1\n"
      "3: Mul 1, 1\n");
  const DepGraph dag2(mul_only);
  const Schedule s = evaluate_order(m, dag2, {0, 1, 2}, hot);
  EXPECT_EQ(s.issue_cycle[1], 2);  // 0 + enqueue 2
  EXPECT_EQ(s.issue_cycle[2], 4);  // 2 + enqueue 2
}

TEST(Timing, IsDrainedThresholdDerivesFromIdleSentinel) {
  // Regression: is_drained() used to compare against a fixed -1000 while
  // the "never issued" sentinel is PipelineState::kUnitIdle = -1'000'000,
  // so residues in (kUnitIdle, -1000] — real occupancy from a predecessor
  // block, merely old — were misreported as drained. The threshold now
  // splits the range at kUnitIdle / 2: only the sentinel's neighborhood
  // counts as idle.
  constexpr int kIdle = PipelineState::kUnitIdle;
  const auto drained_with = [](int last) {
    PipelineState s;
    s.unit_last_issue = {last};
    return s.is_drained();
  };
  EXPECT_TRUE(drained_with(kIdle));
  EXPECT_TRUE(drained_with(kIdle / 2));       // boundary: still sentinel-side
  EXPECT_FALSE(drained_with(kIdle / 2 + 1));  // first non-idle residue
  EXPECT_FALSE(drained_with(-5000));  // the old cutoff's blind spot
  EXPECT_FALSE(drained_with(-1000));
  EXPECT_FALSE(drained_with(0));

  // A mixed state is drained only when EVERY unit is.
  PipelineState mixed;
  mixed.unit_last_issue = {kIdle, -5000};
  EXPECT_FALSE(mixed.is_drained());
  mixed.unit_last_issue = {kIdle, kIdle};
  EXPECT_TRUE(mixed.is_drained());

  // Degenerate but valid: no units recorded means nothing constrains.
  EXPECT_TRUE(PipelineState{}.is_drained());
}

TEST(Timing, ExitStateRoundTripsThroughChainedTimers) {
  // Evaluating [first half] then [second half] with the exit state must
  // reproduce the one-shot evaluation of the whole order, NOP for NOP.
  const Machine m = Machine::unpipelined_units();
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Mul 1, 2\n"
      "4: Mul 2, 1\n"
      "5: Add 3, 4\n"
      "6: Store #x, 5\n");
  const DepGraph dag(block);
  const std::vector<TupleIndex> order = {0, 1, 2, 3, 4, 5};
  const Schedule whole = evaluate_order(m, dag, order);

  PipelineTimer first(m, dag);
  for (int i = 0; i < 3; ++i) first.push(order[static_cast<std::size_t>(i)]);
  // NOTE: dependences crossing the cut live in the same DAG, so the
  // second timer must also know the first half's issue cycles — chain by
  // continuing the SAME timer; exit_state() covers unit occupancy for
  // blocks with no cross-cut value dependences.
  const PipelineState exit_state = first.exit_state();
  for (std::size_t u = 0; u < m.pipeline_count(); ++u) {
    EXPECT_LE(exit_state.unit_last_issue[u], 0);
  }
  for (int i = 3; i < 6; ++i) first.push(order[static_cast<std::size_t>(i)]);
  EXPECT_EQ(first.total_nops(), whole.total_nops());
}

TEST(Timing, RejectsMismatchedInitialState) {
  const Machine m = Machine::paper_simulation();
  const BasicBlock block = parse_block("1: Load #a\n");
  const DepGraph dag(block);
  PipelineState bad;
  bad.unit_last_issue = {0};  // machine has two units
  EXPECT_THROW(PipelineTimer(m, dag, bad), Error);
  PipelineState future;
  future.unit_last_issue = {1, 0};  // occupancy after block entry
  EXPECT_THROW(PipelineTimer(m, dag, future), Error);
}

TEST(Timing, EvaluateOrderRejectsIllegalOrder) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n");
  const Machine m = Machine::paper_simulation();
  const DepGraph dag(block);
  EXPECT_THROW(evaluate_order(m, dag, {1, 0}), Error);
  EXPECT_THROW(evaluate_order(m, dag, {0, 0}), Error);
  EXPECT_THROW(evaluate_order(m, dag, {0}), Error);
}

TEST(Timing, MuEqualsCompletionMinusLength) {
  // Identity mu == t(n) - n, used throughout the search's cost reasoning.
  const Machine m = Machine::paper_simulation();
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Mul 1, 1\n"
      "3: Add 2, 1\n"
      "4: Store #a, 3\n");
  const DepGraph dag(block);
  const Schedule s = evaluate_order(m, dag, {0, 1, 2, 3});
  EXPECT_EQ(s.total_nops(),
            s.completion_cycle() - static_cast<int>(s.size()));
}

}  // namespace
}  // namespace pipesched
