// Tests for the persistent cross-run result cache (cache/result_cache.*):
// round-trips across reopen, every fault-injection case the append-log
// loader must survive (truncated tails, flipped CRC bytes, garbage frame
// lengths, wrong versions, non-cache files), the forced-collision case
// verified lookups must reject, concurrent readers during appends (the
// TSan lane runs the ResultCacheConcurrency suite), and a cached-vs-fresh
// differential sweep asserting every cache hit reproduces the fresh
// optimum and passes the simulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "ir/dag.hpp"
#include "machine/machine.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/check.hpp"

namespace pipesched {
namespace {

namespace fs = std::filesystem;

/// Fresh path under the gtest temp dir; any stale file from a previous
/// (crashed) run is removed so every test starts cold.
std::string fresh_path(const char* name) {
  const fs::path path = fs::path(testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

CachedSchedule sample_payload(int tag) {
  CachedSchedule payload;
  payload.initial_nops = tag + 7;
  payload.best_nops = tag;
  payload.schedule.order = {0, 2, 1};
  payload.schedule.nops = {0, tag, 0};
  payload.schedule.issue_cycle = {0, 1, 2 + tag};
  payload.schedule.unit = {0, 1, 0};
  return payload;
}

void expect_payload_eq(const CachedSchedule& got, const CachedSchedule& want) {
  EXPECT_EQ(got.initial_nops, want.initial_nops);
  EXPECT_EQ(got.best_nops, want.best_nops);
  EXPECT_EQ(got.schedule.order, want.schedule.order);
  EXPECT_EQ(got.schedule.nops, want.schedule.nops);
  EXPECT_EQ(got.schedule.issue_cycle, want.schedule.issue_cycle);
  EXPECT_EQ(got.schedule.unit, want.schedule.unit);
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(ResultCache, RoundTripAcrossReopen) {
  const std::string path = fresh_path("ps_result_cache_roundtrip.pscache");
  const CachedSchedule a = sample_payload(1);
  const CachedSchedule b = sample_payload(2);
  {
    ResultCache cache(path);
    EXPECT_EQ(cache.entry_count(), 0u);
    cache.store("canonical-a", a);
    cache.store("canonical-b", b);
    CachedSchedule out;
    ASSERT_TRUE(cache.lookup("canonical-a", &out));
    expect_payload_eq(out, a);
    EXPECT_FALSE(cache.lookup("canonical-absent", &out));
    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.stores, 2u);
    EXPECT_EQ(stats.hits + stats.misses, stats.probes);
  }
  ResultCache reopened(path);
  EXPECT_EQ(reopened.entry_count(), 2u);
  const ResultCacheStats stats = reopened.stats();
  EXPECT_EQ(stats.entries_loaded, 2u);
  EXPECT_EQ(stats.load_errors, 0u);
  CachedSchedule out;
  ASSERT_TRUE(reopened.lookup("canonical-a", &out));
  expect_payload_eq(out, a);
  ASSERT_TRUE(reopened.lookup("canonical-b", &out));
  expect_payload_eq(out, b);
}

TEST(ResultCache, DuplicateStoreAppendsOnlyOnce) {
  const std::string path = fresh_path("ps_result_cache_dup.pscache");
  {
    ResultCache cache(path);
    cache.store("same-canonical", sample_payload(3));
    cache.store("same-canonical", sample_payload(4));  // dropped: first wins
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(cache.entry_count(), 1u);
  }
  ResultCache reopened(path);
  EXPECT_EQ(reopened.stats().entries_loaded, 1u);
  CachedSchedule out;
  ASSERT_TRUE(reopened.lookup("same-canonical", &out));
  expect_payload_eq(out, sample_payload(3));
}

TEST(ResultCache, TruncatedTailRecordIsSkippedNotFatal) {
  const std::string path = fresh_path("ps_result_cache_trunc.pscache");
  {
    ResultCache cache(path);
    cache.store("first", sample_payload(1));
    cache.store("second", sample_payload(2));
    cache.store("third", sample_payload(3));
  }
  // Chop into the middle of the last record: a crash mid-append.
  fs::resize_file(path, fs::file_size(path) - 5);
  ResultCache reopened(path);
  const ResultCacheStats stats = reopened.stats();
  EXPECT_EQ(stats.load_errors, 1u);
  EXPECT_EQ(stats.entries_loaded, 2u);
  CachedSchedule out;
  EXPECT_TRUE(reopened.lookup("first", &out));
  EXPECT_TRUE(reopened.lookup("second", &out));
  EXPECT_FALSE(reopened.lookup("third", &out));
  // The cache stays writable after recovery: the next store must land.
  reopened.store("fourth", sample_payload(4));
  ResultCache again(path);
  // The torn tail still sits mid-file, so the loader drops everything
  // after it — an append log cannot resync past unframed bytes. What
  // matters is that the intact prefix survives and nothing crashes.
  EXPECT_GE(again.stats().entries_loaded, 2u);
  EXPECT_TRUE(again.lookup("first", &out));
  EXPECT_TRUE(again.lookup("second", &out));
}

TEST(ResultCache, FlippedCrcByteSkipsJustThatRecord) {
  const std::string path = fresh_path("ps_result_cache_crc.pscache");
  {
    ResultCache cache(path);
    cache.store("victim-record", sample_payload(1));
    cache.store("clean-record", sample_payload(2));
  }
  std::string data = file_bytes(path);
  // Header is 16 bytes, frame is 12; byte 28 is the first canonical byte
  // of the first record. Flipping it breaks that record's CRC while the
  // framing stays intact, so only that record is dropped.
  ASSERT_GT(data.size(), 28u);
  data[28] = static_cast<char>(data[28] ^ 0x40);
  write_bytes(path, data);
  ResultCache reopened(path);
  const ResultCacheStats stats = reopened.stats();
  EXPECT_EQ(stats.load_errors, 1u);
  EXPECT_EQ(stats.entries_loaded, 1u);
  CachedSchedule out;
  EXPECT_FALSE(reopened.lookup("victim-record", &out));
  EXPECT_TRUE(reopened.lookup("clean-record", &out));
}

TEST(ResultCache, GarbageFrameLengthStopsLoadingWithCount) {
  const std::string path = fresh_path("ps_result_cache_garbage.pscache");
  {
    ResultCache cache(path);
    cache.store("entry", sample_payload(1));
  }
  std::string data = file_bytes(path);
  // Stomp the first record's canonical_len with 0xFFFFFFFF: unframeable.
  ASSERT_GT(data.size(), 20u);
  for (int i = 16; i < 20; ++i) data[i] = static_cast<char>(0xff);
  write_bytes(path, data);
  ResultCache reopened(path);
  EXPECT_EQ(reopened.stats().load_errors, 1u);
  EXPECT_EQ(reopened.stats().entries_loaded, 0u);
  EXPECT_EQ(reopened.entry_count(), 0u);
}

TEST(ResultCache, VersionMismatchThrowsCleanError) {
  const std::string path = fresh_path("ps_result_cache_version.pscache");
  { ResultCache cache(path); }
  std::string data = file_bytes(path);
  ASSERT_GE(data.size(), 16u);
  data[8] = 99;  // format version lives at bytes 8..11, little-endian
  write_bytes(path, data);
  try {
    ResultCache reopened(path);
    FAIL() << "expected a version-mismatch Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("format version"),
              std::string::npos);
  }
}

TEST(ResultCache, NonCacheFileThrowsCleanError) {
  const std::string path = fresh_path("ps_result_cache_notacache.pscache");
  write_bytes(path, "this is definitely not a result-cache file\n");
  EXPECT_THROW(ResultCache cache(path), Error);
  write_bytes(path, "short");
  EXPECT_THROW(ResultCache cache(path), Error);
}

TEST(ResultCache, EmptyPathThrows) {
  EXPECT_THROW(ResultCache cache(""), Error);
}

TEST(ResultCache, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      ResultCache cache("/nonexistent-dir-ps-test/sub/cache.pscache"), Error);
}

TEST(ResultCache, ForcedCollisionIsRejectedNotTrusted) {
  const std::string path = fresh_path("ps_result_cache_collision.pscache");
  ResultCache cache(path);
  const std::string query = "the-query-canonical";
  // Plant an entry in the query's bucket whose canonical bytes differ:
  // exactly what a 64-bit hash collision would produce. A key-trusting
  // cache would hand back the impostor's schedule.
  cache.debug_insert(ResultCache::hash_of(query), "imposter-canonical",
                     sample_payload(99));
  CachedSchedule out;
  EXPECT_FALSE(cache.lookup(query, &out));
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.verified_rejects, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  // After storing the real entry both coexist in the bucket and the
  // query verifies against its own bytes.
  cache.store(query, sample_payload(5));
  ASSERT_TRUE(cache.lookup(query, &out));
  expect_payload_eq(out, sample_payload(5));
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.hits + stats.misses, stats.probes);
}

TEST(ResultCacheConcurrency, ConcurrentStoresAndLookupsShareOneFile) {
  const std::string path = fresh_path("ps_result_cache_threads.pscache");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  {
    ResultCache cache(path);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&cache, t] {
        CachedSchedule out;
        for (int i = 0; i < kPerThread; ++i) {
          const std::string mine =
              "thread-" + std::to_string(t) + "-key-" + std::to_string(i);
          cache.store(mine, sample_payload(t * kPerThread + i));
          ASSERT_TRUE(cache.lookup(mine, &out));
          EXPECT_EQ(out.best_nops, t * kPerThread + i);
          // Read other threads' keys while they append: hit or miss are
          // both fine, torn data is not (TSan + the payload check above).
          const std::string theirs = "thread-" +
                                     std::to_string((t + 1) % kThreads) +
                                     "-key-" + std::to_string(i);
          if (cache.lookup(theirs, &out)) {
            EXPECT_EQ(out.best_nops,
                      ((t + 1) % kThreads) * kPerThread + i);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(cache.entry_count(),
              static_cast<std::size_t>(kThreads * kPerThread));
    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.stores, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.hits + stats.misses, stats.probes);
  }
  // Every record fsync'd under the file mutex: the reopened log carries
  // all of them intact.
  ResultCache reopened(path);
  EXPECT_EQ(reopened.stats().load_errors, 0u);
  EXPECT_EQ(reopened.stats().entries_loaded,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ResultCacheConcurrency, SharedOpenReturnsOneInstancePerPath) {
  const std::string path = fresh_path("ps_result_cache_shared.pscache");
  const std::string other = fresh_path("ps_result_cache_shared2.pscache");
  auto a = ResultCache::open_shared(path);
  auto b = ResultCache::open_shared(path);
  auto c = ResultCache::open_shared(other);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  a->store("via-a", sample_payload(1));
  CachedSchedule out;
  EXPECT_TRUE(b->lookup("via-a", &out));
  EXPECT_FALSE(c->lookup("via-a", &out));
}

// The acceptance sweep: >= 500 generated blocks, each scheduled fresh
// (no cache), then twice against a shared cache file. The second cached
// run must hit for every proven block, and every cached answer must
// match the fresh optimum and pass the NOP-padding simulator.
TEST(ResultCacheDifferential, CachedRunsMatchFreshAcross500Blocks) {
  const std::string path = fresh_path("ps_result_cache_sweep.pscache");
  const Machine machine = Machine::paper_simulation();
  SearchConfig fresh_config;
  SearchConfig cached_config;
  cached_config.result_cache_path = path;

  constexpr int kPairs = 500;
  int hits = 0;
  int proven = 0;
  for (int i = 0; i < kPairs; ++i) {
    GeneratorParams params;
    params.statements = 3 + (i % 9);
    params.variables = 3 + (i % 5);
    params.constants = 1 + (i % 3);
    params.seed = 0xCAFE + static_cast<std::uint64_t>(i) * 7919;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);

    const ScheduleResult fresh =
        run_optimal_backend(machine, dag, fresh_config);
    const ScheduleResult cold =
        run_optimal_backend(machine, dag, cached_config);
    const ScheduleResult warm =
        run_optimal_backend(machine, dag, cached_config);

    ASSERT_EQ(cold.stats.best_nops, fresh.stats.best_nops) << "block " << i;
    ASSERT_EQ(warm.stats.best_nops, fresh.stats.best_nops) << "block " << i;
    EXPECT_FALSE(fresh.stats.result_cache_hit);
    if (fresh.stats.completed && fresh.stats.feasible) {
      ++proven;
      EXPECT_TRUE(warm.stats.result_cache_hit) << "block " << i;
      EXPECT_EQ(warm.stats.initial_nops, fresh.stats.initial_nops)
          << "block " << i;
      const SimResult sim = validate_padded(machine, dag, warm.schedule);
      EXPECT_TRUE(sim.ok) << "block " << i << ": " << sim.error;
      EXPECT_EQ(warm.schedule.total_nops(), warm.stats.best_nops)
          << "block " << i;
    }
    if (warm.stats.result_cache_hit) ++hits;
  }
  // The corpus generator occasionally optimizes a block to nothing, but
  // the sweep must still be a real sweep.
  EXPECT_GE(proven, 400);
  EXPECT_EQ(hits, proven);

  // A second process (modeled by a direct reopen) sees every stored
  // schedule again. Distinct seeds can occasionally generate identical
  // blocks (one canonical, stored once), so <= rather than ==.
  ResultCache reopened(path);
  EXPECT_EQ(reopened.stats().load_errors, 0u);
  EXPECT_GT(reopened.stats().entries_loaded, 0u);
  EXPECT_LE(reopened.stats().entries_loaded,
            static_cast<std::uint64_t>(proven));
}

}  // namespace
}  // namespace pipesched
