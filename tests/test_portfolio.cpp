// Portfolio backend: race the branch-and-bound and CP solvers per block,
// first completed racer wins and cancels the other. These tests pin the
// protocol's observable guarantees:
//   * the winner's answer equals what each backend finds standalone
//     (both claim optimality, so a deviation is a racing bug);
//   * cancellation drains cleanly — no tasks left in any pool queue
//     (asserted through the ps_thread_pool_queue_depth gauge);
//   * the reported cost is deterministic under races: whichever racer
//     wins at any B&B thread count, the NOP count never changes;
//   * lambda/deadline budgets propagate to BOTH racers, so a curtailed
//     portfolio run reports the budget's curtail reason, not Cancelled.
#include <gtest/gtest.h>

#include "ir/dag.hpp"
#include "sched/cp_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sched/portfolio_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "synth/generator.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

BasicBlock sample_block(std::uint64_t seed, int statements = 8) {
  GeneratorParams params;
  params.statements = statements;
  params.variables = 5;
  params.constants = 3;
  params.seed = seed;
  return generate_block(params);
}

TEST(Portfolio, WinnerMatchesStandaloneBackends) {
  Rng rng(0x90F0);
  int nonempty = 0;
  for (std::uint64_t seed = 1; nonempty < 25; ++seed) {
    ASSERT_LT(seed, 200u);
    const BasicBlock block =
        sample_block(rng.next_u64(), 3 + static_cast<int>(rng.next_below(8)));
    if (block.empty()) continue;
    ++nonempty;
    const DepGraph dag(block);
    const Machine machine = Machine::paper_simulation();

    SearchConfig config;
    const OptimalResult bnb = optimal_schedule(machine, dag, config);
    const ScheduleResult cp = cp_schedule(machine, dag, config);
    const ScheduleResult portfolio = portfolio_schedule(machine, dag, config);

    ASSERT_EQ(bnb.stats.best_nops, cp.stats.best_nops);
    EXPECT_EQ(portfolio.stats.best_nops, bnb.stats.best_nops);
    EXPECT_EQ(portfolio.schedule.total_nops(), bnb.stats.best_nops);
    EXPECT_TRUE(portfolio.stats.completed);
    EXPECT_NE(portfolio.stats.portfolio_winner, PortfolioWinner::None);
    EXPECT_GT(portfolio.stats.seconds, 0.0);
  }
}

TEST(Portfolio, SchedulerInterfaceAndMetricsWinCounter) {
  metrics_enable();
  metrics_reset();
  const BasicBlock block = sample_block(7);
  ASSERT_FALSE(block.empty());
  const DepGraph dag(block);
  const Machine machine = Machine::paper_simulation();

  SearchConfig config;
  config.backend = OptimalBackend::Portfolio;
  const ScheduleResult via_factory =
      make_scheduler(SchedulerKind::Optimal, config)->run(machine, dag);
  const ScheduleResult direct = run_optimal_backend(machine, dag, config);
  EXPECT_EQ(via_factory.stats.best_nops, direct.stats.best_nops);
  EXPECT_NE(via_factory.stats.portfolio_winner, PortfolioWinner::None);

  const MetricsSnapshot snapshot = metrics_snapshot();
  const double wins =
      snapshot.value_or_zero("ps_portfolio_wins", {{"backend", "bnb"}}) +
      snapshot.value_or_zero("ps_portfolio_wins", {{"backend", "cp"}});
  EXPECT_EQ(wins, 2.0);  // one win recorded per portfolio run
  metrics_disable();
}

TEST(Portfolio, CancellationLeavesNoQueuedTasks) {
  metrics_enable();
  metrics_reset();
  Rng rng(0xCA9CE1);
  // Mixed sizes so both fast and slow losers get cancelled mid-search.
  for (int round = 0; round < 30; ++round) {
    const BasicBlock block = sample_block(
        rng.next_u64(), 2 + static_cast<int>(rng.next_below(10)));
    if (block.empty()) continue;
    const DepGraph dag(block);
    const ScheduleResult result =
        portfolio_schedule(Machine::paper_simulation(), dag, {});
    EXPECT_TRUE(result.stats.completed);
    // The portfolio pool is destroyed before portfolio_schedule returns:
    // a nonzero queue depth here means a cancelled racer's task leaked.
    EXPECT_EQ(metrics_snapshot().value_or_zero("ps_thread_pool_queue_depth"),
              0.0)
        << "round " << round;
  }
  metrics_disable();
}

TEST(Portfolio, DeterministicCostUnderRacesAtEveryThreadCount) {
  const BasicBlock block = sample_block(11, 10);
  ASSERT_FALSE(block.empty());
  const DepGraph dag(block);
  const Machine machine = Machine::paper_simulation();

  const int reference =
      optimal_schedule(machine, dag, {}).stats.best_nops;
  for (std::size_t threads : {std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    SearchConfig config;
    config.search_threads = threads;  // applies to the B&B racer
    for (int repeat = 0; repeat < 8; ++repeat) {
      const ScheduleResult result =
          portfolio_schedule(machine, dag, config);
      ASSERT_TRUE(result.stats.completed);
      // Which racer wins is timing noise; the cost never is.
      ASSERT_EQ(result.stats.best_nops, reference)
          << "threads=" << threads << " repeat=" << repeat << " winner="
          << portfolio_winner_name(result.stats.portfolio_winner);
    }
  }
}

TEST(Portfolio, LambdaBudgetPropagatesToBothRacers) {
  const BasicBlock block = sample_block(3, 12);
  ASSERT_FALSE(block.empty());
  const DepGraph dag(block);

  SearchConfig config;
  config.curtail_lambda = 1;  // both racers must stop almost immediately
  const ScheduleResult result =
      portfolio_schedule(Machine::paper_simulation(), dag, config);
  EXPECT_FALSE(result.stats.completed);
  // Both racers tripped their own budget; neither completed, so neither
  // cancelled the other — the winner's reason must be the budget's.
  EXPECT_EQ(result.stats.curtail_reason, CurtailReason::Lambda);
  // The curtailed incumbent is the seed schedule, still a real schedule.
  EXPECT_EQ(result.schedule.total_nops(), result.stats.best_nops);
  EXPECT_EQ(result.stats.best_nops, result.stats.initial_nops);
}

TEST(Portfolio, DeadlineBudgetPropagatesToBothRacers) {
  const BasicBlock block = sample_block(5, 36);
  ASSERT_FALSE(block.empty());
  const DepGraph dag(block);

  SearchConfig config;
  // Already expired at the start — but the expiry is only noticed at the
  // amortized slow tick (every 1024 nodes), so the block must be large
  // enough that neither racer finishes its search inside one tick.
  config.deadline_seconds = 1e-9;
  config.curtail_lambda = 0;  // deadline only — no lambda interference
  const ScheduleResult result =
      portfolio_schedule(Machine::paper_simulation(), dag, config);
  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.curtail_reason, CurtailReason::Deadline);
  EXPECT_EQ(result.schedule.total_nops(), result.stats.best_nops);
}

TEST(Portfolio, InfeasiblePressureCeilingAgreedByBothRacers) {
  // A ceiling below any schedulable pressure: both racers prove
  // infeasibility, and the portfolio reports it like the standalones do.
  Rng rng(0x1FEA51B1E);
  bool saw_infeasible = false;
  for (int round = 0; round < 40 && !saw_infeasible; ++round) {
    const BasicBlock block = sample_block(
        rng.next_u64(), 4 + static_cast<int>(rng.next_below(8)));
    if (block.empty()) continue;
    const DepGraph dag(block);
    SearchConfig config;
    config.max_live_registers = 3;
    const Machine machine = Machine::paper_simulation();
    const OptimalResult bnb = optimal_schedule(machine, dag, config);
    const ScheduleResult portfolio =
        portfolio_schedule(machine, dag, config);
    ASSERT_EQ(portfolio.stats.feasible, bnb.stats.feasible);
    ASSERT_EQ(portfolio.stats.best_nops, bnb.stats.best_nops);
    if (!bnb.stats.feasible) saw_infeasible = true;
  }
  EXPECT_TRUE(saw_infeasible);
}

}  // namespace
}  // namespace pipesched
