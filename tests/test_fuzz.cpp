// Differential end-to-end sweep: random programs through every machine,
// scheduler and delay mechanism, checking the invariants that tie the
// subsystems together:
//   * the scheduler's order is a legal topological order;
//   * executing the block in the scheduled order leaves memory exactly as
//     the original order does (semantic preservation of reordering);
//   * the padded schedule validates hazard-free on the simulator and the
//     interlock stall count equals the inserted NOPs;
//   * register allocation is overlap-free;
//   * assembly emission succeeds under every delay mechanism.
#include <gtest/gtest.h>

#include "asmout/emitter.hpp"
#include "core/compiler.hpp"
#include "ir/dag.hpp"
#include "ir/interp.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

struct FuzzCase {
  std::string machine;
  std::uint64_t seed;
};

class EndToEndFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(EndToEndFuzz, AllInvariantsHold) {
  const Machine machine = Machine::preset(GetParam().machine);
  Rng rng(GetParam().seed * 77 + 5);

  for (int trial = 0; trial < 12; ++trial) {
    GeneratorParams params;
    params.statements = 3 + static_cast<int>(rng.next_below(14));
    params.variables = 3 + static_cast<int>(rng.next_below(6));
    params.constants = 1 + static_cast<int>(rng.next_below(4));
    params.seed = rng.next_u64();
    params.optimize = rng.next_bool(0.7);
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);

    VarEnv initial;
    for (std::size_t v = 0; v < block.var_count(); ++v) {
      initial[static_cast<VarId>(v)] = rng.next_in(-100, 100);
    }
    const VarEnv expected = interpret(block, initial).final_vars;

    for (SchedulerKind kind : {SchedulerKind::List, SchedulerKind::Greedy,
                               SchedulerKind::Optimal}) {
      SearchConfig search;
      search.curtail_lambda = 5000;
      search.strong_equivalence = rng.next_bool();
      search.lower_bound_prune = rng.next_bool();
      SearchStats stats;
      const Schedule schedule =
          run_scheduler(kind, machine, dag, search, &stats);

      ASSERT_TRUE(dag.is_legal_order(schedule.order))
          << scheduler_kind_name(kind) << " " << GetParam().machine;

      // Reordering must not change the block's meaning.
      const VarEnv reordered =
          interpret_in_order(block, initial, schedule.order).final_vars;
      ASSERT_EQ(reordered, expected) << scheduler_kind_name(kind);

      // Simulator agreement.
      const SimResult padded = validate_padded(machine, dag, schedule);
      ASSERT_TRUE(padded.ok) << padded.error;
      const SimResult interlocked =
          machine.has_heterogeneous_alternatives()
              ? simulate_interlocked(machine, dag, schedule.order,
                                     schedule.unit)
              : simulate_interlocked(machine, dag, schedule.order);
      ASSERT_EQ(interlocked.total_delay, schedule.total_nops());

      // Allocation + every emission mechanism.
      const Allocation allocation = linear_scan(block, schedule.order, 64);
      ASSERT_TRUE(verify_allocation(block, schedule.order, allocation));
      for (DelayMechanism mechanism :
           {DelayMechanism::NopPadding, DelayMechanism::ImplicitInterlock,
            DelayMechanism::ExplicitInterlock, DelayMechanism::TeraCount,
            DelayMechanism::CarpMask}) {
        EmitOptions emit;
        emit.mechanism = mechanism;
        const std::string text =
            emit_assembly(block, machine, schedule, allocation, emit);
        ASSERT_FALSE(text.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndFuzz,
    testing::ValuesIn([] {
      std::vector<FuzzCase> cases;
      for (const std::string& machine : Machine::preset_names()) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
          cases.push_back({machine, seed});
        }
      }
      return cases;
    }()),
    [](const testing::TestParamInfo<FuzzCase>& param_info) {
      std::string name =
          param_info.param.machine + "_s" + std::to_string(param_info.param.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pipesched
