// Differential end-to-end sweep: random programs through every machine,
// scheduler and delay mechanism, checking the invariants that tie the
// subsystems together:
//   * the scheduler's order is a legal topological order;
//   * executing the block in the scheduled order leaves memory exactly as
//     the original order does (semantic preservation of reordering);
//   * the padded schedule validates hazard-free on the simulator and the
//     interlock stall count equals the inserted NOPs;
//   * register allocation is overlap-free;
//   * assembly emission succeeds under every delay mechanism.
#include <gtest/gtest.h>

#include "asmout/emitter.hpp"
#include "core/compiler.hpp"
#include "ir/dag.hpp"
#include "ir/interp.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

struct FuzzCase {
  std::string machine;
  std::uint64_t seed;
};

class EndToEndFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(EndToEndFuzz, AllInvariantsHold) {
  const Machine machine = Machine::preset(GetParam().machine);
  Rng rng(GetParam().seed * 77 + 5);

  for (int trial = 0; trial < 12; ++trial) {
    GeneratorParams params;
    params.statements = 3 + static_cast<int>(rng.next_below(14));
    params.variables = 3 + static_cast<int>(rng.next_below(6));
    params.constants = 1 + static_cast<int>(rng.next_below(4));
    params.seed = rng.next_u64();
    params.optimize = rng.next_bool(0.7);
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);

    VarEnv initial;
    for (std::size_t v = 0; v < block.var_count(); ++v) {
      initial[static_cast<VarId>(v)] = rng.next_in(-100, 100);
    }
    const VarEnv expected = interpret(block, initial).final_vars;

    for (SchedulerKind kind : {SchedulerKind::List, SchedulerKind::Greedy,
                               SchedulerKind::Optimal}) {
      SearchConfig search;
      search.curtail_lambda = 5000;
      search.strong_equivalence = rng.next_bool();
      search.lower_bound_prune = rng.next_bool();
      search.dominance_cache = rng.next_bool();
      SearchStats stats;
      const Schedule schedule =
          run_scheduler(kind, machine, dag, search, &stats);

      ASSERT_TRUE(dag.is_legal_order(schedule.order))
          << scheduler_kind_name(kind) << " " << GetParam().machine;

      // Reordering must not change the block's meaning.
      const VarEnv reordered =
          interpret_in_order(block, initial, schedule.order).final_vars;
      ASSERT_EQ(reordered, expected) << scheduler_kind_name(kind);

      // Simulator agreement.
      const SimResult padded = validate_padded(machine, dag, schedule);
      ASSERT_TRUE(padded.ok) << padded.error;
      const SimResult interlocked =
          machine.has_heterogeneous_alternatives()
              ? simulate_interlocked(machine, dag, schedule.order,
                                     schedule.unit)
              : simulate_interlocked(machine, dag, schedule.order);
      ASSERT_EQ(interlocked.total_delay, schedule.total_nops());

      // Allocation + every emission mechanism.
      const Allocation allocation = linear_scan(block, schedule.order, 64);
      ASSERT_TRUE(verify_allocation(block, schedule.order, allocation));
      for (DelayMechanism mechanism :
           {DelayMechanism::NopPadding, DelayMechanism::ImplicitInterlock,
            DelayMechanism::ExplicitInterlock, DelayMechanism::TeraCount,
            DelayMechanism::CarpMask}) {
        EmitOptions emit;
        emit.mechanism = mechanism;
        const std::string text =
            emit_assembly(block, machine, schedule, allocation, emit);
        ASSERT_FALSE(text.empty());
      }
    }
  }
}

/// A machine description drawn at random: 1-4 pipelines with independent
/// latency/enqueue parameters, each schedulable opcode mapped to a random
/// non-empty unit subset (or left sigma-empty). Subsets spanning units
/// with different parameters exercise the heterogeneous-alternatives
/// branching, which the preset sweep only covers via asymmetric-alus.
Machine random_machine(Rng& rng) {
  Machine machine("fuzz-random");
  const int units = 1 + static_cast<int>(rng.next_below(4));
  for (int u = 0; u < units; ++u) {
    machine.add_pipeline("u" + std::to_string(u),
                         1 + static_cast<int>(rng.next_below(6)),
                         1 + static_cast<int>(rng.next_below(4)));
  }
  for (Opcode op : {Opcode::Load, Opcode::Mov, Opcode::Neg, Opcode::Add,
                    Opcode::Sub, Opcode::Mul, Opcode::Div}) {
    if (!rng.next_bool(0.8)) continue;  // sigma = empty sometimes
    std::vector<PipelineId> subset;
    for (int u = 0; u < units; ++u) {
      if (rng.next_bool()) subset.push_back(u);
    }
    if (subset.empty()) subset.push_back(static_cast<PipelineId>(
        rng.next_below(static_cast<std::uint64_t>(units))));
    machine.map_op(op, subset);
  }
  return machine;
}

TEST(RandomMachineFuzz, CachedSchedulesValidateOnSimulator) {
  // Dominance-cache soundness across randomized machine descriptions,
  // including heterogeneous-pipeline configs: every schedule the cached
  // search returns must pass cycle-level simulator validation (legal
  // issue order, stall count == inserted NOPs), and must cost exactly
  // what the uncached search costs.
  Rng rng(0xF022CACE);
  int heterogeneous_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Machine machine = random_machine(rng);
    if (machine.has_heterogeneous_alternatives()) ++heterogeneous_seen;

    GeneratorParams params;
    params.statements = 3 + static_cast<int>(rng.next_below(8));
    params.variables = 3 + static_cast<int>(rng.next_below(5));
    params.constants = 1 + static_cast<int>(rng.next_below(4));
    params.seed = rng.next_u64();
    params.optimize = rng.next_bool(0.7);
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);

    SearchConfig cached;
    cached.curtail_lambda = 20000;
    SearchConfig uncached = cached;
    uncached.dominance_cache = false;

    const OptimalResult with_cache = optimal_schedule(machine, dag, cached);
    const OptimalResult without_cache =
        optimal_schedule(machine, dag, uncached);

    ASSERT_TRUE(dag.is_legal_order(with_cache.best.order)) << "trial " << trial;
    const SimResult padded = validate_padded(machine, dag, with_cache.best);
    ASSERT_TRUE(padded.ok) << "trial " << trial << ": " << padded.error;
    const SimResult interlocked =
        machine.has_heterogeneous_alternatives()
            ? simulate_interlocked(machine, dag, with_cache.best.order,
                                   with_cache.best.unit)
            : simulate_interlocked(machine, dag, with_cache.best.order);
    ASSERT_EQ(interlocked.total_delay, with_cache.best.total_nops())
        << "trial " << trial;

    if (with_cache.stats.completed && without_cache.stats.completed) {
      ASSERT_EQ(with_cache.best.total_nops(),
                without_cache.best.total_nops())
          << "trial " << trial << " machine:\n" << machine.to_string()
          << block.to_string();
    }
  }
  EXPECT_GT(heterogeneous_seen, 0);
}

TEST(BackendFuzz, OptimalBackendsAgreeThroughSchedulerInterface) {
  // All three optimal backends behind the common Scheduler interface,
  // over random machines, including pressure-constrained and infeasible
  // instances: every backend must report the same optimum — or all must
  // prove infeasibility (best_nops == -1) — and every feasible schedule
  // must validate on the simulator.
  Rng rng(0xBACE2D);
  int infeasible_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Machine machine = random_machine(rng);
    GeneratorParams params;
    params.statements = 2 + static_cast<int>(rng.next_below(8));
    params.variables = 3 + static_cast<int>(rng.next_below(5));
    params.constants = 1 + static_cast<int>(rng.next_below(4));
    params.seed = rng.next_u64();
    params.optimize = rng.next_bool(0.7);
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);

    SearchConfig config;
    config.curtail_lambda = 2'000'000;
    if (rng.next_bool(0.4)) {
      config.max_live_registers = 3 + static_cast<int>(rng.next_below(3));
    }

    bool have_reference = false;
    bool ref_feasible = true;
    int ref_nops = 0;
    for (OptimalBackend backend :
         {OptimalBackend::Bnb, OptimalBackend::Cp,
          OptimalBackend::Portfolio}) {
      SearchConfig c = config;
      c.backend = backend;
      SearchStats stats;
      const Schedule schedule =
          run_scheduler(SchedulerKind::Optimal, machine, dag, c, &stats);
      ASSERT_TRUE(stats.completed)
          << optimal_backend_name(backend) << " trial " << trial;
      if (!have_reference) {
        have_reference = true;
        ref_feasible = stats.feasible;
        ref_nops = stats.best_nops;
        if (!ref_feasible) ++infeasible_seen;
      }
      ASSERT_EQ(stats.feasible, ref_feasible)
          << optimal_backend_name(backend) << " trial " << trial
          << " machine:\n" << machine.to_string() << block.to_string();
      ASSERT_EQ(stats.best_nops, ref_nops)
          << optimal_backend_name(backend) << " trial " << trial
          << " machine:\n" << machine.to_string() << block.to_string();
      if (!stats.feasible) continue;
      ASSERT_TRUE(dag.is_legal_order(schedule.order))
          << optimal_backend_name(backend);
      ASSERT_EQ(schedule.total_nops(), stats.best_nops)
          << optimal_backend_name(backend);
      const SimResult padded = validate_padded(machine, dag, schedule);
      ASSERT_TRUE(padded.ok)
          << optimal_backend_name(backend) << ": " << padded.error;
    }
  }
  EXPECT_GT(infeasible_seen, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndFuzz,
    testing::ValuesIn([] {
      std::vector<FuzzCase> cases;
      for (const std::string& machine : Machine::preset_names()) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
          cases.push_back({machine, seed});
        }
      }
      return cases;
    }()),
    [](const testing::TestParamInfo<FuzzCase>& param_info) {
      std::string name =
          param_info.param.machine + "_s" + std::to_string(param_info.param.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pipesched
