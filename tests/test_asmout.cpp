// Tests for final code generation (Section 3.4) across the delay
// mechanisms of Section 2.2.
#include <gtest/gtest.h>

#include <algorithm>

#include "asmout/emitter.hpp"
#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/timing.hpp"

namespace pipesched {
namespace {

struct Prepared {
  BasicBlock block;
  Schedule schedule;
  Allocation allocation;
};

Prepared prepare(const char* text, const Machine& machine) {
  Prepared p{parse_block(text), {}, {}};
  const DepGraph dag(p.block);
  std::vector<TupleIndex> order(p.block.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TupleIndex>(i);
  }
  p.schedule = evaluate_order(machine, dag, order);
  p.allocation = linear_scan(p.block, order, 32);
  return p;
}

const char* kBlock =
    "1: Load #a\n"
    "2: Mul 1, 1\n"
    "3: Mul 1, 1\n"
    "4: Add 2, 3\n"
    "5: Store #y, 4\n";

TEST(Emitter, NopPaddingEmitsEveryDelaySlot) {
  const Machine machine = Machine::paper_simulation();
  const Prepared p = prepare(kBlock, machine);
  EmitOptions options;
  options.comments = false;
  const std::string text =
      emit_assembly(p.block, machine, p.schedule, p.allocation, options);
  int nops = 0;
  std::size_t pos = 0;
  while ((pos = text.find("nop", pos)) != std::string::npos) {
    ++nops;
    ++pos;
  }
  EXPECT_EQ(nops, p.schedule.total_nops());
  EXPECT_NE(text.find("ld   r"), std::string::npos);
  EXPECT_NE(text.find("st   r"), std::string::npos);
}

TEST(Emitter, ImplicitInterlockEmitsNoDelays) {
  const Machine machine = Machine::paper_simulation();
  const Prepared p = prepare(kBlock, machine);
  EmitOptions options;
  options.mechanism = DelayMechanism::ImplicitInterlock;
  options.comments = false;
  const std::string text =
      emit_assembly(p.block, machine, p.schedule, p.allocation, options);
  EXPECT_EQ(text.find("nop"), std::string::npos);
  EXPECT_EQ(text.find("wait="), std::string::npos);
}

TEST(Emitter, ExplicitInterlockCarriesStallCycles) {
  const Machine machine = Machine::paper_simulation();
  const Prepared p = prepare(kBlock, machine);
  EmitOptions options;
  options.mechanism = DelayMechanism::ExplicitInterlock;
  options.comments = false;
  const std::string text =
      emit_assembly(p.block, machine, p.schedule, p.allocation, options);
  // Every instruction line carries a wait= field; total equals mu.
  int total = 0;
  std::size_t pos = 0;
  while ((pos = text.find("wait=", pos)) != std::string::npos) {
    total += std::stoi(text.substr(pos + 5));
    ++pos;
  }
  EXPECT_EQ(total, p.schedule.total_nops());
}

TEST(Emitter, TeraCountsPointAtConstrainingInstructions) {
  const Machine machine = Machine::paper_simulation();
  const Prepared p = prepare(kBlock, machine);
  const std::vector<int> counts =
      tera_sync_counts(p.block, machine, p.schedule);
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 0);  // Load: unconstrained
  EXPECT_EQ(counts[1], 1);  // Mul depends on Load, 1 back
  // Second Mul: depends on Load (2 back) and conflicts with Mul (1 back).
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);  // Add depends on both Muls; nearest 1 back
  EXPECT_EQ(counts[4], 1);  // Store depends on Add
}

TEST(Emitter, CarpMasksFlagBindingUnits) {
  const Machine machine = Machine::paper_simulation();
  const Prepared p = prepare(kBlock, machine);
  const std::vector<unsigned> masks =
      carp_wait_masks(p.block, machine, p.schedule);
  ASSERT_EQ(masks.size(), 5u);
  // Unit ids on the paper machine: loader = 0, multiplier = 1.
  EXPECT_EQ(masks[0], 0u);        // Load: nothing in flight
  EXPECT_EQ(masks[1], 1u << 0);   // Mul waits on the loader's result
  EXPECT_EQ(masks[2], 1u << 1);   // second Mul: multiplier enqueue window
  EXPECT_EQ(masks[3], 1u << 1);   // Add waits on the multiplier's result
  EXPECT_EQ(masks[4], 0u);        // Store: Add is sigma-empty, no wait
}

TEST(Emitter, MechanismsAgreeOnInstructionText) {
  const Machine machine = Machine::paper_simulation();
  const Prepared p = prepare(kBlock, machine);
  EmitOptions a;
  a.mechanism = DelayMechanism::TeraCount;
  a.comments = false;
  EmitOptions b;
  b.mechanism = DelayMechanism::CarpMask;
  b.comments = false;
  const std::string ta =
      emit_assembly(p.block, machine, p.schedule, p.allocation, a);
  const std::string tb =
      emit_assembly(p.block, machine, p.schedule, p.allocation, b);
  EXPECT_NE(ta.find("sync="), std::string::npos);
  EXPECT_NE(tb.find("mask="), std::string::npos);
  // Same number of lines: one per instruction, no padding in either.
  EXPECT_EQ(std::count(ta.begin(), ta.end(), '\n'),
            std::count(tb.begin(), tb.end(), '\n'));
}

TEST(Emitter, CommentsShowIssueCyclesAndUnits) {
  const Machine machine = Machine::paper_simulation();
  const Prepared p = prepare(kBlock, machine);
  EmitOptions options;
  const std::string text =
      emit_assembly(p.block, machine, p.schedule, p.allocation, options);
  EXPECT_NE(text.find("; cycle 1"), std::string::npos);
  EXPECT_NE(text.find("loader"), std::string::npos);
  EXPECT_NE(text.find("multiplier"), std::string::npos);
}

}  // namespace
}  // namespace pipesched
