// Shared test helper: minimal Prometheus text-exposition (0.0.4) grammar
// check. Used by the registry tests (snapshot exposition) and the HTTP
// exporter tests (a live GET /metrics body must pass the same check).
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

namespace pipesched {

/// HELP/TYPE lines well-formed, sample names legal, no duplicate series,
/// every family typed counter/gauge/histogram, every value a number.
inline void check_prometheus_grammar(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> seen_series;
  std::map<std::string, std::string> family_type;
  auto is_name = [](const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == ':')) {
        return false;
      }
    }
    return !(s[0] >= '0' && s[0] <= '9');
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      ASSERT_TRUE(is_name(name)) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      // One TYPE line per family.
      ASSERT_EQ(family_type.count(name), 0u) << line;
      family_type[name] = type;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0 || line[0] == '#') continue;
    // Sample line: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name;
    std::string series_key;
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.find('}');
      ASSERT_NE(close, std::string::npos) << line;
      name = line.substr(0, brace);
      series_key = line.substr(0, close + 1);
    } else {
      name = line.substr(0, space);
      series_key = name;
    }
    ASSERT_TRUE(is_name(name)) << line;
    ASSERT_TRUE(seen_series.insert(series_key).second)
        << "duplicate series: " << series_key;
    // The value must parse as a double.
    const std::string value = line.substr(line.rfind(' ') + 1);
    ASSERT_FALSE(value.empty()) << line;
    EXPECT_NO_THROW((void)std::stod(value)) << line;
  }
  ASSERT_FALSE(family_type.empty());
}

}  // namespace pipesched
