// Tests for register-pressure-constrained scheduling and spill-code
// creation (paper Section 3.1).
#include <gtest/gtest.h>

#include <limits>

#include "core/compiler.hpp"
#include "ir/block_parser.hpp"
#include "ir/dag.hpp"
#include "ir/interp.hpp"
#include "regalloc/regalloc.hpp"
#include "regalloc/spill.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace pipesched {
namespace {

/// Max pressure of a schedule order (allocator convention).
int order_max_pressure(const BasicBlock& block,
                       const std::vector<TupleIndex>& order) {
  return max_live(compute_live_ranges(block, order));
}

/// Brute-force reference: minimum NOPs over all legal orders whose
/// pressure stays within `limit`; -1 when none exists.
int brute_force_constrained_optimum(const Machine& machine,
                                    const DepGraph& dag, int limit) {
  const std::size_t n = dag.size();
  std::vector<TupleIndex> order;
  std::vector<bool> used(n, false);
  int best = -1;
  auto recurse = [&](auto&& self) -> void {
    if (order.size() == n) {
      if (order_max_pressure(dag.block(), order) > limit) return;
      const int nops = evaluate_order(machine, dag, order).total_nops();
      if (best < 0 || nops < best) best = nops;
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool ready = true;
      for (TupleIndex p : dag.preds(static_cast<TupleIndex>(i))) {
        if (!used[static_cast<std::size_t>(p)]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      used[i] = true;
      order.push_back(static_cast<TupleIndex>(i));
      self(self);
      order.pop_back();
      used[i] = false;
    }
  };
  recurse(recurse);
  return best;
}

TEST(Pressure, ConstrainedSearchMatchesBruteForce) {
  const Machine machine = Machine::paper_simulation();
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    GeneratorParams params;
    params.statements = 4;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed * 3;
    const BasicBlock block = generate_block(params);
    if (block.empty() || block.size() > 10) continue;
    const DepGraph dag(block);
    for (int limit = 3; limit <= 6; ++limit) {
      const int truth =
          brute_force_constrained_optimum(machine, dag, limit);
      SearchConfig config;
      config.curtail_lambda = 0;
      config.max_live_registers = limit;
      const OptimalResult result = optimal_schedule(machine, dag, config);
      if (truth < 0) {
        EXPECT_FALSE(result.stats.feasible)
            << "seed " << seed << " limit " << limit;
      } else {
        ASSERT_TRUE(result.stats.feasible)
            << "seed " << seed << " limit " << limit;
        EXPECT_EQ(result.best.total_nops(), truth)
            << "seed " << seed << " limit " << limit;
        EXPECT_LE(order_max_pressure(block, result.best.order), limit);
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(Pressure, TighterLimitNeverReducesNops) {
  const Machine machine = Machine::risc_classic();
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GeneratorParams params;
    params.statements = 7;
    params.variables = 4;
    params.constants = 2;
    params.seed = seed * 11;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    // Walking DOWN the limits, the constrained optimum may only grow.
    int previous = -1;
    for (int limit : {16, 6, 4, 3}) {
      SearchConfig config;
      config.curtail_lambda = 0;  // to exhaustion: exact optima
      config.max_live_registers = limit;
      const OptimalResult result = optimal_schedule(machine, dag, config);
      if (!result.stats.feasible) break;
      EXPECT_GE(result.best.total_nops(), previous)
          << "seed " << seed << " limit " << limit;
      previous = result.best.total_nops();
    }
  }
}

TEST(Pressure, InfeasibleSearchDoesNotMasqueradeAsOptimal) {
  // Regression: an infeasible constrained search used to return the
  // pressure-infeasible seed schedule with its finite NOP count in
  // stats.best_nops, indistinguishable from a real optimum. Four values
  // must be simultaneously live here, so a ceiling of 2 is infeasible
  // for any order.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n"
      "4: Add 1, 2\n"
      "5: Add 4, 3\n"
      "6: Store #x, 5\n");
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 0;
  config.max_live_registers = 2;
  const OptimalResult result =
      optimal_schedule(Machine::paper_simulation(), dag, config);
  EXPECT_FALSE(result.stats.feasible);
  EXPECT_EQ(result.stats.best_nops, -1);

  // run_scheduler must preserve the sentinel instead of re-deriving a
  // finite cost from the diagnostic seed schedule.
  SearchStats stats;
  run_scheduler(SchedulerKind::Optimal, Machine::paper_simulation(), dag,
                config, &stats);
  EXPECT_FALSE(stats.feasible);
  EXPECT_EQ(stats.best_nops, -1);

  // The register-limited driver recovers via the post-spill original
  // order: feasibility is surfaced, and its reported cost is real.
  CompileOptions options;
  options.registers = 4;
  const RegisterLimitedResult compiled =
      compile_with_register_limit(block, options);
  EXPECT_GE(compiled.compiled.stats.best_nops, 0);
  EXPECT_FALSE(compiled.compiled.assembly.empty());
}

TEST(Spill, BlockMaxLiveMatchesRangeAnalysis) {
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n"
      "4: Add 1, 2\n"
      "5: Add 4, 3\n"
      "6: Store #x, 5\n");
  EXPECT_EQ(block_max_live(block), 4);
}

TEST(Spill, ReducesPressureToTarget) {
  // Wide fan-in: many loads alive at once.
  const BasicBlock block = parse_block(
      "1: Load #a\n"
      "2: Load #b\n"
      "3: Load #c\n"
      "4: Load #d\n"
      "5: Load #e\n"
      "6: Add 1, 2\n"
      "7: Add 6, 3\n"
      "8: Add 7, 4\n"
      "9: Add 8, 5\n"
      "10: Store #x, 9\n");
  ASSERT_GT(block_max_live(block), 4);
  const SpillResult spilled = insert_spill_code(block, 4);
  EXPECT_LE(block_max_live(spilled.block), 4);
  EXPECT_GT(spilled.values_spilled, 0);
}

TEST(Spill, PreservesSemantics) {
  Rng rng(7);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratorParams params;
    params.statements = 10;
    params.variables = 6;
    params.constants = 3;
    params.seed = seed * 17;
    const BasicBlock block = generate_block(params);
    if (block.empty() || block_max_live(block) <= 3) continue;
    const SpillResult spilled = insert_spill_code(block, 3);
    EXPECT_LE(block_max_live(spilled.block), 3) << seed;

    VarEnv initial;
    for (std::size_t v = 0; v < block.var_count(); ++v) {
      initial[static_cast<VarId>(v)] = rng.next_in(-20, 20);
    }
    const VarEnv expected = interpret(block, initial).final_vars;
    // Spill temporaries introduce new VarIds in the rewritten block; match
    // by name on the original variables.
    VarEnv spilled_initial;
    for (std::size_t v = 0; v < spilled.block.var_count(); ++v) {
      const std::string& name =
          spilled.block.var_name(static_cast<VarId>(v));
      const VarId original = block.find_var(name);
      if (original >= 0 && initial.count(original)) {
        spilled_initial[static_cast<VarId>(v)] = initial.at(original);
      }
    }
    const VarEnv got = interpret(spilled.block, spilled_initial).final_vars;
    for (const auto& [var, value] : expected) {
      const VarId mapped = spilled.block.find_var(block.var_name(var));
      ASSERT_GE(mapped, 0);
      EXPECT_EQ(got.at(mapped), value)
          << "seed " << seed << " var " << block.var_name(var);
    }
  }
}

TEST(Spill, RejectsImpossibleTargets) {
  const BasicBlock block = parse_block("1: Load #a\n2: Store #b, 1\n");
  EXPECT_THROW(insert_spill_code(block, 2), Error);
}

TEST(RegisterLimit, EndToEndFitsTheFile) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GeneratorParams params;
    params.statements = 12;
    params.variables = 7;
    params.constants = 3;
    params.seed = seed * 29;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;

    CompileOptions options;
    options.registers = 4;
    options.search.curtail_lambda = 50000;
    const RegisterLimitedResult result =
        compile_with_register_limit(block, options);
    EXPECT_LE(result.compiled.allocation.registers_used, 4) << seed;
    EXPECT_TRUE(verify_allocation(result.compiled.block,
                                  result.compiled.schedule.order,
                                  result.compiled.allocation))
        << seed;
    const DepGraph dag(result.compiled.block);
    EXPECT_TRUE(dag.is_legal_order(result.compiled.schedule.order)) << seed;
  }
}

TEST(RegisterLimit, SpillsOnlyWhenNecessary) {
  // A chain never exceeds 2 live values: no spills with 3 registers.
  const BasicBlock chain = parse_block(
      "1: Load #a\n"
      "2: Neg 1\n"
      "3: Neg 2\n"
      "4: Store #a, 3\n");
  CompileOptions options;
  options.registers = 3;
  options.optimize = false;
  const RegisterLimitedResult result =
      compile_with_register_limit(chain, options);
  EXPECT_EQ(result.values_spilled, 0);
  EXPECT_TRUE(result.scheduler_feasible);
}

TEST(RegisterLimit, TightFilesCostNops) {
  // Aggregate: fewer registers => no fewer NOPs (spill loads + less
  // freedom for the scheduler).
  long nops_wide = 0;
  long nops_tight = 0;
  for (std::uint64_t seed = 40; seed <= 60; ++seed) {
    GeneratorParams params;
    params.statements = 10;
    params.variables = 6;
    params.constants = 2;
    params.seed = seed;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    CompileOptions wide;
    wide.registers = 32;
    wide.search.curtail_lambda = 50000;
    CompileOptions tight = wide;
    tight.registers = 3;
    nops_wide +=
        compile_with_register_limit(block, wide).compiled.schedule.total_nops();
    nops_tight += compile_with_register_limit(block, tight)
                      .compiled.schedule.total_nops();
  }
  EXPECT_GE(nops_tight, nops_wide);
}

}  // namespace
}  // namespace pipesched
