// psc — the pipesched compiler driver.
//
// Compiles the assignment-statement language (with if/while control flow)
// or raw tuple blocks down to scheduled, register-allocated assembly for a
// configurable multi-pipeline machine, exposing every knob the library
// offers. Run `psc --help` for usage.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cache/result_cache.hpp"
#include "core/compiler.hpp"
#include "core/corpus_runner.hpp"
#include "core/program_compiler.hpp"
#include "core/superblock.hpp"
#include "asmout/emitter.hpp"
#include "frontend/codegen.hpp"
#include "frontend/opt/passes.hpp"
#include "frontend/parser.hpp"
#include "frontend/program_codegen.hpp"
#include "ir/block_parser.hpp"
#include "ir/program_parser.hpp"
#include "ir/dag.hpp"
#include "machine/machine_parser.hpp"
#include "obs/http_exporter.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/split_scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/build_info.hpp"
#include "util/check.hpp"
#include "util/interrupt.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/progress.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace {

using namespace pipesched;

constexpr const char* kUsage = R"(psc - optimal pipeline scheduling compiler

usage: psc [options] [<source-file>]
  (reads stdin when no file is given)

input:
  --tuples              input is tuple-form text instead of source: one
                        basic block, or a whole CFG when the file starts
                        with the "program" keyword
machine:
  --machine <preset>    paper-simulation (default), paper-example,
                        risc-classic, single-issue-deep, unpipelined-units
  --machine-file <path> load a machine description file
scheduling:
  --scheduler <name>    original | list | greedy | optimal (default) |
                        exhaustive
  --backend <name>      optimal-scheduler backend: bnb (default,
                        branch-and-bound) | cp (constraint-propagation
                        over issue slots) | portfolio (race both per
                        block, first finisher wins, loser cancelled)
  --lambda <N>          curtail point (0 = search to exhaustion;
                        default 50000)
  --deadline <secs>     wall-clock budget per search (0 = none); expiry
                        keeps the best schedule found so far, like lambda
  --search-threads <N>  worker threads inside each optimal search
                        (default 1 = the sequential algorithm; 0 = one
                        per hardware thread). N > 1 splits the search
                        tree into disjoint subtrees sharing the incumbent
                        bound, dominance cache, and lambda/deadline
                        budgets
  --no-cache            disable the state-dominance (transposition) cache
  --result-cache <path> persistent cross-run result cache: consult the
                        append-log file at <path> before each optimal
                        search and memoize proven-optimal schedules after.
                        Lookups are verified byte-for-byte against the
                        canonical block+machine+config form, so collisions
                        and stale entries degrade to misses, never wrong
                        schedules
  --split <W>           schedule straight-line blocks with the Section 5.3
                        window splitter instead of the global search
  --registers <N>       register-limited compilation: spill + pressure-
                        constrained search so the code fits N registers
back end:
  --mechanism <name>    nop (default) | interlock | wait | tera | carp
  --boundary <name>     drain (default) | chain   (control-flow programs)
  --superblock          merge linear block chains before compiling
  --no-opt              skip the optimizer passes
  --reassociate         balance Add/Mul trees (shortens critical paths)
output:
  --dump-tuples         print the (optimized) tuple form
  --dump-dag            print the dependence DAG as graphviz dot
  --dump-cfg            print the control-flow graph
  --sim-trace           print the pipeline occupancy trace (ASCII)
  --stats               print search statistics (incl. per-prune-rule
                        counters, search throughput, the curtail
                        reason, a metrics snapshot line, p50/p90/p99
                        search-time quantiles when >1 search ran, and
                        the profiler phase-share table under --profile)
  --csv <path>          write per-block search records as CSV
  --jsonl <path>        write per-block search records as JSON lines
observability:
  --trace <out.json>    record a structured trace of the whole compile
                        (pipeline phases as nested spans, search
                        heartbeat counters) as Chrome trace-event JSON —
                        open in chrome://tracing or ui.perfetto.dev
                        (--sim-trace, by contrast, renders the scheduled
                        machine's cycle-by-cycle pipeline occupancy;
                        --trace records the compiler's own wall time)
  --metrics <out>       export a process metrics snapshot (counters,
                        gauges, histograms across search, thread pool,
                        cache, and compile stages); format by extension:
                        .prom/.txt = Prometheus text, .json = JSON
  --progress            live per-block progress on stderr (blocks
                        done/total, errors, blocks/s, ETA)
  --profile <out.folded>
                        sample every thread's phase stack at 997 Hz for
                        the whole compile and write collapsed-stack lines
                        ("phase;subphase count") to <out.folded> — feed
                        straight to flamegraph.pl or speedscope. Adds a
                        phase-share table to --stats. Worker overhead is
                        two relaxed stores per annotated scope
  --watchdog-seconds <s>
                        arm the stall watchdog: any live search whose
                        nodes-expanded heartbeat stops advancing for <s>
                        seconds gets its flight-recorder ring, all phase
                        stacks, and a metrics snapshot dumped to stderr
                        (and <out.folded>.stall.json under --profile)
  --serve <port>        serve live observability endpoints on
                        127.0.0.1:<port> for the compile's duration:
                        /metrics (Prometheus), /metrics.json, /healthz,
                        /readyz, /status (live progress + search
                        heartbeats as JSON), /stacks, and
                        /profile?seconds=N (on-demand collapsed-stack
                        profile; 409 while --profile owns the sampler).
                        Port 0 picks an ephemeral port; the bound URL is
                        printed to stderr either way
  --version             print version, git SHA, and build type
  --help
)";

struct Args {
  std::string input_path;
  bool tuples = false;
  std::string machine_preset = "paper-simulation";
  std::string machine_file;
  SchedulerKind scheduler = SchedulerKind::Optimal;
  OptimalBackend backend = OptimalBackend::Bnb;
  std::uint64_t lambda = 50000;
  double deadline = 0;
  std::size_t search_threads = 1;
  bool dominance_cache = true;
  std::string result_cache_path;
  int split_window = 0;
  int register_limit = 0;
  DelayMechanism mechanism = DelayMechanism::NopPadding;
  BoundaryMode boundary = BoundaryMode::Drain;
  bool superblock = false;
  bool optimize = true;
  bool reassociate = false;
  bool dump_tuples = false;
  bool dump_dag = false;
  bool dump_cfg = false;
  bool sim_trace = false;
  bool stats = false;
  bool progress = false;
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;
  double watchdog_seconds = 0;
  int serve_port = -1;  ///< -1 = no server; 0 = ephemeral port
  std::string csv_path;
  std::string jsonl_path;
};

std::string read_input(const std::string& path) {
  std::ostringstream oss;
  if (path.empty()) {
    oss << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    PS_CHECK(in.good(), "cannot open " << path);
    oss << in.rdbuf();
  }
  return oss.str();
}

SchedulerKind parse_scheduler(const std::string& name) {
  if (name == "original") return SchedulerKind::Original;
  if (name == "list") return SchedulerKind::List;
  if (name == "greedy") return SchedulerKind::Greedy;
  if (name == "optimal") return SchedulerKind::Optimal;
  if (name == "exhaustive") return SchedulerKind::Exhaustive;
  throw Error("unknown scheduler: " + name);
}

DelayMechanism parse_mechanism(const std::string& name) {
  if (name == "nop") return DelayMechanism::NopPadding;
  if (name == "interlock") return DelayMechanism::ImplicitInterlock;
  if (name == "wait") return DelayMechanism::ExplicitInterlock;
  if (name == "tera") return DelayMechanism::TeraCount;
  if (name == "carp") return DelayMechanism::CarpMask;
  throw Error("unknown delay mechanism: " + name);
}

/// Numeric flag parsing that fails like a CLI, not like a C++ runtime:
/// std::sto* throw std::invalid_argument / std::out_of_range on malformed
/// input, which previously escaped main() uncaught and aborted the
/// process. These helpers reject garbage, trailing junk ("5x"), values
/// out of range, and negative values for unsigned flags, printing
/// "psc: invalid value for --flag" and exiting with status 2 (the
/// conventional usage-error code, distinct from compile failures' 1).
[[noreturn]] void invalid_flag_value(const std::string& flag,
                                     const std::string& value) {
  std::cerr << "psc: invalid value for " << flag << ": '" << value << "'\n";
  std::exit(2);
}

std::uint64_t parse_u64_flag(const std::string& flag,
                             const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::uint64_t parsed = std::stoull(value, &pos);
    // stoull silently wraps negatives ("-1" -> 2^64-1); reject them.
    if (pos != value.size() || value.find('-') != std::string::npos) {
      invalid_flag_value(flag, value);
    }
    return parsed;
  } catch (const std::exception&) {
    invalid_flag_value(flag, value);
  }
}

int parse_int_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int parsed = std::stoi(value, &pos);
    if (pos != value.size()) invalid_flag_value(flag, value);
    return parsed;
  } catch (const std::exception&) {
    invalid_flag_value(flag, value);
  }
}

double parse_double_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    if (pos != value.size()) invalid_flag_value(flag, value);
    return parsed;
  } catch (const std::exception&) {
    invalid_flag_value(flag, value);
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      PS_CHECK(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--version") {
      std::cout << build_info_line() << "\n";
      std::exit(0);
    } else if (arg == "--serve") {
      const std::string value = next();
      const std::uint64_t port = parse_u64_flag(arg, value);
      if (port > 65535) invalid_flag_value(arg, value);
      args.serve_port = static_cast<int>(port);
    } else if (arg == "--tuples") {
      args.tuples = true;
    } else if (arg == "--machine") {
      args.machine_preset = next();
    } else if (arg == "--machine-file") {
      args.machine_file = next();
    } else if (arg == "--scheduler") {
      args.scheduler = parse_scheduler(next());
    } else if (arg == "--backend") {
      const std::string name = next();
      PS_CHECK(parse_optimal_backend(name, &args.backend),
               "unknown backend: " << name << " (bnb | cp | portfolio)");
    } else if (arg == "--lambda") {
      args.lambda = parse_u64_flag(arg, next());
    } else if (arg == "--deadline") {
      const std::string value = next();
      args.deadline = parse_double_flag(arg, value);
      if (args.deadline < 0) invalid_flag_value(arg, value);
    } else if (arg == "--search-threads") {
      args.search_threads =
          static_cast<std::size_t>(parse_u64_flag(arg, next()));
    } else if (arg == "--no-cache") {
      args.dominance_cache = false;
    } else if (arg == "--result-cache") {
      args.result_cache_path = next();
      if (args.result_cache_path.empty()) {
        invalid_flag_value(arg, args.result_cache_path);
      }
    } else if (arg == "--split") {
      args.split_window = parse_int_flag(arg, next());
    } else if (arg == "--registers") {
      args.register_limit = parse_int_flag(arg, next());
    } else if (arg == "--mechanism") {
      args.mechanism = parse_mechanism(next());
    } else if (arg == "--boundary") {
      const std::string mode = next();
      PS_CHECK(mode == "drain" || mode == "chain",
               "unknown boundary mode: " << mode);
      args.boundary =
          mode == "chain" ? BoundaryMode::Chain : BoundaryMode::Drain;
    } else if (arg == "--superblock") {
      args.superblock = true;
    } else if (arg == "--no-opt") {
      args.optimize = false;
    } else if (arg == "--reassociate") {
      args.reassociate = true;
    } else if (arg == "--dump-tuples") {
      args.dump_tuples = true;
    } else if (arg == "--dump-dag") {
      args.dump_dag = true;
    } else if (arg == "--dump-cfg") {
      args.dump_cfg = true;
    } else if (arg == "--sim-trace") {
      args.sim_trace = true;
    } else if (arg == "--trace") {
      args.trace_path = next();
    } else if (arg == "--metrics") {
      args.metrics_path = next();
    } else if (arg == "--profile") {
      args.profile_path = next();
      if (args.profile_path.empty()) {
        invalid_flag_value(arg, args.profile_path);
      }
    } else if (arg == "--watchdog-seconds") {
      const std::string value = next();
      args.watchdog_seconds = parse_double_flag(arg, value);
      if (args.watchdog_seconds <= 0) invalid_flag_value(arg, value);
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (arg == "--stats") {
      args.stats = true;
    } else if (arg == "--csv") {
      args.csv_path = next();
    } else if (arg == "--jsonl") {
      args.jsonl_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      throw Error("unknown option: " + arg + " (see --help)");
    } else {
      PS_CHECK(args.input_path.empty(), "multiple input files given");
      args.input_path = arg;
    }
  }
  return args;
}

void print_metrics_totals();

void print_stats(const SearchStats& stats) {
  std::cerr << "; search: " << stats.omega_calls << " placements, "
            << stats.schedules_examined << " complete schedules, "
            << (stats.completed
                    ? "proven optimal"
                    : std::string("curtailed (") +
                          curtail_reason_name(stats.curtail_reason) + ")")
            << ", initial NOPs " << stats.initial_nops << ", final NOPs "
            << stats.best_nops << ", "
            << static_cast<long>(stats.seconds * 1e6) << "us\n";
  if (!stats.feasible) {
    std::cerr << "; search: INFEASIBLE — no schedule fits the register "
                 "ceiling; final NOPs is -1 (not a real optimum)\n";
  }
  if (stats.result_cache_hit) {
    std::cerr << "; result cache: hit (schedule served from cache, no "
                 "search ran)\n";
  }
  if (stats.portfolio_winner != PortfolioWinner::None) {
    std::cerr << "; portfolio: won by "
              << portfolio_winner_name(stats.portfolio_winner) << "\n";
  }
  if (stats.frontier_subtrees > 0) {
    std::cerr << "; parallel: frontier split into " << stats.frontier_subtrees
              << " subtrees\n";
  }
  if (stats.seconds > 0 && stats.nodes_expanded > 0) {
    std::cerr << "; throughput: "
              << compact_double(static_cast<double>(stats.nodes_expanded) /
                                    stats.seconds,
                                4)
              << " nodes expanded/second\n";
  }
  std::cerr << "; prunes: window [5a] " << stats.pruned_window
            << ", readiness [5b] " << stats.pruned_readiness
            << ", equivalence [5c] " << stats.pruned_equivalence
            << ", alpha-beta [6] " << stats.pruned_alpha_beta
            << ", lower bound " << stats.pruned_lower_bound
            << ", dominance " << stats.pruned_dominance << ", pressure "
            << stats.pruned_pressure << "\n";
  if (stats.cache_probes > 0) {
    std::cerr << "; dominance cache: " << stats.cache_probes << " probes, "
              << stats.cache_hits << " hits (subtrees pruned), "
              << stats.cache_evictions << " evictions, "
              << stats.cache_superseded << " superseded, "
              << stats.nodes_expanded << " nodes expanded\n";
  }
  print_metrics_totals();
}

/// Registry view of the run: process-wide totals (they equal the
/// per-search stats summed over every search this process ran), plus
/// search-time quantiles once several searches contributed. Shared by the
/// single-block stats dump and the whole-program summary.
void print_metrics_totals() {
  if (metrics_enabled()) {
    const MetricsSnapshot snapshot = metrics_snapshot();
    std::cerr << "; metrics totals: "
              << static_cast<std::uint64_t>(
                     snapshot.value_or_zero("ps_search_runs_total"))
              << " searches, "
              << static_cast<std::uint64_t>(
                     snapshot.value_or_zero("ps_search_nodes_expanded_total"))
              << " nodes expanded, "
              << static_cast<std::uint64_t>(snapshot.value_or_zero(
                     "ps_search_incumbent_improvements_total"))
              << " incumbent improvements\n";
    const MetricsSnapshot::Series* hist = snapshot.find("ps_search_seconds");
    if (hist != nullptr && hist->count > 1) {
      // Single-search compiles already print the exact wall time above;
      // quantiles only say something new once several searches ran.
      std::cerr << "; search seconds quantiles (" << hist->count
                << " searches): p50 "
                << compact_double(histogram_quantile(*hist, 0.50), 4)
                << "s, p90 " << compact_double(histogram_quantile(*hist, 0.90), 4)
                << "s, p99 " << compact_double(histogram_quantile(*hist, 0.99), 4)
                << "s\n";
    }
  }
}

/// Write the per-block records (one for straight-line input, one per CFG
/// block otherwise) in the corpus runner's CSV/JSONL layout.
void export_records(const Args& args, const std::vector<RunRecord>& records) {
  if (!args.csv_path.empty()) write_corpus_csv(records, args.csv_path);
  if (!args.jsonl_path.empty()) write_corpus_jsonl(records, args.jsonl_path);
}

RunRecord record_of(int block_size, const SearchStats& stats) {
  RunRecord record;
  record.block_size = block_size;
  fill_run_record(record, stats);
  return record;
}

int compile_one_block(BasicBlock block, const Machine& machine,
                      const Args& args) {
  CompileOptions options;
  options.machine = machine;
  options.scheduler = args.scheduler;
  options.search.backend = args.backend;
  options.search.curtail_lambda = args.lambda;
  options.search.deadline_seconds = args.deadline;
  options.search.dominance_cache = args.dominance_cache;
  options.search.search_threads = args.search_threads;
  options.search.result_cache_path = args.result_cache_path;
  options.optimize = args.optimize;
  options.reassociate = args.reassociate;
  options.emit.mechanism = args.mechanism;

  if (args.register_limit > 0) {
    options.registers = args.register_limit;
    const RegisterLimitedResult result =
        compile_with_register_limit(block, options);
    if (args.dump_tuples) std::cerr << result.compiled.block.to_string();
    if (!result.scheduler_feasible) {
      std::cerr << "; note: pressure-constrained search found no schedule "
                   "within "
                << args.register_limit
                << " registers; emitted the post-spill original order\n";
    }
    if (args.stats) {
      print_stats(result.compiled.stats);
      std::cerr << "; spilled values: " << result.values_spilled << "\n";
    }
    export_records(args,
                   {record_of(static_cast<int>(result.compiled.block.size()),
                              result.compiled.stats)});
    std::cout << result.compiled.assembly;
    return 0;
  }

  if (args.split_window > 0) {
    const BasicBlock prepared =
        args.optimize ? run_standard_pipeline(block) : block;
    const DepGraph dag(prepared);
    SplitConfig config;
    config.window_size = args.split_window;
    config.search.curtail_lambda = args.lambda;
    config.search.deadline_seconds = args.deadline;
    config.search.dominance_cache = args.dominance_cache;
    config.search.search_threads = args.search_threads;
    config.search.result_cache_path = args.result_cache_path;
    const SplitResult result = split_schedule(machine, dag, config);
    const Allocation allocation =
        linear_scan(prepared, result.schedule.order, options.registers);
    if (args.dump_tuples) std::cerr << prepared.to_string();
    if (args.dump_dag) std::cerr << dag.to_dot();
    if (args.stats) print_stats(result.stats);
    export_records(
        args, {record_of(static_cast<int>(prepared.size()), result.stats)});
    std::cout << emit_assembly(prepared, machine, result.schedule,
                               allocation, options.emit);
    return 0;
  }

  const CompileResult result = compile_block(block, options);
  if (args.dump_tuples) std::cerr << result.block.to_string();
  if (args.dump_dag) std::cerr << DepGraph(result.block).to_dot();
  if (args.stats) print_stats(result.stats);
  export_records(
      args, {record_of(static_cast<int>(result.block.size()), result.stats)});
  if (args.sim_trace) {
    const DepGraph dag(result.block);
    const SimResult sim =
        simulate_interlocked(machine, dag, result.schedule.order);
    std::cerr << render_pipeline_trace(machine, result.block, sim);
  }
  std::cout << result.assembly;
  return 0;
}

int run_compile(const Args& args, HttpExporter* server) {
  const Machine machine =
      args.machine_file.empty()
          ? Machine::preset(args.machine_preset)
          : parse_machine(read_input(args.machine_file));

  const std::string input = read_input(args.input_path);

  // Setup is done (machine + input loaded): flip /readyz before the
  // compile itself starts, the same point a daemon would mark ready.
  if (server != nullptr) server->set_ready(true);

  Program parsed_program;
  bool have_program = false;
  if (args.tuples) {
    // A leading "program" keyword selects the whole-CFG tuple format.
    const std::string head = trim(input).substr(0, 7);
    if (head == "program") {
      PS_TRACE_SPAN("parse");
      parsed_program = parse_program_text(input);
      have_program = true;
    } else {
      BasicBlock block = [&] {
        PS_TRACE_SPAN("parse");
        return parse_block(input);
      }();
      return compile_one_block(std::move(block), machine, args);
    }
  }

  if (!have_program) {
    SourceProgram source = [&] {
      PS_TRACE_SPAN("parse");
      return parse_source(input);
    }();
    if (source.is_straight_line()) {
      BasicBlock tuples = [&] {
        PS_TRACE_SPAN("tuple_gen");
        return generate_tuples(source);
      }();
      return compile_one_block(std::move(tuples), machine, args);
    }
    parsed_program = generate_program(source);
  }

  // Control flow: the whole-program pipeline.
  Program program = std::move(parsed_program);
  if (args.superblock) {
    SuperblockResult merged = merge_linear_chains(program);
    if (args.stats) {
      std::cerr << "; superblock: " << merged.merges << " edges merged, "
                << merged.program.size() << " blocks remain\n";
    }
    program = std::move(merged.program);
  }
  if (args.dump_cfg) std::cerr << program.to_string();
  PS_CHECK(args.split_window == 0 && args.register_limit == 0,
           "--split/--registers currently apply to straight-line input");
  std::unique_ptr<ProgressReporter> progress;
  if (args.progress) {
    progress = std::make_unique<ProgressReporter>(
        program.size(), std::cerr, ProgressReporter::stderr_is_tty());
  }
  ProgramCompileOptions options;
  options.progress = progress.get();
  options.block.machine = machine;
  options.block.scheduler = args.scheduler;
  options.block.search.backend = args.backend;
  options.block.search.curtail_lambda = args.lambda;
  options.block.search.deadline_seconds = args.deadline;
  options.block.search.dominance_cache = args.dominance_cache;
  options.block.search.search_threads = args.search_threads;
  options.block.search.result_cache_path = args.result_cache_path;
  options.block.optimize = args.optimize;
  options.block.reassociate = args.reassociate;
  options.block.emit.mechanism = args.mechanism;
  options.boundary = args.boundary;
  const ProgramCompileResult result = compile_program(program, options);
  if (progress) progress->finish();
  if (args.stats) {
    std::cerr << "; program: " << result.blocks.size() << " blocks, "
              << result.total_instructions << " instructions, "
              << result.total_nops << " NOPs\n";
    print_metrics_totals();
  }
  std::vector<RunRecord> records;
  for (const CompiledBlock& compiled : result.blocks) {
    records.push_back(record_of(
        static_cast<int>(compiled.optimized.size()), compiled.stats));
  }
  export_records(args, records);
  std::cout << result.assembly;
  return 0;
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // Ctrl-C / SIGTERM: stop serving, close the progress line, and flush
  // every requested observability output before exiting with 128+sig —
  // a killed run still leaves valid trace/metrics/profile files behind.
  // Installed before anything spawns a thread so every worker inherits
  // the blocked signal mask (see util/interrupt.hpp).
  static std::unique_ptr<HttpExporter> server;
  install_graceful_interrupt([&args](int) {
    if (server) server->stop();
    progress_finish_all();
    if (!args.profile_path.empty() && profiler_enabled()) {
      profiler_disable();
      profiler_write_collapsed(args.profile_path);
    }
    if (!args.trace_path.empty() && trace_enabled()) {
      trace_disable();
      trace_write_json(args.trace_path);
    }
    if (!args.metrics_path.empty()) {
      metrics_disable();
      metrics_write(args.metrics_path);
    }
  });

  if (!args.result_cache_path.empty()) {
    // Open (and thereby validate) the cache file before any compilation
    // work: an unwritable directory or a version-mismatched file is a
    // usage error (exit 2), not a mid-compile crash.
    try {
      ResultCache::open_shared(args.result_cache_path);
    } catch (const Error& e) {
      std::cerr << "psc: " << e.what() << "\n";
      std::exit(2);
    }
  }
  if (!args.trace_path.empty()) trace_enable();
  // --stats derives its quantile rows and totals from the registry, so it
  // needs collection on even when no --metrics file was requested.
  if (!args.metrics_path.empty() || args.stats) metrics_enable();
  if (args.watchdog_seconds > 0) {
    watchdog_enable(args.watchdog_seconds,
                    args.profile_path.empty() ? std::string()
                                              : args.profile_path +
                                                    ".stall.json");
  }
  if (!args.profile_path.empty()) profiler_enable();

  if (args.serve_port >= 0) {
    try {
      HttpExporterOptions serve_options;
      serve_options.port = static_cast<std::uint16_t>(args.serve_port);
      server = std::make_unique<HttpExporter>(serve_options);
    } catch (const Error& e) {
      // A taken port is a usage error (exit 2), like a bad cache file.
      std::cerr << "psc: " << e.what() << "\n";
      std::exit(2);
    }
    std::cerr << "psc: serving observability endpoints on "
              << server->base_url() << "\n";
  }

  const int code = run_compile(args, server.get());
  if (!args.profile_path.empty()) {
    profiler_disable();  // stops sampling and flushes ps_profile_samples_total
    profiler_write_collapsed(args.profile_path);
    std::cerr << "; profile: " << profiler_total_samples()
              << " samples written to " << args.profile_path
              << " (collapsed-stack format for flamegraph.pl/speedscope)\n";
    if (args.stats) {
      const std::string table = profiler_phase_table();
      if (!table.empty()) {
        std::cerr << "; phase shares (sampled every "
                  << compact_double(profiler_sample_period_seconds() * 1e3, 4)
                  << "ms):\n"
                  << table;
      }
    }
  }
  if (args.watchdog_seconds > 0) watchdog_disable();
  if (!args.trace_path.empty()) {
    trace_disable();
    trace_write_json(args.trace_path);
    std::cerr << "; trace written to " << args.trace_path
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  }
  if (!args.metrics_path.empty()) {
    metrics_disable();
    metrics_write(args.metrics_path);
    std::cerr << "; " << metrics_summary_line() << " written to "
              << args.metrics_path << "\n";
  }
  // Last: endpoints answer until every other output is flushed, then the
  // server joins its threads so psc exits with nothing left running.
  if (server) server->stop();
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const pipesched::Error& e) {
    std::cerr << "psc: error: " << e.what() << "\n";
    return 1;
  }
}
