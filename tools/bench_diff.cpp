// bench_diff — the corpus perf regression gate.
//
//   bench_diff [options] <baseline> <candidate>
//
// Each input is either a BENCH_corpus.json roll-up or a
// corpus_records.jsonl per-block export (detected by the .jsonl
// extension and aggregated into the roll-up shape first). Prints a delta
// table and exits 0 when the candidate passes, 1 on any regression
// (timing beyond thresholds, exact-field mismatch, or a missing field),
// 2 on usage or I/O errors.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/bench_diff.hpp"
#include "util/check.hpp"

namespace {

constexpr const char* kUsage = R"(usage: bench_diff [options] <baseline> <candidate>

Compare two corpus bench artifacts (BENCH_corpus.json roll-ups, or
corpus_records.jsonl per-block exports aggregated on the fly) and fail on
regression. Correctness fields (total NOPs, optima, curtailed/errored
block counts, machine config) must match exactly; timing fields pass
unless they exceed BOTH the relative tolerance and the absolute floor;
search-shape fields (nodes, omega calls, cache traffic) are informational.

options:
  --rel-tol <frac>      relative timing tolerance (default 0.25 = +25%)
  --abs-floor <sec>     absolute timing floor in seconds (default 1e-4)
  -q, --quiet           print only the verdict line
  -h, --help            this text

exit status: 0 pass, 1 regression/mismatch/missing field, 2 bad invocation
)";

double parse_double_arg(const char* flag, const char* value) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::cerr << "bench_diff: bad value for " << flag << ": " << value
              << "\n";
    std::exit(2);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  pipesched::BenchDiffOptions options;
  bool quiet = false;
  std::string baseline;
  std::string candidate;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_diff: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--rel-tol") {
      options.rel_tol = parse_double_arg("--rel-tol", next());
    } else if (arg == "--abs-floor") {
      options.abs_floor_seconds = parse_double_arg("--abs-floor", next());
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bench_diff: unknown option " << arg << "\n" << kUsage;
      return 2;
    } else if (baseline.empty()) {
      baseline = arg;
    } else if (candidate.empty()) {
      candidate = arg;
    } else {
      std::cerr << "bench_diff: unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (baseline.empty() || candidate.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    const pipesched::BenchDiffResult result =
        pipesched::diff_bench_files(baseline, candidate, options);
    const std::string table = pipesched::render_bench_diff(result);
    if (quiet) {
      // The verdict is the last line of the rendered table.
      const std::size_t pos = table.rfind("bench_diff:");
      std::cout << (pos == std::string::npos ? table : table.substr(pos));
    } else {
      std::cout << table;
    }
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
