#!/usr/bin/env bash
# Tier-1 verification, twice over:
#   1. Release       — the configuration the benches and users run;
#   2. Debug + ASan/UBSan (-DPIPESCHED_SANITIZE=address,undefined) — the
#      configuration that catches lifetime and UB bugs the optimizer hides.
#
# Usage: tools/ci.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

run_suite() {
  local dir="$1"; shift
  echo "==== configuring ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== building ${dir} ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== testing ${dir} ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_suite build-ci-release -DCMAKE_BUILD_TYPE=Release

run_suite build-ci-sanitize \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPIPESCHED_SANITIZE=address,undefined

echo "==== CI OK: Release and sanitized Debug suites both green ===="
