#!/usr/bin/env bash
# Tier-1 verification, three times over:
#   1. Release       — the configuration the benches and users run;
#   2. Debug + ASan/UBSan (-DPIPESCHED_SANITIZE=address,undefined) — the
#      configuration that catches lifetime and UB bugs the optimizer hides;
#   3. Debug + TSan (-DPIPESCHED_SANITIZE=thread), focused on the
#      concurrency surface — the parallel frontier-split search, the
#      sharded dominance cache, and the thread pool. TSan cannot be
#      combined with ASan, hence the separate lane; it builds only the
#      concurrency-relevant tests to keep the lane fast.
#
# Usage: tools/ci.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

run_suite() {
  local dir="$1"; shift
  echo "==== configuring ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== building ${dir} ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== testing ${dir} ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_suite build-ci-release -DCMAKE_BUILD_TYPE=Release

run_suite build-ci-sanitize \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPIPESCHED_SANITIZE=address,undefined

# TSan lane: data races in the parallel search would be soundness bugs
# (a torn incumbent read could prune the true optimum), and they do not
# reproduce deterministically — only TSan sees them reliably.
echo "==== configuring build-ci-tsan (thread sanitizer) ===="
cmake -B build-ci-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPIPESCHED_SANITIZE=thread
echo "==== building build-ci-tsan (concurrency tests) ===="
cmake --build build-ci-tsan -j "${jobs}" \
  --target test_parallel_search test_util test_portfolio test_result_cache \
  test_profiler test_http_exporter
echo "==== TSan: parallel frontier-split search ===="
./build-ci-tsan/tests/test_parallel_search
echo "==== TSan: thread pool ===="
./build-ci-tsan/tests/test_util --gtest_filter='ThreadPool.*'
echo "==== TSan: portfolio racing (stop-flag cancellation) ===="
./build-ci-tsan/tests/test_portfolio
echo "==== TSan: result cache (concurrent readers during appends) ===="
./build-ci-tsan/tests/test_result_cache \
  --gtest_filter='ResultCacheConcurrency.*'
echo "==== TSan: sampling profiler (sampler racing annotated workers) ===="
./build-ci-tsan/tests/test_profiler
echo "==== TSan: HTTP exporter (concurrent scrapes racing a live search) ===="
./build-ci-tsan/tests/test_http_exporter

# Traced corpus smoke, in BOTH configurations: a small corpus run with
# PS_TRACE must produce well-formed Chrome trace-event JSON (validated
# with python's strict parser) carrying the per-block spans and the
# search heartbeat counters, and psc --trace must do the same for a
# single-block compile.
traced_smoke() {
  local build="$1"
  echo "==== traced corpus smoke (${build}) ===="
  local dir
  dir="$(mktemp -d)"
  (cd "${dir}" && \
    PS_CORPUS_RUNS=200 PS_TRACE="${dir}/corpus_trace.json" \
    "${OLDPWD}/${build}/bench/bench_table7" > /dev/null)
  python3 -m json.tool "${dir}/corpus_trace.json" > /dev/null
  grep -q '"corpus_block"' "${dir}/corpus_trace.json"
  grep -q '"search/nodes_expanded"' "${dir}/corpus_trace.json"
  echo "x = a * b + c; y = x / d;" | \
    "./${build}/tools/psc" --trace "${dir}/psc_trace.json" > /dev/null 2>&1
  python3 -m json.tool "${dir}/psc_trace.json" > /dev/null
  grep -q '"compile_block"' "${dir}/psc_trace.json"
  rm -rf "${dir}"
}

traced_smoke build-ci-release
traced_smoke build-ci-sanitize

# Metrics-enabled corpus smoke, in BOTH configurations: a small corpus
# run with PS_METRICS must export a non-empty snapshot in each format —
# the .prom output must carry well-formed TYPE lines and the search/
# corpus families, the .json output must satisfy python's strict parser —
# and psc --metrics must do the same for a single-block compile.
metrics_smoke() {
  local build="$1"
  echo "==== metrics corpus smoke (${build}) ===="
  local dir
  dir="$(mktemp -d)"
  (cd "${dir}" && \
    PS_CORPUS_RUNS=200 PS_METRICS="${dir}/corpus_metrics.prom" \
    "${OLDPWD}/${build}/bench/bench_table7" > /dev/null)
  grep -q '^# TYPE ps_search_nodes_expanded_total counter' \
    "${dir}/corpus_metrics.prom"
  # bench_table7 runs the corpus more than once (budgeted + enumerated
  # protocols), so assert non-zero cumulative totals, not exact counts.
  grep -Eq '^ps_corpus_blocks_total\{status="ok"\} [1-9][0-9]*$' \
    "${dir}/corpus_metrics.prom"
  grep -Eq '^ps_search_seconds_bucket\{le="\+Inf"\} [1-9][0-9]*$' \
    "${dir}/corpus_metrics.prom"
  (cd "${dir}" && \
    PS_CORPUS_RUNS=200 PS_METRICS="${dir}/corpus_metrics.json" \
    "${OLDPWD}/${build}/bench/bench_table7" > /dev/null)
  python3 -m json.tool "${dir}/corpus_metrics.json" > /dev/null
  grep -q '"ps_search_runs_total"' "${dir}/corpus_metrics.json"
  echo "x = a * b + c; y = x / d;" | \
    "./${build}/tools/psc" --metrics "${dir}/psc_metrics.json" \
    > /dev/null 2>&1
  python3 -m json.tool "${dir}/psc_metrics.json" > /dev/null
  grep -q '"ps_compile_stage_seconds"' "${dir}/psc_metrics.json"
  rm -rf "${dir}"
}

metrics_smoke build-ci-release
metrics_smoke build-ci-sanitize

# Profiled corpus smoke, in BOTH configurations: a small corpus run with
# PS_PROFILE must produce a non-empty collapsed-stack file in which every
# line is "phase[;subphase...] count" (the format flamegraph.pl consumes)
# with the annotated top-level phases present, and psc --profile /
# --watchdog-seconds must run a compile end to end and write the profile
# file (a sub-millisecond compile may legitimately collect zero samples —
# the file just ends up empty).
profiled_smoke() {
  local build="$1"
  echo "==== profiled corpus smoke (${build}) ===="
  local dir
  dir="$(mktemp -d)"
  (cd "${dir}" && \
    PS_CORPUS_RUNS=200 PS_PROFILE="${dir}/corpus.folded" \
    PS_WATCHDOG=60 \
    "${OLDPWD}/${build}/bench/bench_table7" > /dev/null)
  test -s "${dir}/corpus.folded"
  if grep -Evq '^[A-Za-z0-9_;]+ [0-9]+$' "${dir}/corpus.folded"; then
    echo "FAIL: malformed collapsed-stack line in corpus.folded:" >&2
    grep -Ev '^[A-Za-z0-9_;]+ [0-9]+$' "${dir}/corpus.folded" >&2
    exit 1
  fi
  grep -q '^corpus_block' "${dir}/corpus.folded"
  echo "x = a * b + c; y = x / d;" | \
    "./${build}/tools/psc" --profile "${dir}/psc.folded" \
    --watchdog-seconds 60 --stats > /dev/null 2> "${dir}/psc_stats.log"
  test -f "${dir}/psc.folded"
  grep -q '; profile: ' "${dir}/psc_stats.log"
  rm -rf "${dir}"
}

profiled_smoke build-ci-release
profiled_smoke build-ci-sanitize

# Served corpus smoke, in BOTH configurations: a corpus run with PS_SERVE=0
# must bind an ephemeral port, print it on stderr, and answer live scrapes
# mid-run — /healthz, /readyz, /metrics (well-formed exposition carrying
# the build-info and self-observation families), /metrics.json and /status
# (both must satisfy python's strict JSON parser), an on-demand
# /profile?seconds=1, and a 404 for unknown paths — then shut the server
# down cleanly and exit 0 when the corpus completes.
serve_smoke() {
  local build="$1" runs="$2"
  echo "==== served corpus smoke (${build}) ===="
  local dir pid port rc
  dir="$(mktemp -d)"
  # Pre-create the log: the port-polling sed below can race the
  # backgrounded subshell's redirection opening the file.
  : > "${dir}/serve.log"
  (cd "${dir}" && PS_CORPUS_RUNS="${runs}" PS_SERVE=0 \
    exec "${OLDPWD}/${build}/bench/bench_table7" \
    > /dev/null 2> "${dir}/serve.log") &
  pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n \
      's#.*serving observability endpoints on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "${dir}/serve.log")"
    [[ -n "${port}" ]] && break
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "FAIL: served bench never printed its port:" >&2
    cat "${dir}/serve.log" >&2
    exit 1
  fi
  local url="http://127.0.0.1:${port}"
  [[ "$(curl -fsS "${url}/healthz")" == "ok" ]]
  [[ "$(curl -fsS "${url}/readyz")" == "ready" ]]
  curl -fsS "${url}/metrics" > "${dir}/scrape.prom"
  grep -q '^# TYPE ps_build_info gauge' "${dir}/scrape.prom"
  curl -fsS "${url}/metrics.json" | python3 -m json.tool > /dev/null
  curl -fsS "${url}/status" > "${dir}/status.json"
  python3 -m json.tool "${dir}/status.json" > /dev/null
  grep -q '"progress"' "${dir}/status.json"
  curl -fsS "${url}/profile?seconds=1" > "${dir}/live.folded"
  test -s "${dir}/live.folded"
  rc="$(curl -s -o /dev/null -w '%{http_code}' "${url}/no-such-endpoint")"
  if [[ "${rc}" != "404" ]]; then
    echo "FAIL: unknown path answered ${rc}, expected 404" >&2
    exit 1
  fi
  # By now (after the 1 s profile window) corpus blocks have completed and
  # the self-observation counters must have registered the scrapes above.
  curl -fsS "${url}/metrics" > "${dir}/scrape2.prom"
  grep -Eq '^ps_corpus_blocks_total\{status="ok"\} [1-9]' "${dir}/scrape2.prom"
  grep -Eq '^ps_http_requests_total\{code="200",endpoint="/healthz"\} [1-9]' \
    "${dir}/scrape2.prom"
  rc=0
  wait "${pid}" || rc=$?
  if [[ "${rc}" -ne 0 ]]; then
    echo "FAIL: served bench exited ${rc} after scrapes:" >&2
    cat "${dir}/serve.log" >&2
    exit 1
  fi
  rm -rf "${dir}"
}

serve_smoke build-ci-release 16000
serve_smoke build-ci-sanitize 2000

# Graceful-interrupt smoke: SIGINT mid-run must stop the server, finish
# the progress line, flush the PS_METRICS snapshot, and exit 130
# (128 + SIGINT) — not die with a half-written file. The `exec` above and
# here matters: it makes $! the bench binary's own PID (a plain compound
# command backgrounds a subshell, and signaling that proves nothing).
echo "==== graceful SIGINT smoke (build-ci-release) ===="
int_dir="$(mktemp -d)"
: > "${int_dir}/serve.log"
(cd "${int_dir}" && PS_CORPUS_RUNS=100000 PS_SERVE=0 \
  PS_METRICS="${int_dir}/flushed.prom" \
  exec "${OLDPWD}/build-ci-release/bench/bench_table7" \
  > /dev/null 2> "${int_dir}/serve.log") &
int_pid=$!
for _ in $(seq 1 100); do
  grep -q 'serving observability endpoints' "${int_dir}/serve.log" && break
  sleep 0.1
done
sleep 0.5
kill -INT "${int_pid}"
rc=0
wait "${int_pid}" || rc=$?
if [[ "${rc}" -ne 130 ]]; then
  echo "FAIL: interrupted bench exited ${rc}, expected 130" >&2
  cat "${int_dir}/serve.log" >&2
  exit 1
fi
grep -q 'interrupted (SIGINT)' "${int_dir}/serve.log"
grep -q '^# TYPE ps_corpus_blocks_total counter' "${int_dir}/flushed.prom"
rm -rf "${int_dir}"

# Stall-dump smoke: the watchdog test's stalled fake search writes its
# flight-recorder dump where PS_TEST_STALL_JSON points; the file must
# survive python's strict JSON parser and carry the ring + phase stacks.
echo "==== watchdog stall JSON smoke (build-ci-release) ===="
stall_dir="$(mktemp -d)"
PS_TEST_STALL_JSON="${stall_dir}/stall.json" \
  ./build-ci-release/tests/test_profiler \
  --gtest_filter='ProfilerTest.WatchdogDumpsStalledSearchOnceAndSparesProgress'
python3 -m json.tool "${stall_dir}/stall.json" > /dev/null
grep -q '"ring"' "${stall_dir}/stall.json"
grep -q '"phase_stacks"' "${stall_dir}/stall.json"
rm -rf "${stall_dir}"

# CLI argument validation smoke: malformed numeric flag values must be
# rejected with a diagnostic and exit code 2 — never crash with an
# uncaught std::invalid_argument (the pre-fix behavior) and never be
# silently misparsed.
cli_flag_smoke() {
  local build="$1"
  echo "==== psc flag validation smoke (${build}) ===="
  local rc out
  for bad in "--deadline bogus" "--lambda -3" "--search-threads 4x" \
             "--registers 1e3" "--split --lambda"; do
    rc=0
    # shellcheck disable=SC2086  # intentional word-splitting of flag+value
    out="$(echo "x = a;" | "./${build}/tools/psc" ${bad} 2>&1)" || rc=$?
    if [[ "${rc}" -ne 2 ]]; then
      echo "FAIL: psc ${bad} exited ${rc}, expected 2" >&2
      exit 1
    fi
    if ! grep -q "psc: invalid value for" <<< "${out}"; then
      echo "FAIL: psc ${bad} did not print the invalid-value diagnostic:" >&2
      echo "${out}" >&2
      exit 1
    fi
  done
  # A well-formed invocation must still succeed.
  echo "x = a * b;" | "./${build}/tools/psc" --search-threads 2 > /dev/null

  # --result-cache audit: an empty path is a usage error (exit 2, the
  # invalid-value diagnostic) ...
  rc=0
  out="$(echo "x = a;" | "./${build}/tools/psc" --result-cache "" 2>&1)" \
    || rc=$?
  if [[ "${rc}" -ne 2 ]] || \
     ! grep -q "psc: invalid value for" <<< "${out}"; then
    echo "FAIL: psc --result-cache '' exited ${rc}: ${out}" >&2
    exit 1
  fi
  # ... an unwritable directory fails up front with a clean psc: line ...
  rc=0
  out="$(echo "x = a;" | "./${build}/tools/psc" \
    --result-cache /nonexistent-ci-dir/cache.pscache 2>&1)" || rc=$?
  if [[ "${rc}" -ne 2 ]] || ! grep -q "^psc: " <<< "${out}"; then
    echo "FAIL: psc --result-cache bad-dir exited ${rc}: ${out}" >&2
    exit 1
  fi
  # ... and so does a cache file from a different format version.
  local cache_dir
  cache_dir="$(mktemp -d)"
  echo "x = a;" | "./${build}/tools/psc" \
    --result-cache "${cache_dir}/v.pscache" > /dev/null
  printf '\x63' | dd of="${cache_dir}/v.pscache" bs=1 seek=8 count=1 \
    conv=notrunc 2> /dev/null
  rc=0
  out="$(echo "x = a;" | "./${build}/tools/psc" \
    --result-cache "${cache_dir}/v.pscache" 2>&1)" || rc=$?
  if [[ "${rc}" -ne 2 ]] || ! grep -q "format version" <<< "${out}"; then
    echo "FAIL: psc --result-cache version-mismatch exited ${rc}: ${out}" >&2
    exit 1
  fi
  rm -rf "${cache_dir}"
}

cli_flag_smoke build-ci-release
cli_flag_smoke build-ci-sanitize

# Bench regression gate: re-run the committed baseline's corpus
# configuration (PS_CORPUS_RUNS must match BENCH_corpus.json, see
# EXPERIMENTS.md) and diff the fresh roll-up against the committed one.
# Correctness fields compare exactly; timing fields get a generous CI
# allowance (shared runners are noisy) on top of the default noise
# policy. The self-diff guards the gate itself: identical inputs must
# always exit 0.
echo "==== bench regression gate (build-ci-release) ===="
./build-ci-release/tools/bench_diff BENCH_corpus.json BENCH_corpus.json
gate_dir="$(mktemp -d)"
(cd "${gate_dir}" && \
  PS_CORPUS_RUNS=300 "${OLDPWD}/build-ci-release/bench/bench_table7" \
  > /dev/null)
./build-ci-release/tools/bench_diff --rel-tol 1.0 \
  BENCH_corpus.json "${gate_dir}/BENCH_corpus.json"
rm -rf "${gate_dir}"

# Portfolio bench gate: same policy for the three-sweep racing bench's
# roll-up. Exact fields (block counts, optima, total NOPs) are
# deterministic for the portfolio too — only the win split is
# timing-dependent, and bench_diff classifies it as informational.
echo "==== portfolio bench gate (build-ci-release) ===="
./build-ci-release/tools/bench_diff \
  BENCH_corpus_portfolio.json BENCH_corpus_portfolio.json
gate_dir="$(mktemp -d)"
(cd "${gate_dir}" && \
  PS_CORPUS_RUNS=300 "${OLDPWD}/build-ci-release/bench/bench_portfolio" \
  > /dev/null)
./build-ci-release/tools/bench_diff --rel-tol 1.0 \
  BENCH_corpus_portfolio.json "${gate_dir}/BENCH_corpus_portfolio.json"
rm -rf "${gate_dir}"

# Result-cache bench gate: same policy for the cold/warm cache bench's
# warm-run roll-up (every field deterministic except wall time).
echo "==== result cache bench gate (build-ci-release) ===="
./build-ci-release/tools/bench_diff \
  BENCH_corpus_cache.json BENCH_corpus_cache.json
gate_dir="$(mktemp -d)"
(cd "${gate_dir}" && \
  PS_CORPUS_RUNS=300 "${OLDPWD}/build-ci-release/bench/bench_result_cache" \
  > /dev/null)
./build-ci-release/tools/bench_diff --rel-tol 1.0 \
  BENCH_corpus_cache.json "${gate_dir}/BENCH_corpus_cache.json"
rm -rf "${gate_dir}"

# Warm-run lane: the same corpus twice against one persistent cache file.
# The second pass must be served almost entirely from the cache (>= 95%
# hit rate; the misses are the curtailed blocks, which are never stored),
# and its roll-up must agree with the cold pass on every exact field —
# cached optima are byte-for-byte the fresh optima.
echo "==== result cache warm-run lane (build-ci-release) ===="
warm_dir="$(mktemp -d)"
repo_root="${PWD}"
mkdir "${warm_dir}/cold" "${warm_dir}/warm"
(cd "${warm_dir}/cold" && \
  PS_CORPUS_RUNS=300 PS_RESULT_CACHE="${warm_dir}/corpus.pscache" \
  "${repo_root}/build-ci-release/bench/bench_table7" > /dev/null)
(cd "${warm_dir}/warm" && \
  PS_CORPUS_RUNS=300 PS_RESULT_CACHE="${warm_dir}/corpus.pscache" \
  "${repo_root}/build-ci-release/bench/bench_table7" > /dev/null)
python3 - "${warm_dir}/warm/BENCH_corpus.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    roll = json.load(f)
hits = roll["metrics"]["total_result_cache_hits"]
blocks = roll["metrics"]["blocks"]
rate = 100.0 * hits / blocks
print(f"warm pass: {hits}/{blocks} result-cache hits ({rate:.2f}%)")
assert rate >= 95.0, f"warm hit rate {rate:.2f}% < 95%"
PY
./build-ci-release/tools/bench_diff --rel-tol 1.0 \
  "${warm_dir}/cold/BENCH_corpus.json" "${warm_dir}/warm/BENCH_corpus.json"
rm -rf "${warm_dir}"

# Corpus smoke under the sanitizers: the wall-clock deadline and the
# per-block fault/reproducer paths are timing- and exception-heavy, so
# exercise them explicitly beyond their unit tests — first the focused
# tests, then a real (small) corpus run with a deadline tight enough that
# some searches curtail on the clock.
echo "==== corpus smoke (sanitized): deadline + fault-injection paths ===="
./build-ci-sanitize/tests/test_corpus_runner \
  --gtest_filter='Deadline.*:CorpusRunner.FaultInjectionKeepsOtherRecords:CorpusRunner.ExportsAndRollupSurviveFaultAndDeadline'
smoke_dir="$(mktemp -d)"
(cd "${smoke_dir}" && \
  PS_CORPUS_RUNS=300 PS_DEADLINE=0.0005 \
  "${OLDPWD}/build-ci-sanitize/bench/bench_table7" > bench_table7_smoke.log)
grep -q "Curtailed (deadline)" "${smoke_dir}/bench_table7_smoke.log"
test -s "${smoke_dir}/BENCH_corpus.json"
test -s "${smoke_dir}/corpus_records.jsonl"
rm -rf "${smoke_dir}"

echo "==== CI OK: Release, ASan/UBSan, and TSan lanes all green ===="
