// Reassociation ablation (extension): balancing Add/Mul trees shortens
// the dependence critical path, which is the binding constraint whenever
// a block is chain-dominated — exactly the blocks whose NOPs the
// scheduler cannot otherwise hide.
//
// Corpus rows: standard optimizer vs standard + reassociation; mean
// critical path, mean final NOPs, and the same on a chain-heavy stress
// workload (long product/sum expressions).
#include <iostream>

#include "bench_common.hpp"
#include "frontend/codegen.hpp"
#include "frontend/opt/passes.hpp"
#include "frontend/parser.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "util/stats.hpp"

namespace {

using namespace pipesched;

struct Row {
  Accumulator critical_path;
  Accumulator final_nops;
  Accumulator instructions;
};

void measure(const BasicBlock& prepared, const Machine& machine, Row& row) {
  if (prepared.empty()) return;
  const DepGraph dag(prepared);
  SearchConfig config;
  config.curtail_lambda = 20000;
  config.lower_bound_prune = true;
  const OptimalResult result = optimal_schedule(machine, dag, config);
  row.critical_path.add(dag.critical_path_length());
  row.final_nops.add(result.best.total_nops());
  row.instructions.add(static_cast<double>(prepared.size()));
}

BasicBlock with_reassoc(const BasicBlock& block) {
  return dead_code_elimination(reassociation(block).block).block;
}

/// Long reduction expressions: the chain-dominated stress case.
std::string chain_source(std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream oss;
  for (int s = 0; s < 3; ++s) {
    oss << "r" << s << " = v0";
    const char op = rng.next_bool() ? '*' : '+';
    const int terms = 5 + static_cast<int>(rng.next_below(8));
    for (int t = 1; t <= terms; ++t) {
      oss << ' ' << op << " v" << t % 6;
    }
    oss << ";\n";
  }
  return oss.str();
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Reassociation: Critical Path Vs. Final NOPs",
                "extension (DESIGN.md)");

  const Machine machine = Machine::paper_simulation();
  const int runs = bench::corpus_runs(3000);

  Row corpus_plain;
  Row corpus_balanced;
  {
    CorpusSpec spec;
    spec.total_runs = runs;
    for (const GeneratorParams& p : corpus_params(spec)) {
      const BasicBlock block = generate_block(p);  // standard pipeline
      measure(block, machine, corpus_plain);
      measure(run_standard_pipeline(with_reassoc(block)), machine,
              corpus_balanced);
    }
  }

  Row chains_plain;
  Row chains_balanced;
  const int chain_runs = std::max(50, runs / 10);
  for (int i = 0; i < chain_runs; ++i) {
    const BasicBlock raw = generate_tuples(
        parse_source(chain_source(static_cast<std::uint64_t>(i) + 1)));
    const BasicBlock plain = run_standard_pipeline(raw);
    measure(plain, machine, chains_plain);
    measure(run_standard_pipeline(with_reassoc(plain)), machine,
            chains_balanced);
  }

  CsvWriter csv("reassoc.csv");
  csv.row({"workload", "variant", "avg_instructions", "avg_critical_path",
           "avg_final_nops"});
  std::cout << pad_right("workload / variant", 32)
            << pad_left("avg insns", 11) << pad_left("crit path", 11)
            << pad_left("final NOPs", 12) << "\n";
  const auto emit = [&](const char* workload, const char* variant,
                        const Row& row) {
    std::cout << pad_right(std::string(workload) + " / " + variant, 32)
              << pad_left(compact_double(row.instructions.mean(), 4), 11)
              << pad_left(compact_double(row.critical_path.mean(), 4), 11)
              << pad_left(compact_double(row.final_nops.mean(), 3), 12)
              << "\n";
    csv.row_of(workload, variant, row.instructions.mean(),
               row.critical_path.mean(), row.final_nops.mean());
  };
  emit("corpus", "standard", corpus_plain);
  emit("corpus", "+reassociation", corpus_balanced);
  emit("reductions", "standard", chains_plain);
  emit("reductions", "+reassociation", chains_balanced);

  std::cout << "\nCSV written to reassoc.csv\n";
  return 0;
}
