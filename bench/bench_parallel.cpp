// Scaling benchmark for the frontier-split parallel branch-and-bound.
//
// Protocol: candidate generated blocks are probed sequentially (dominance
// cache OFF, so every thread count explores the same pruned tree shape)
// and kept when their exhaustive search needs a placement count large
// enough to be worth splitting. Each kept block is then solved to
// exhaustion at 1, 2, 4 and 8 search threads; soundness is asserted
// inline — every thread count must report the identical optimal NOP
// count — and the table reports total wall time plus speedup relative to
// the sequential run.
//
// Honesty note: speedup is only attainable when the host has spare
// hardware threads. The binary prints std::thread::hardware_concurrency
// next to the table; on a single-core host the expected result is a
// slowdown (frontier BFS + worker handoff overhead with no parallel
// execution underneath), and the numbers should be read as the overhead
// cost, not the scaling headroom. See EXPERIMENTS.md.
//
// Workload knobs: PS_PARALLEL_BLOCKS (default 20) selects how many blocks
// are measured.
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace pipesched;

int parallel_blocks(int fallback = 20) {
  if (const char* env = std::getenv("PS_PARALLEL_BLOCKS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Uncached-exhaustion placement budget a candidate must fit inside (so
/// every measured run provably completes) and the floor that makes a
/// block worth splitting at all.
constexpr std::uint64_t kOmegaCeiling = 2'000'000;
constexpr std::uint64_t kOmegaFloor = 20'000;

struct Candidate {
  BasicBlock block;
  std::uint64_t seq_omega = 0;
};

std::vector<Candidate> find_hard_blocks(const Machine& machine, int count) {
  std::vector<Candidate> kept;
  for (std::uint64_t seed = 1; seed < 100000 &&
                               static_cast<int>(kept.size()) < count;
       ++seed) {
    GeneratorParams params;
    params.statements = 10 + static_cast<int>(seed % 6);
    params.variables = 3 + static_cast<int>(seed % 3);
    params.constants = 2;
    params.seed = seed;
    BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    const DepGraph dag(block);
    SearchConfig probe;
    probe.curtail_lambda = kOmegaCeiling;
    probe.dominance_cache = false;
    const OptimalResult r = optimal_schedule(machine, dag, probe);
    if (!r.stats.completed) continue;
    if (r.stats.omega_calls < kOmegaFloor) continue;
    kept.push_back({std::move(block), r.stats.omega_calls});
  }
  return kept;
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Parallel Frontier-Split Search",
                "shared-incumbent scaling; extension beyond the paper");

  const Machine machine = Machine::paper_simulation();
  const int count = parallel_blocks();
  const auto candidates = find_hard_blocks(machine, count);
  PS_CHECK(!candidates.empty(), "no measurable blocks found");

  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "   blocks: " << candidates.size()
            << "   (dominance cache off; searches run to exhaustion)\n\n";

  CsvWriter csv("parallel_speedup.csv");
  csv.row({"threads", "blocks", "total_secs", "speedup_vs_1",
           "omega_total", "nodes_total", "frontier_subtrees"});

  std::cout << pad_left("threads", 8) << pad_left("time", 12)
            << pad_left("speedup", 10) << pad_left("omega", 14)
            << pad_left("subtrees", 10) << "\n";

  double secs_1 = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    double secs = 0;
    std::uint64_t omega = 0, nodes = 0, subtrees = 0;
    std::vector<int> nops;
    for (const Candidate& candidate : candidates) {
      const DepGraph dag(candidate.block);
      SearchConfig config;
      config.curtail_lambda = 0;  // to exhaustion: provably optimal
      config.dominance_cache = false;
      config.search_threads = threads;
      const Timer wall;
      const OptimalResult r = optimal_schedule(machine, dag, config);
      secs += wall.seconds();
      PS_CHECK(r.stats.completed,
               "parallel search did not complete at " << threads
                                                      << " threads");
      omega += r.stats.omega_calls;
      nodes += r.stats.nodes_expanded;
      subtrees += r.stats.frontier_subtrees;
      nops.push_back(r.best.total_nops());
    }
    static std::vector<int> baseline_nops;
    if (threads == 1) {
      baseline_nops = nops;
      secs_1 = secs;
    } else {
      PS_CHECK(nops == baseline_nops,
               "thread count " << threads
                               << " changed an optimal NOP count");
    }
    const double speedup = secs > 0 ? secs_1 / secs : 0.0;
    std::cout << pad_left(std::to_string(threads), 8)
              << pad_left(compact_double(secs * 1e3, 4) + "ms", 12)
              << pad_left(compact_double(speedup, 3) + "x", 10)
              << pad_left(std::to_string(omega), 14)
              << pad_left(std::to_string(subtrees), 10) << "\n";
    csv.row({std::to_string(threads), std::to_string(candidates.size()),
             compact_double(secs, 6), compact_double(speedup, 4),
             std::to_string(omega), std::to_string(nodes),
             std::to_string(subtrees)});
  }

  std::cout << "\nevery thread count reproduced the identical optima ("
            << candidates.size() << " blocks)\n";
  return 0;
}
