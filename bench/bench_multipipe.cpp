// Multiple-pipelines-per-operation extension (the Tables 2-3 machine).
//
// The paper's core algorithm footnote excludes choosing among duplicate
// units; our timing engine assigns each operation to the earliest-free
// homogeneous unit. This bench quantifies what unit duplication buys:
// the same corpus scheduled on the Tables 2-3 machine (two loaders, two
// adders, one multiplier) vs. a single-unit variant of it, plus the
// unpipelined-units model of Section 2.1.
#include <iostream>

#include "bench_common.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "ir/dag.hpp"
#include "util/stats.hpp"

namespace {

using namespace pipesched;

Machine paper_example_single() {
  Machine m("paper-example-single");
  m.add_pipeline("loader", 2, 1);
  m.add_pipeline("adder", 4, 3);
  m.add_pipeline("multiplier", 4, 2);
  m.map_op(Opcode::Load, "loader");
  m.map_op(Opcode::Add, "adder");
  m.map_op(Opcode::Sub, "adder");
  m.map_op(Opcode::Neg, "adder");
  m.map_op(Opcode::Mul, "multiplier");
  m.map_op(Opcode::Div, "multiplier");
  m.validate();
  return m;
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Duplicated Pipeline Units (Tables 2-3 Machine)",
                "Section 4.1 extension");

  const int runs = bench::corpus_runs(3000);
  CorpusSpec spec;
  spec.total_runs = runs;
  const auto params = corpus_params(spec);

  const Machine machines[] = {
      Machine::paper_example(),      // 2 loaders, 2 adders, 1 multiplier
      paper_example_single(),        // same latencies, one unit each
      Machine::paper_simulation(),   // Tables 4-5 reference machine
      Machine::unpipelined_units(),  // enqueue == latency units
  };

  CsvWriter csv("multipipe.csv");
  csv.row({"machine", "avg_initial_nops", "avg_final_nops", "pct_completed",
           "avg_omega_calls"});
  std::cout << pad_right("machine", 24) << pad_left("avg initial", 13)
            << pad_left("avg final", 11) << pad_left("% complete", 12)
            << pad_left("avg omega", 12) << "\n";

  for (const Machine& machine : machines) {
    CorpusRunOptions options;
    options.machine = machine;
    options.search.curtail_lambda = 20000;
    const CorpusSummary s = summarize_corpus(run_corpus(params, options));
    std::cout << pad_right(machine.name(), 24)
              << pad_left(compact_double(s.total.avg_initial_nops, 4), 13)
              << pad_left(compact_double(s.total.avg_final_nops, 4), 11)
              << pad_left(compact_double(s.completed.percent, 4), 12)
              << pad_left(compact_double(s.total.avg_omega_calls, 5), 12)
              << "\n";
    csv.row_of(machine.name(), s.total.avg_initial_nops,
               s.total.avg_final_nops, s.completed.percent,
               s.total.avg_omega_calls);
  }
  std::cout << "\nduplicated units should show strictly fewer final NOPs "
               "than the single-unit variant.\n";

  // Second experiment: heterogeneous alternatives (asymmetric-alus —
  // beyond footnote 3). The optimal search branches over unit-signature
  // groups; greedy earliest-free assignment is only a heuristic there.
  {
    const Machine machine = Machine::asymmetric_alus();
    Accumulator greedy_nops;
    Accumulator optimal_nops;
    Accumulator improved;
    for (const GeneratorParams& p : params) {
      const BasicBlock block = generate_block(p);
      if (block.empty()) continue;
      const DepGraph dag(block);
      const int greedy =
          greedy_schedule(machine, dag).total_nops();
      SearchConfig search;
      search.curtail_lambda = 20000;
      search.lower_bound_prune = true;
      const int optimal =
          optimal_schedule(machine, dag, search).best.total_nops();
      greedy_nops.add(greedy);
      optimal_nops.add(optimal);
      improved.add(optimal < greedy ? 100 : 0);
    }
    std::cout << "\nheterogeneous units (" << machine.name()
              << "): greedy assignment "
              << compact_double(greedy_nops.mean(), 4)
              << " NOPs/block vs unit-branching optimal "
              << compact_double(optimal_nops.mean(), 4) << " ("
              << compact_double(improved.mean(), 3)
              << "% of blocks strictly improved)\n";
    csv.row_of("asymmetric-greedy", 0, greedy_nops.mean(), 0, 0);
    csv.row_of("asymmetric-optimal", 0, optimal_nops.mean(), 0, 0);
  }
  std::cout << "CSV written to multipipe.csv\n";
  return 0;
}
