// Section 3.1's observation, measured:
//
//   "Optimization of the code is not strictly necessary in order to
//    perform pipeline scheduling; in fact, if traditional optimizations
//    are applied, the general effect is that finding good schedules
//    becomes more difficult."
//
// The same source programs are scheduled with and without the optimizer:
// optimized blocks are much smaller but denser in dependences, so the
// residual (unhidable) NOPs per instruction rise and the search works
// relatively harder per instruction — while total execution cycles still
// drop dramatically (the optimizer removed real work).
#include <iostream>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Effect of Traditional Optimization on Scheduling",
                "Section 3.1");

  const int runs = bench::corpus_runs(4000);
  CorpusSpec spec;
  spec.total_runs = runs;
  const Machine machine = Machine::paper_simulation();

  struct Side {
    Accumulator instructions;
    Accumulator edges_per_insn;
    Accumulator final_nops;
    Accumulator nops_per_insn;
    Accumulator omega;
    Accumulator cycles;
    Accumulator completed;
  };
  Side with_opt;
  Side without_opt;

  for (GeneratorParams params : corpus_params(spec)) {
    for (bool optimize : {true, false}) {
      params.optimize = optimize;
      const BasicBlock block = generate_block(params);
      if (block.empty()) continue;
      const DepGraph dag(block);
      SearchConfig config;
      config.curtail_lambda = 20000;
      config.lower_bound_prune = true;
      const OptimalResult result = optimal_schedule(machine, dag, config);

      Side& side = optimize ? with_opt : without_opt;
      const auto n = static_cast<double>(block.size());
      side.instructions.add(n);
      side.edges_per_insn.add(static_cast<double>(dag.edges().size()) / n);
      side.final_nops.add(result.best.total_nops());
      side.nops_per_insn.add(result.best.total_nops() / n);
      side.omega.add(static_cast<double>(result.stats.omega_calls));
      side.cycles.add(result.best.completion_cycle());
      side.completed.add(result.stats.completed ? 100 : 0);
    }
  }

  CsvWriter csv("opt_effect.csv");
  csv.row({"variant", "avg_instructions", "avg_edges_per_insn",
           "avg_final_nops", "avg_nops_per_insn", "avg_omega",
           "avg_cycles", "pct_completed"});
  std::cout << pad_right("", 22) << pad_left("optimized", 12)
            << pad_left("unoptimized", 13) << "\n";
  const auto row = [&](const char* label, auto get) {
    std::cout << pad_right(label, 22)
              << pad_left(compact_double(get(with_opt), 4), 12)
              << pad_left(compact_double(get(without_opt), 4), 13) << "\n";
  };
  row("avg instructions", [](const Side& s) { return s.instructions.mean(); });
  row("avg dep edges/insn",
      [](const Side& s) { return s.edges_per_insn.mean(); });
  row("avg final NOPs", [](const Side& s) { return s.final_nops.mean(); });
  row("avg NOPs/insn", [](const Side& s) { return s.nops_per_insn.mean(); });
  row("avg omega calls", [](const Side& s) { return s.omega.mean(); });
  row("avg total cycles", [](const Side& s) { return s.cycles.mean(); });
  row("% complete", [](const Side& s) { return s.completed.mean(); });
  for (const Side* side : {&with_opt, &without_opt}) {
    csv.row_of(side == &with_opt ? "optimized" : "unoptimized",
               side->instructions.mean(), side->edges_per_insn.mean(),
               side->final_nops.mean(), side->nops_per_insn.mean(),
               side->omega.mean(), side->cycles.mean(),
               side->completed.mean());
  }
  std::cout << "\nThe paper's point shows up as NOPs/instruction: the\n"
               "optimizer removes easy filler, leaving denser dependence\n"
               "structure with relatively more unhidable latency — while\n"
               "total cycles (what the user runs) still fall.\n"
            << "CSV written to opt_effect.csv\n";
  return 0;
}
