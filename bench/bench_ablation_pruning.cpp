// Ablation of the search's pruning rules (DESIGN.md experiment index).
//
// Each configuration disables or adds one rule relative to the paper's
// default; the corpus is scheduled under a fixed curtail point and we
// report mean placements (omega calls), completion rate, and mean final
// NOPs. Soundness (same optimum when completed) is covered by the test
// suite; this bench prices each rule's contribution to search *size*.
#include <iostream>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Pruning-Rule Ablation", "DESIGN.md ablation index");

  const int runs = bench::corpus_runs(3000);
  CorpusSpec spec;
  spec.total_runs = runs;
  const auto params = corpus_params(spec);
  const Machine machine = Machine::paper_simulation();
  constexpr std::uint64_t kLambda = 20000;

  struct Variant {
    const char* name;
    SearchConfig config;
  };
  SearchConfig paper;
  paper.curtail_lambda = kLambda;

  std::vector<Variant> variants;
  variants.push_back({"paper default", paper});
  {
    SearchConfig c = paper;
    c.seed_with_list_schedule = false;
    variants.push_back({"no list-schedule seed", c});
  }
  {
    SearchConfig c = paper;
    c.equivalence_prune = false;
    variants.push_back({"no equivalence [5c]", c});
  }
  {
    SearchConfig c = paper;
    c.strong_equivalence = true;
    variants.push_back({"strong equivalence (ext)", c});
  }
  {
    SearchConfig c = paper;
    c.window_prune = false;
    variants.push_back({"no window rule [5a]", c});
  }
  {
    SearchConfig c = paper;
    c.alpha_beta = false;
    variants.push_back({"no alpha-beta [6]", c});
  }
  {
    SearchConfig c = paper;
    c.lower_bound_prune = true;
    variants.push_back({"+ critical-path LB (ext)", c});
  }
  {
    SearchConfig c = paper;
    c.dominance_cache = false;
    variants.push_back({"no dominance cache (ext)", c});
  }
  {
    SearchConfig c = paper;
    c.strong_equivalence = true;
    c.lower_bound_prune = true;
    variants.push_back({"all extensions", c});
  }
  // "paper default" and every row above run with the dominance cache at
  // its default (on); the dedicated cache row and bench_ablation_cache
  // price it in isolation.

  CsvWriter csv("ablation_pruning.csv");
  csv.row({"variant", "avg_omega_calls", "pct_completed", "avg_final_nops"});
  std::cout << pad_right("variant", 28) << pad_left("avg omega", 14)
            << pad_left("% complete", 12) << pad_left("avg final NOPs", 16)
            << "\n";

  for (const Variant& variant : variants) {
    CorpusRunOptions options;
    options.machine = machine;
    options.search = variant.config;
    const auto records = run_corpus(params, options);
    const CorpusSummary summary = summarize_corpus(records);
    std::cout << pad_right(variant.name, 28)
              << pad_left(compact_double(summary.total.avg_omega_calls, 5),
                          14)
              << pad_left(compact_double(summary.completed.percent, 4), 12)
              << pad_left(compact_double(summary.total.avg_final_nops, 3),
                          16)
              << "\n";
    csv.row_of(variant.name, summary.total.avg_omega_calls,
               summary.completed.percent, summary.total.avg_final_nops);
  }
  std::cout << "\nCSV written to ablation_pruning.csv\n";
  return 0;
}
