// Figure 6 reproduction: average scheduling runtime vs. block size.
//
// The paper reports ~0.1s per typical block on a Sun 3/50 ("about 100
// typical blocks per second" overall); modern hardware is ~4 orders of
// magnitude faster, so we report microseconds — the *shape* (flat for
// common sizes, rising for the largest, curtail-bounded blocks) is the
// reproduced result.
#include <iostream>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Runtime Vs. Block Size", "Figure 6");

  const int runs = bench::corpus_runs();
  CorpusRunOptions options = bench::paper_run_options();
  options.threads = 1;  // per-block timing must not fight for the core
  const std::vector<RunRecord> records =
      bench::run_paper_corpus(runs, options);

  GroupedStats micros;
  for (const RunRecord& r : records) {
    if (r.block_size == 0) continue;
    micros.add(r.block_size, r.seconds * 1e6);
  }

  ChartOptions chart;
  chart.title = "mean search time (microseconds, log) vs block size";
  chart.x_label = "instructions per block";
  chart.y_label = "microseconds";
  chart.log_y = true;
  std::cout << render_line(micros, chart) << "\n";

  CsvWriter csv("fig6.csv");
  csv.row({"block_size", "runs", "avg_micros", "max_micros"});
  std::cout << pad_left("n", 5) << pad_left("runs", 8)
            << pad_left("avg us", 12) << pad_left("max us", 12) << "\n";
  for (const auto& [size, acc] : micros.groups()) {
    csv.row_of(size, acc.count(), acc.mean(), acc.max());
    if (size % 4 == 0) {
      std::cout << pad_left(std::to_string(size), 5)
                << pad_left(std::to_string(acc.count()), 8)
                << pad_left(compact_double(acc.mean(), 4), 12)
                << pad_left(compact_double(acc.max(), 4), 12) << "\n";
    }
  }
  std::cout << "CSV written to fig6.csv\n";
  return 0;
}
