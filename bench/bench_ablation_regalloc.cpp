// Register-allocation ordering ablation (the paper's Section 1, claim #1):
// scheduling *before* register allocation avoids the artificial anti
// dependences a postpass scheduler inherits from register reuse.
//
// For each block we compare the optimal schedule of
//   (a) the free DAG (allocate afterwards — the paper's design), against
//   (b) the DAG augmented with false dependences from an allocation
//       computed on the original order with K registers assigned
//       round-robin (temporaries cycle through the file, as typical code
//       generators do — a larger file then delays reuse),
// for K = MAXLIVE (tightest legal file), MAXLIVE+2, and MAXLIVE+4.
#include <iostream>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/optimal_scheduler.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Schedule-Then-Allocate Vs. Allocate-Then-Schedule",
                "Section 1, claim #1");

  const int runs = bench::corpus_runs(2000);
  CorpusSpec spec;
  spec.total_runs = runs;
  const auto params = corpus_params(spec);
  const Machine machine = Machine::risc_classic();

  SearchConfig config;
  config.curtail_lambda = 20000;

  Accumulator free_nops;
  std::vector<std::pair<int, Accumulator>> constrained = {
      {0, {}}, {2, {}}, {4, {}}};
  Accumulator maxlive;

  for (const GeneratorParams& p : params) {
    const BasicBlock block = generate_block(p);
    if (block.empty()) continue;
    std::vector<TupleIndex> original(block.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      original[i] = static_cast<TupleIndex>(i);
    }
    const auto ranges = compute_live_ranges(block, original);
    const int live = std::max(1, max_live(ranges));
    maxlive.add(live);

    const DepGraph free_dag(block);
    const int base =
        optimal_schedule(machine, free_dag, config).best.total_nops();
    free_nops.add(base);

    for (auto& [extra, acc] : constrained) {
      const Allocation alloc = linear_scan(block, original, live + extra,
                                           AllocPolicy::RoundRobin);
      const DepGraph dag(block, false_dependence_edges(block, alloc));
      acc.add(optimal_schedule(machine, dag, config).best.total_nops());
    }
  }

  CsvWriter csv("ablation_regalloc.csv");
  csv.row({"variant", "avg_final_nops", "overhead_vs_free_pct"});
  std::cout << "machine " << machine.name() << ", " << free_nops.count()
            << " blocks, mean MAXLIVE " << compact_double(maxlive.mean(), 3)
            << "\n\n";
  std::cout << pad_right("variant", 34) << pad_left("avg final NOPs", 16)
            << pad_left("vs. free", 12) << "\n";
  const auto emit = [&](const std::string& name, double nops) {
    const double overhead =
        free_nops.mean() > 0
            ? 100.0 * (nops - free_nops.mean()) / free_nops.mean()
            : 0.0;
    std::cout << pad_right(name, 34) << pad_left(compact_double(nops, 4), 16)
              << pad_left("+" + compact_double(overhead, 3) + "%", 12)
              << "\n";
    csv.row_of(name, nops, overhead);
  };
  emit("schedule first (paper)", free_nops.mean());
  for (const auto& [extra, acc] : constrained) {
    emit("allocate first, K = MAXLIVE+" + std::to_string(extra), acc.mean());
  }
  std::cout << "\nCSV written to ablation_regalloc.csv\n";
  return 0;
}
