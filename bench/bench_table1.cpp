// Table 1 reproduction: search-space sizes for representative blocks.
//
// Columns, as in the paper:
//   Exhaustive Search Calls   n! complete schedules
//   Pruning Illegal Calls     legal topological orders only (counted by
//                             backtracking, capped at 9,999,000 — the
//                             paper's n=22 row reads ">9,999,000" for the
//                             same reason)
//   Proposed Pruning Calls    placements examined by the branch-and-bound
//                             search run to exhaustion
//
// The representative blocks are drawn from the synthetic generator at the
// paper's row sizes {8, 11, 13, 13, 14, 16, 16, 16, 20, 21, 22}; exact
// counts differ from the 1990 rows (different blocks), but the shape —
// each column orders of magnitude below the previous — is the result.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"

namespace {

using namespace pipesched;

/// Deterministically find a generated block with exactly `size`
/// instructions whose search runs to completion within a 10M-placement
/// budget (Table 1 reports completed searches; Section 2.3 concedes the
/// worst case is still "terrible", so representative blocks are chosen the
/// way the paper chose them — among those the search finishes). `skip`
/// selects later matches so repeated row sizes get distinct blocks.
std::optional<BasicBlock> find_block_of_size(const Machine& machine,
                                             std::size_t size, int skip) {
  for (std::uint64_t seed = 1; seed < 50000; ++seed) {
    GeneratorParams params;
    params.statements = static_cast<int>(size) / 2 + 1;
    params.variables = 4 + static_cast<int>(seed % 3);
    params.constants = 2;
    params.seed = seed;
    BasicBlock block = generate_block(params);
    if (block.size() != size) continue;
    SearchConfig probe;
    probe.curtail_lambda = 10'000'000;
    const DepGraph dag(block);
    if (!optimal_schedule(machine, dag, probe).stats.completed) continue;
    if (skip-- > 0) continue;
    return block;
  }
  return std::nullopt;
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Search Space for Representative Examples", "Table 1");

  const Machine machine = Machine::paper_simulation();
  constexpr std::uint64_t kLegalCap = 9'999'000;

  struct Row {
    std::size_t size;
    int skip;
  };
  const Row rows[] = {{8, 0},  {11, 0}, {13, 0}, {13, 1}, {14, 0}, {16, 0},
                      {16, 1}, {16, 2}, {20, 0}, {21, 0}, {22, 0}};

  CsvWriter csv("table1.csv");
  csv.row({"instructions", "exhaustive_calls", "legal_only_calls",
           "proposed_pruning_calls"});

  std::cout << pad_left("Instructions", 14) << pad_left("Exhaustive", 30)
            << pad_left("Pruning Illegal", 18)
            << pad_left("Proposed Pruning", 18) << "\n";
  std::cout << pad_left("In Block", 14) << pad_left("Search Calls", 30)
            << pad_left("Calls", 18) << pad_left("Calls", 18) << "\n";

  for (const Row& row : rows) {
    const auto block = find_block_of_size(machine, row.size, row.skip);
    if (!block) {
      std::cout << "(no generated block of size " << row.size << ")\n";
      continue;
    }
    const DepGraph dag(*block);

    const std::string exhaustive = factorial_pretty(static_cast<int>(row.size));
    const std::uint64_t legal = count_topological_orders(dag, kLegalCap);
    const std::string legal_text =
        legal >= kLegalCap ? ">" + with_commas(kLegalCap)
                           : with_commas(legal);

    SearchConfig config;
    config.curtail_lambda = 0;  // to exhaustion: provably optimal
    const OptimalResult result = optimal_schedule(machine, dag, config);

    std::cout << pad_left(std::to_string(row.size), 14)
              << pad_left(exhaustive, 30) << pad_left(legal_text, 18)
              << pad_left(with_commas(result.stats.omega_calls), 18) << "\n";
    csv.row_of(row.size, exhaustive, legal_text, result.stats.omega_calls);
  }
  std::cout << "\nCSV written to table1.csv\n";
  return 0;
}
