// Section 5.3's proposed block-splitting technique, measured: on very
// large blocks, locally-optimal windows over the list schedule vs. the
// curtailed global search vs. the heuristics.
//
// Series: window sizes {5, 10, 20, 30} plus global search at the same
// total placement budget; for each, mean final NOPs and mean time.
#include <iostream>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sched/split_scheduler.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Block Splitting for Very Large Blocks", "Section 5.3");

  const int runs = bench::corpus_runs(200);
  const Machine machine = Machine::paper_simulation();
  constexpr std::uint64_t kBudget = 100000;  // placements per block

  struct Row {
    std::string name;
    Accumulator nops;
    Accumulator micros;
    Accumulator completed;
  };
  std::vector<Row> rows;
  rows.push_back({"list schedule", {}, {}, {}});
  rows.push_back({"greedy", {}, {}, {}});
  for (int window : {5, 10, 20, 30}) {
    rows.push_back({"split w=" + std::to_string(window), {}, {}, {}});
  }
  rows.push_back({"global (same budget)", {}, {}, {}});

  Accumulator sizes;
  for (int i = 0; i < runs; ++i) {
    GeneratorParams params;
    params.statements = 45 + i % 40;  // blocks of ~60-120 instructions
    params.variables = 10;
    params.constants = 4;
    params.seed = 9000 + static_cast<std::uint64_t>(i) * 7;
    const BasicBlock block = generate_block(params);
    if (block.empty()) continue;
    sizes.add(static_cast<double>(block.size()));
    const DepGraph dag(block);

    std::size_t row = 0;
    {
      Timer t;
      const Schedule s = list_schedule(machine, dag);
      rows[row].nops.add(s.total_nops());
      rows[row].micros.add(t.micros());
      rows[row].completed.add(100);
      ++row;
    }
    {
      Timer t;
      const Schedule s = greedy_schedule(machine, dag);
      rows[row].nops.add(s.total_nops());
      rows[row].micros.add(t.micros());
      rows[row].completed.add(100);
      ++row;
    }
    for (int window : {5, 10, 20, 30}) {
      Timer t;
      SplitConfig config;
      config.window_size = window;
      config.search.curtail_lambda =
          kBudget / static_cast<std::uint64_t>(
                        (block.size() + window - 1) / window);
      const SplitResult s = split_schedule(machine, dag, config);
      rows[row].nops.add(s.schedule.total_nops());
      rows[row].micros.add(t.micros());
      rows[row].completed.add(s.stats.completed ? 100 : 0);
      ++row;
    }
    {
      Timer t;
      SearchConfig config;
      config.curtail_lambda = kBudget;
      config.lower_bound_prune = true;
      const OptimalResult s = optimal_schedule(machine, dag, config);
      rows[row].nops.add(s.best.total_nops());
      rows[row].micros.add(t.micros());
      rows[row].completed.add(s.stats.completed ? 100 : 0);
    }
  }

  std::cout << "blocks: " << sizes.count() << ", mean size "
            << compact_double(sizes.mean(), 4) << " (max " << sizes.max()
            << ")\n\n";
  CsvWriter csv("split.csv");
  csv.row({"scheduler", "avg_final_nops", "avg_micros", "pct_completed"});
  std::cout << pad_right("scheduler", 22) << pad_left("avg NOPs", 10)
            << pad_left("avg us", 10) << pad_left("% complete", 12) << "\n";
  for (const Row& row : rows) {
    std::cout << pad_right(row.name, 22)
              << pad_left(compact_double(row.nops.mean(), 4), 10)
              << pad_left(compact_double(row.micros.mean(), 4), 10)
              << pad_left(compact_double(row.completed.mean(), 4), 12)
              << "\n";
    csv.row_of(row.name, row.nops.mean(), row.micros.mean(),
               row.completed.mean());
  }
  std::cout << "\nCSV written to split.csv\n";
  return 0;
}
