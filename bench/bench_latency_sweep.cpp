// Pipeline-structure sensitivity (the paper's Section 6 "ongoing work
// examines performance using various (more complex) pipeline structures"):
// sweep the loader latency and the multiplier latency/enqueue
// independently and measure how much of the added latency the optimal
// scheduler hides.
//
// Metrics per configuration: mean initial (list) NOPs, mean final NOPs,
// and the hidden fraction 1 - final/initial.
#include <iostream>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "util/stats.hpp"

namespace {

using namespace pipesched;

Machine swept_machine(int load_latency, int mul_latency, int mul_enqueue) {
  Machine m("swept");
  m.add_pipeline("loader", load_latency, 1);
  m.add_pipeline("multiplier", mul_latency, mul_enqueue);
  m.map_op(Opcode::Load, "loader");
  m.map_op(Opcode::Mul, "multiplier");
  m.map_op(Opcode::Div, "multiplier");
  m.validate();
  return m;
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Pipeline Parameter Sweep", "Section 6 ongoing work");

  const int runs = bench::corpus_runs(1200);
  CorpusSpec spec;
  spec.total_runs = runs;
  const auto params = corpus_params(spec);

  struct Config {
    int load_latency;
    int mul_latency;
    int mul_enqueue;
  };
  const Config configs[] = {
      {1, 4, 2}, {2, 4, 2},  // paper point
      {4, 4, 2}, {6, 4, 2}, {8, 4, 2},   // deeper memory
      {2, 2, 1}, {2, 8, 2}, {2, 12, 3},  // deeper multiplier
      {2, 4, 4},                          // non-pipelined multiplier
  };

  CsvWriter csv("latency_sweep.csv");
  csv.row({"load_latency", "mul_latency", "mul_enqueue",
           "avg_initial_nops", "avg_final_nops", "pct_hidden",
           "pct_completed"});
  std::cout << pad_left("ld lat", 8) << pad_left("mul lat", 9)
            << pad_left("mul enq", 9) << pad_left("initial", 10)
            << pad_left("final", 8) << pad_left("% hidden", 10)
            << pad_left("% complete", 12) << "\n";

  for (const Config& config : configs) {
    const Machine machine = swept_machine(
        config.load_latency, config.mul_latency, config.mul_enqueue);
    Accumulator initial;
    Accumulator final_nops;
    Accumulator completed;
    for (const GeneratorParams& p : params) {
      const BasicBlock block = generate_block(p);
      if (block.empty()) continue;
      const DepGraph dag(block);
      SearchConfig search;
      search.curtail_lambda = 20000;
      search.lower_bound_prune = true;
      const OptimalResult result = optimal_schedule(machine, dag, search);
      initial.add(result.stats.initial_nops);
      final_nops.add(result.stats.best_nops);
      completed.add(result.stats.completed ? 100 : 0);
    }
    const double hidden =
        initial.mean() > 0
            ? 100.0 * (1.0 - final_nops.mean() / initial.mean())
            : 100.0;
    std::cout << pad_left(std::to_string(config.load_latency), 8)
              << pad_left(std::to_string(config.mul_latency), 9)
              << pad_left(std::to_string(config.mul_enqueue), 9)
              << pad_left(compact_double(initial.mean(), 4), 10)
              << pad_left(compact_double(final_nops.mean(), 3), 8)
              << pad_left(compact_double(hidden, 4), 10)
              << pad_left(compact_double(completed.mean(), 4), 12) << "\n";
    csv.row_of(config.load_latency, config.mul_latency, config.mul_enqueue,
               initial.mean(), final_nops.mean(), hidden, completed.mean());
  }
  std::cout << "\nCSV written to latency_sweep.csv\n";
  return 0;
}
