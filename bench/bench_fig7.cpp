// Figure 7 reproduction: percentage of runs that found provably optimal
// schedules (search not curtailed by lambda) vs. block size.
//
// Paper shape: essentially 100% for blocks under ~20 instructions,
// declining for the largest blocks at a fixed curtail point.
#include <iostream>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Percentage of Optimal Runs Vs. Block Size", "Figure 7");

  const int runs = bench::corpus_runs();
  const std::vector<RunRecord> records =
      bench::run_paper_corpus(runs, bench::paper_run_options());

  GroupedStats optimal_pct;
  for (const RunRecord& r : records) {
    if (r.block_size == 0) continue;
    optimal_pct.add(r.block_size, r.completed ? 100.0 : 0.0);
  }

  ChartOptions chart;
  chart.title = "% runs provably optimal vs block size";
  chart.x_label = "instructions per block";
  chart.y_label = "% optimal";
  std::cout << render_line(optimal_pct, chart) << "\n";

  CsvWriter csv("fig7.csv");
  csv.row({"block_size", "runs", "percent_optimal"});
  std::cout << pad_left("n", 5) << pad_left("runs", 8)
            << pad_left("% optimal", 12) << "\n";
  for (const auto& [size, acc] : optimal_pct.groups()) {
    csv.row_of(size, acc.count(), acc.mean());
    if (size % 4 == 0) {
      std::cout << pad_left(std::to_string(size), 5)
                << pad_left(std::to_string(acc.count()), 8)
                << pad_left(compact_double(acc.mean(), 4), 12) << "\n";
    }
  }
  std::cout << "CSV written to fig7.csv\n";
  return 0;
}
