// Portfolio racing benchmark: the same corpus scheduled three times —
// branch-and-bound alone, CP/DP alone, and the two raced per block — on
// the Tables 4-5 machine (extension beyond the paper).
//
// Protocol: every backend sees the identical generated corpus and the
// identical lambda budget, so the three runs are directly comparable.
// Correctness is asserted inline, corpus-wide: whenever both exact
// backends complete a block they must report the same optimum (or agree
// the block is infeasible), and a completed portfolio run must match the
// completed single-backend answer — the same cross-solver oracle the
// differential test suite enforces, here at corpus scale on every bench
// run. The table reports each backend's completion rate, search size and
// wall time, plus the portfolio's win split (which racer finished first;
// timing-dependent, so reported rather than asserted).
//
// Workload knobs: PS_CORPUS_RUNS (default 4,000 here — three corpus
// sweeps), PS_LAMBDA, PS_DEADLINE as for the other corpus benches.
//
// Artifacts: portfolio_race.csv (per-backend aggregate rows) and
// BENCH_corpus_portfolio.json — the portfolio run's roll-up in the same
// shape as BENCH_corpus.json, gated in CI by bench_diff like the
// single-backend baseline.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace pipesched;

struct BackendRun {
  const char* name;
  OptimalBackend backend;
  std::vector<RunRecord> records;
  CorpusSummary summary;
  double wall_seconds = 0;
};

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Portfolio Racing: B&B vs CP/DP",
                "two exact backends per block; extension beyond the paper");

  const int runs = bench::corpus_runs(4000);
  const CorpusRunOptions base = bench::paper_run_options();
  std::cout << "corpus: " << runs << " blocks, machine "
            << base.machine.name() << ", curtail point lambda = "
            << base.search.curtail_lambda << "\n\n";

  BackendRun sweeps[] = {
      {"bnb", OptimalBackend::Bnb, {}, {}, 0},
      {"cp", OptimalBackend::Cp, {}, {}, 0},
      {"portfolio", OptimalBackend::Portfolio, {}, {}, 0},
  };
  for (BackendRun& sweep : sweeps) {
    CorpusRunOptions options = base;
    options.search.backend = sweep.backend;
    Timer wall;
    sweep.records = bench::run_paper_corpus(runs, options);
    sweep.wall_seconds = wall.seconds();
    sweep.summary = summarize_corpus(sweep.records);
  }
  const BackendRun& bnb = sweeps[0];
  const BackendRun& cp = sweeps[1];
  const BackendRun& race = sweeps[2];

  // Cross-solver oracle over the whole corpus: completed runs claim
  // optimality, so completed answers must agree block by block.
  std::size_t cross_checked = 0;
  for (int i = 0; i < runs; ++i) {
    const RunRecord& b = bnb.records[static_cast<std::size_t>(i)];
    const RunRecord& c = cp.records[static_cast<std::size_t>(i)];
    const RunRecord& p = race.records[static_cast<std::size_t>(i)];
    if (!b.error.empty() || !c.error.empty() || !p.error.empty()) continue;
    if (b.completed && c.completed) {
      PS_CHECK(b.feasible == c.feasible && b.final_nops == c.final_nops,
               "backends disagree on block " << i << ": bnb "
                                             << b.final_nops << ", cp "
                                             << c.final_nops);
      ++cross_checked;
    }
    const RunRecord* solo = b.completed ? &b : c.completed ? &c : nullptr;
    if (p.completed && solo != nullptr) {
      PS_CHECK(p.feasible == solo->feasible &&
                   p.final_nops == solo->final_nops,
               "portfolio diverged on block " << i << ": portfolio "
                                              << p.final_nops << ", solo "
                                              << solo->final_nops);
    }
  }

  std::size_t wins_bnb = 0, wins_cp = 0;
  for (const RunRecord& r : race.records) {
    if (r.portfolio_winner == PortfolioWinner::Bnb) ++wins_bnb;
    if (r.portfolio_winner == PortfolioWinner::Cp) ++wins_cp;
  }

  std::cout << pad_left("backend", 11) << pad_left("completed", 11)
            << pad_left("rate", 9) << pad_left("avg omega", 12)
            << pad_left("avg time", 11) << pad_left("corpus wall", 13)
            << "\n";
  CsvWriter csv("portfolio_race.csv");
  csv.row({"backend", "blocks", "completed", "completed_percent",
           "avg_omega_completed", "avg_seconds", "corpus_wall_seconds",
           "wins_bnb", "wins_cp"});
  for (const BackendRun& sweep : sweeps) {
    const CorpusSummary::Column& done = sweep.summary.completed;
    std::cout << pad_left(sweep.name, 11)
              << pad_left(std::to_string(done.runs), 11)
              << pad_left(compact_double(done.percent, 4) + "%", 9)
              << pad_left(compact_double(done.avg_omega_calls, 6), 12)
              << pad_left(compact_double(sweep.summary.total.avg_seconds * 1e6,
                                         4) + "us",
                          11)
              << pad_left(compact_double(sweep.wall_seconds, 3) + "s", 13)
              << "\n";
    const bool is_race = sweep.backend == OptimalBackend::Portfolio;
    csv.row({sweep.name, std::to_string(runs), std::to_string(done.runs),
             compact_double(done.percent, 6),
             compact_double(done.avg_omega_calls, 8),
             compact_double(sweep.summary.total.avg_seconds, 8),
             compact_double(sweep.wall_seconds, 6),
             std::to_string(is_race ? wins_bnb : 0),
             std::to_string(is_race ? wins_cp : 0)});
  }

  std::cout << "\nportfolio win split: bnb " << wins_bnb << ", cp " << wins_cp
            << " (first finisher; timing-dependent)\n"
            << "cross-checked optima on " << cross_checked
            << " blocks completed by both backends\n";

  CorpusBenchMeta meta;
  meta.machine = base.machine.name();
  meta.backend = "portfolio";
  meta.curtail_lambda = base.search.curtail_lambda;
  meta.deadline_seconds = base.search.deadline_seconds;
  meta.total_wall_seconds = race.wall_seconds;
  write_corpus_bench_json(race.summary, race.records, meta,
                          "BENCH_corpus_portfolio.json");
  std::cout << "CSV written to portfolio_race.csv; roll-up in "
               "BENCH_corpus_portfolio.json\n";
  return 0;
}
