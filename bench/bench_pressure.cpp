// Register-file size sweep (Section 3.1's spill discipline +
// pressure-constrained scheduling): NOPs and spill counts as the file
// shrinks. The classic scheduling/allocation tension, quantified with
// *optimal* schedules at every point.
#include <iostream>

#include "bench_common.hpp"
#include "core/compiler.hpp"
#include "regalloc/spill.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Schedule Quality Vs. Register File Size",
                "Section 3.1 extension");

  const int runs = bench::corpus_runs(1500);
  CorpusSpec spec;
  spec.total_runs = runs;
  const auto params = corpus_params(spec);
  const Machine machine = Machine::risc_classic();

  struct Row {
    int registers;
    Accumulator nops;
    Accumulator spills;
    Accumulator infeasible;
  };
  std::vector<Row> rows;
  for (int registers : {32, 10, 8, 6, 5, 4, 3}) {
    rows.push_back({registers, {}, {}, {}});
  }
  Accumulator maxlive;

  for (const GeneratorParams& p : params) {
    const BasicBlock block = generate_block(p);
    if (block.empty()) continue;
    maxlive.add(block_max_live(block));
    for (Row& row : rows) {
      CompileOptions options;
      options.machine = machine;
      options.registers = row.registers;
      options.search.curtail_lambda = 20000;
      options.search.lower_bound_prune = true;
      const RegisterLimitedResult result =
          compile_with_register_limit(block, options);
      row.nops.add(result.compiled.schedule.total_nops());
      row.spills.add(result.values_spilled);
      row.infeasible.add(result.scheduler_feasible ? 0 : 100);
    }
  }

  std::cout << rows.front().nops.count() << " blocks, mean MAXLIVE "
            << compact_double(maxlive.mean(), 3) << "\n\n";
  CsvWriter csv("pressure.csv");
  csv.row({"registers", "avg_final_nops", "avg_spilled_values",
           "pct_fallback"});
  std::cout << pad_left("registers", 10) << pad_left("avg NOPs", 11)
            << pad_left("avg spills", 12) << pad_left("% fallback", 12)
            << "\n";
  for (const Row& row : rows) {
    std::cout << pad_left(std::to_string(row.registers), 10)
              << pad_left(compact_double(row.nops.mean(), 4), 11)
              << pad_left(compact_double(row.spills.mean(), 3), 12)
              << pad_left(compact_double(row.infeasible.mean(), 3), 12)
              << "\n";
    csv.row_of(row.registers, row.nops.mean(), row.spills.mean(),
               row.infeasible.mean());
  }
  std::cout << "\nCSV written to pressure.csv\n";
  return 0;
}
