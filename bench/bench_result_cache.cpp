// Persistent result cache: cold vs warm corpus runs.
//
// Workload: a duplicated synthetic corpus (PS_CORPUS_RUNS/5 distinct
// blocks x 5 copies), scheduled three times:
//   no cache - the baseline every copy pays the full search for;
//   cold     - the cache file starts empty; every distinct block searches
//              once and stores its proven-optimal schedule, later copies
//              may already hit within the run;
//   warm     - a second full run over the same corpus and the same file;
//              every completed-and-stored block must now be served from
//              the cache without searching (curtailed blocks are never
//              stored, so they re-search — that is the soundness policy,
//              not a bug).
//
// The bench asserts the cached runs return exactly the optima the fresh
// run found (per-block final_nops equality), prints the warm hit rate and
// the cold/warm speedup, and writes the warm roll-up to
// BENCH_corpus_cache.json — every field of which is deterministic except
// wall time, so bench_diff can gate it like BENCH_corpus.json.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Persistent Result Cache: Cold vs Warm Corpus Runs",
                "the Table 7 protocol, re-run");

  constexpr int kCopies = 5;
  const int unique_runs = std::max(1, bench::corpus_runs() / kCopies);
  const char* cache_path = "bench_result_cache.pscache";
  std::remove(cache_path);  // the first run must be genuinely cold

  CorpusRunOptions options = bench::paper_run_options();
  options.search.result_cache_path = cache_path;

  CorpusSpec spec;
  spec.total_runs = unique_runs;
  std::vector<GeneratorParams> params =
      duplicated_corpus_params(spec, kCopies);
  // Bias toward the corpus's larger blocks: re-searching a 5-instruction
  // block costs about as much as generating it, so small blocks measure
  // the generator, not the cache. The cache's target regime is blocks
  // whose searches are expensive enough to be worth memoizing.
  for (GeneratorParams& p : params) p.statements += 16;
  std::cout << "corpus: " << unique_runs << " distinct blocks x " << kCopies
            << " copies = " << params.size() << " runs, machine "
            << options.machine.name() << ", cache file " << cache_path
            << "\n\n";

  // Baseline: the same duplicated corpus with no cache at all — every
  // copy pays the full search. This is the run the cache exists to avoid.
  CorpusRunOptions nocache_options = options;
  nocache_options.search.result_cache_path.clear();
  Timer nocache_wall;
  const std::vector<RunRecord> nocache = run_corpus(params, nocache_options);
  const double nocache_seconds = nocache_wall.seconds();

  Timer cold_wall;
  const std::vector<RunRecord> cold = run_corpus(params, options);
  const double cold_seconds = cold_wall.seconds();

  Timer warm_wall;
  const std::vector<RunRecord> warm = run_corpus(params, options);
  const double warm_seconds = warm_wall.seconds();

  // Soundness sweep: a cache hit must reproduce the fresh run's optimum
  // bit-for-bit. Any disagreement is a cache bug.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cold.size(); ++i) {
    if (!nocache[i].error.empty() || !cold[i].error.empty() ||
        !warm[i].error.empty()) {
      continue;
    }
    if (cold[i].final_nops != nocache[i].final_nops ||
        warm[i].final_nops != nocache[i].final_nops) {
      ++mismatches;
      std::cerr << "MISMATCH block " << i << ": fresh final NOPs "
                << nocache[i].final_nops << ", cold " << cold[i].final_nops
                << ", warm " << warm[i].final_nops << "\n";
    }
  }

  // Wall time covers the whole harness (generate + optimize + DAG build
  // + schedule); the cache can only remove the scheduling share, so the
  // headline speedup is measured on the summed per-block scheduling
  // seconds (a cache hit's "scheduling" is just the verified lookup).
  const auto scheduling_seconds = [](const std::vector<RunRecord>& rs) {
    double total = 0;
    for (const RunRecord& r : rs) {
      if (r.error.empty()) total += r.seconds;
    }
    return total;
  };
  const double nocache_sched = scheduling_seconds(nocache);
  const double cold_sched = scheduling_seconds(cold);
  const double warm_sched = scheduling_seconds(warm);

  const CorpusSummary nocache_summary = summarize_corpus(nocache);
  const CorpusSummary cold_summary = summarize_corpus(cold);
  const CorpusSummary warm_summary = summarize_corpus(warm);
  auto report = [&](const char* name, const CorpusSummary& s, double wall,
                    double sched) {
    std::cout << "[" << name << "]\n"
              << "  wall time: " << compact_double(wall, 3) << "s ("
              << compact_double(static_cast<double>(params.size()) / wall, 4)
              << " blocks/second), scheduling time "
              << compact_double(sched * 1e3, 4) << "ms\n"
              << "  result cache hits: " << s.total.result_cache_hits << "/"
              << s.total.runs << " ("
              << compact_double(s.total.result_cache_hit_percent, 4)
              << "%)\n";
  };
  report("no cache", nocache_summary, nocache_seconds, nocache_sched);
  report("cold", cold_summary, cold_seconds, cold_sched);
  report("warm", warm_summary, warm_seconds, warm_sched);
  std::cout << "  scheduling speedup (no-cache / warm): "
            << compact_double(nocache_sched / warm_sched, 3) << "x\n"
            << "  scheduling speedup (cold / warm): "
            << compact_double(cold_sched / warm_sched, 3) << "x\n"
            << "  wall speedup (no-cache / warm): "
            << compact_double(nocache_seconds / warm_seconds, 3) << "x\n"
            << "  optimum mismatches vs fresh: " << mismatches << "\n\n";

  CsvWriter csv("result_cache.csv");
  csv.row({"variant", "wall_seconds", "scheduling_seconds", "blocks",
           "result_cache_hits", "hit_percent"});
  csv.row_of("nocache", nocache_seconds, nocache_sched,
             nocache_summary.total.runs,
             nocache_summary.total.result_cache_hits,
             nocache_summary.total.result_cache_hit_percent);
  csv.row_of("cold", cold_seconds, cold_sched, cold_summary.total.runs,
             cold_summary.total.result_cache_hits,
             cold_summary.total.result_cache_hit_percent);
  csv.row_of("warm", warm_seconds, warm_sched, warm_summary.total.runs,
             warm_summary.total.result_cache_hits,
             warm_summary.total.result_cache_hit_percent);

  CorpusBenchMeta meta;
  meta.machine = options.machine.name();
  meta.curtail_lambda = options.search.curtail_lambda;
  meta.deadline_seconds = options.search.deadline_seconds;
  meta.total_wall_seconds = warm_seconds;
  write_corpus_bench_json(warm_summary, warm, meta,
                          "BENCH_corpus_cache.json");
  std::cout << "CSV written to result_cache.csv; warm roll-up in "
               "BENCH_corpus_cache.json\n";
  return mismatches == 0 ? 0 : 1;
}
