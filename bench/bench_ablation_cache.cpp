// Ablation of the state-dominance (transposition) cache.
//
// For representative generated blocks at the paper's Table-1 row sizes,
// the branch-and-bound search runs to exhaustion twice — cache off, cache
// on — and we report nodes expanded, placements (omega calls), wall time,
// and the cache's own traffic. Soundness is asserted inline: both runs
// must report the identical optimal NOP count. The interesting output is
// the node-reduction column: every cache hit prunes a whole subtree the
// uncached search re-explores.
//
// Blocks per size default to 4 (PS_CACHE_BLOCKS overrides); selection
// follows bench_table1's protocol — candidate blocks are probed with the
// cache OFF so that both measured runs provably complete.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace {

using namespace pipesched;

int blocks_per_size(int fallback = 4) {
  if (const char* env = std::getenv("PS_CACHE_BLOCKS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Generated blocks with exactly `size` instructions whose uncached
/// search completes within a 10M-placement budget (Table 1's protocol).
std::vector<BasicBlock> find_blocks_of_size(const Machine& machine,
                                            std::size_t size, int count) {
  std::vector<BasicBlock> blocks;
  for (std::uint64_t seed = 1; seed < 50000 && static_cast<int>(blocks.size()) < count;
       ++seed) {
    GeneratorParams params;
    params.statements = static_cast<int>(size) / 2 + 1;
    params.variables = 4 + static_cast<int>(seed % 3);
    params.constants = 2;
    params.seed = seed;
    BasicBlock block = generate_block(params);
    if (block.size() != size) continue;
    SearchConfig probe;
    probe.curtail_lambda = 10'000'000;
    probe.dominance_cache = false;
    const DepGraph dag(block);
    if (!optimal_schedule(machine, dag, probe).stats.completed) continue;
    blocks.push_back(std::move(block));
  }
  return blocks;
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("State-Dominance Cache Ablation",
                "the Table-1 search sizes; cache extension");

  const Machine machine = Machine::paper_simulation();
  const int per_size = blocks_per_size();
  const std::size_t sizes[] = {8, 11, 13, 14, 16, 20, 21, 22};

  CsvWriter csv("ablation_cache.csv");
  csv.row({"instructions", "blocks", "nodes_off", "nodes_on",
           "node_reduction_pct", "omega_off", "omega_on", "cache_probes",
           "cache_hits", "cache_evictions", "secs_off", "secs_on",
           "total_nops"});

  std::cout << pad_left("n", 4) << pad_left("blocks", 8)
            << pad_left("nodes off", 14) << pad_left("nodes on", 14)
            << pad_left("reduction", 11) << pad_left("hit rate", 10)
            << pad_left("time off", 11) << pad_left("time on", 11) << "\n";

  for (const std::size_t size : sizes) {
    const auto blocks = find_blocks_of_size(machine, size, per_size);
    if (blocks.empty()) {
      std::cout << pad_left(std::to_string(size), 4)
                << "  (no completing block found)\n";
      continue;
    }

    std::uint64_t nodes_off = 0, nodes_on = 0;
    std::uint64_t omega_off = 0, omega_on = 0;
    std::uint64_t probes = 0, hits = 0, evictions = 0;
    double secs_off = 0, secs_on = 0;
    int total_nops = 0;

    for (const BasicBlock& block : blocks) {
      const DepGraph dag(block);
      SearchConfig off;
      off.curtail_lambda = 0;  // to exhaustion: provably optimal
      off.dominance_cache = false;
      SearchConfig on = off;
      on.dominance_cache = true;

      const OptimalResult r_off = optimal_schedule(machine, dag, off);
      const OptimalResult r_on = optimal_schedule(machine, dag, on);
      PS_CHECK(r_off.stats.completed && r_on.stats.completed,
               "ablation block did not complete");
      PS_CHECK(r_off.best.total_nops() == r_on.best.total_nops(),
               "dominance cache changed the optimum on a size-"
                   << size << " block: " << r_off.best.total_nops()
                   << " vs " << r_on.best.total_nops());

      nodes_off += r_off.stats.nodes_expanded;
      nodes_on += r_on.stats.nodes_expanded;
      omega_off += r_off.stats.omega_calls;
      omega_on += r_on.stats.omega_calls;
      probes += r_on.stats.cache_probes;
      hits += r_on.stats.cache_hits;
      evictions += r_on.stats.cache_evictions;
      secs_off += r_off.stats.seconds;
      secs_on += r_on.stats.seconds;
      total_nops += r_on.best.total_nops();
    }

    const double reduction =
        nodes_off ? 100.0 * (1.0 - static_cast<double>(nodes_on) /
                                       static_cast<double>(nodes_off))
                  : 0.0;
    const double hit_rate =
        probes ? 100.0 * static_cast<double>(hits) /
                     static_cast<double>(probes)
               : 0.0;

    std::cout << pad_left(std::to_string(size), 4)
              << pad_left(std::to_string(blocks.size()), 8)
              << pad_left(with_commas(nodes_off), 14)
              << pad_left(with_commas(nodes_on), 14)
              << pad_left(compact_double(reduction, 4) + "%", 11)
              << pad_left(compact_double(hit_rate, 4) + "%", 10)
              << pad_left(compact_double(secs_off * 1e3, 4) + "ms", 11)
              << pad_left(compact_double(secs_on * 1e3, 4) + "ms", 11)
              << "\n";
    csv.row_of(size, blocks.size(), nodes_off, nodes_on, reduction,
               omega_off, omega_on, probes, hits, evictions, secs_off,
               secs_on, total_nops);
  }
  std::cout << "\nCSV written to ablation_cache.csv\n";
  return 0;
}
