// Block-boundary handling ablation (paper footnote 1): Drain vs. Chain
// initial conditions over control-flow programs.
//
// Workload: synthetic programs of straight-line segments split by `if`
// arms (generated source statements wrapped in conditionals). Chain mode
// may cost NOPs on chainable blocks — those NOPs were real all along; the
// drained analysis simply under-counted them. We report total NOPs under
// both analyses and how many blocks chained.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/program_compiler.hpp"
#include "synth/generator.hpp"
#include "util/stats.hpp"

namespace {

using namespace pipesched;

/// Synthetic control-flow source: straight-line chunks from the Section
/// 5.2 generator, interleaved with if/else arms built from further chunks.
std::string synth_cfg_source(std::uint64_t seed) {
  const auto chunk = [&](int statements, std::uint64_t sub) {
    GeneratorParams params;
    params.statements = statements;
    params.variables = 6;
    params.constants = 3;
    params.seed = seed * 97 + sub;
    return generate_source(params).to_string();
  };
  std::ostringstream oss;
  oss << chunk(6, 1);
  oss << "if (v0) {\n" << chunk(5, 2) << "} else {\n" << chunk(5, 3) << "}\n";
  oss << chunk(6, 4);
  oss << "if (v1) {\n" << chunk(4, 5) << "}\n";
  oss << chunk(5, 6);
  return oss.str();
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Block-Boundary Initial Conditions: Drain Vs. Chain",
                "footnote 1");

  const int runs = bench::corpus_runs(400);
  CsvWriter csv("boundary.csv");
  csv.row({"machine", "avg_drain_nops", "avg_chain_nops",
           "pct_programs_affected", "avg_chainable_blocks"});

  // Boundary residue only matters when enqueue windows are long enough to
  // straddle a block cut, so sweep pipeline structures.
  for (const std::string& name :
       {std::string("paper-simulation"), std::string("unpipelined-units"),
        std::string("risc-classic")}) {
    const Machine machine = Machine::preset(name);
    Accumulator drain_nops;
    Accumulator chain_nops;
    Accumulator affected;
    Accumulator chained_blocks;

    for (int i = 0; i < runs; ++i) {
      const std::string source =
          synth_cfg_source(static_cast<std::uint64_t>(i) + 1);
      ProgramCompileOptions drain;
      drain.block.machine = machine;
      drain.block.search.curtail_lambda = 20000;
      ProgramCompileOptions chain = drain;
      chain.boundary = BoundaryMode::Chain;

      const ProgramCompileResult a = compile_program_source(source, drain);
      const ProgramCompileResult b = compile_program_source(source, chain);
      drain_nops.add(a.total_nops);
      chain_nops.add(b.total_nops);
      affected.add(a.total_nops != b.total_nops ? 100 : 0);
      int chained = 0;
      for (const CompiledBlock& cb : b.blocks) chained += cb.chained;
      chained_blocks.add(chained);
    }

    std::cout << pad_right(machine.name(), 20) << " drain "
              << pad_left(compact_double(drain_nops.mean(), 4), 8)
              << "  chain "
              << pad_left(compact_double(chain_nops.mean(), 4), 8)
              << "  programs affected "
              << pad_left(compact_double(affected.mean(), 3) + "%", 8)
              << "  chainable blocks/program "
              << compact_double(chained_blocks.mean(), 3) << "\n";
    csv.row_of(machine.name(), drain_nops.mean(), chain_nops.mean(),
               affected.mean(), chained_blocks.mean());
  }

  std::cout
      << "\nchain > drain would be delay the drained analysis fails to\n"
         "account for at fall-through boundaries. The measured result is a\n"
         "NEGATIVE one, and provably so for this compilation model: every\n"
         "generated block ends with Store instructions that wait out their\n"
         "producers' full latency, so at block exit each unit's last issue\n"
         "is at least `latency` cycles old; with enqueue <= latency on\n"
         "every machine here, all units are free again by the successor's\n"
         "first slot — store-terminated blocks SELF-DRAIN, and footnote\n"
         "1's initial-condition adjustment only matters for machines with\n"
         "enqueue > latency or for cross-block register communication\n"
         "(beyond the paper's memory-communication model). The hand-built\n"
         "non-store-terminated case in test_program.cpp shows the\n"
         "mechanism binding.\n"
      << "CSV written to boundary.csv\n";
  return 0;
}
