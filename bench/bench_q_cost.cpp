// Section 2.3 micro-benchmarks (google-benchmark): the cost of one
// application of the schedule-evaluation procedure "Q", the incremental
// placement step, and whole-block scheduling.
//
// 1990 anchors: one Q application took ~0.12ms (Gould NP1) / ~0.3ms
// (Sun 3/50); 15! applications would have taken ~5 years. The proposed
// pruning scheduled the same 15-instruction block in ~0.01s.
#include <benchmark/benchmark.h>

#include "ir/dag.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/generator.hpp"

namespace {

using namespace pipesched;

/// A deterministic ~15-instruction block (the paper's "typical block").
BasicBlock typical_block(std::uint64_t seed = 4) {
  for (std::uint64_t s = seed; s < seed + 5000; ++s) {
    GeneratorParams params;
    params.statements = 8;
    params.variables = 5;
    params.constants = 2;
    params.seed = s;
    BasicBlock block = generate_block(params);
    if (block.size() == 15) return block;
  }
  throw Error("no 15-instruction block found");
}

void BM_Q_FullEvaluation(benchmark::State& state) {
  const BasicBlock block = typical_block();
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  const std::vector<TupleIndex> order = list_schedule_order(dag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_order(machine, dag, order));
  }
  state.SetLabel("one Q application; paper: ~120-300us in 1990");
}
BENCHMARK(BM_Q_FullEvaluation);

void BM_IncrementalPlacement(benchmark::State& state) {
  const BasicBlock block = typical_block();
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  const std::vector<TupleIndex> order = list_schedule_order(dag);
  PipelineTimer timer(machine, dag);
  for (TupleIndex t : order) timer.push(t);
  timer.pop();
  const TupleIndex last = order.back();
  for (auto _ : state) {
    timer.push(last);
    timer.pop();
  }
  state.SetLabel("one push/pop at full depth");
}
BENCHMARK(BM_IncrementalPlacement);

void BM_DagConstruction(benchmark::State& state) {
  const BasicBlock block = typical_block();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DepGraph(block));
  }
}
BENCHMARK(BM_DagConstruction);

void BM_ListSchedule(benchmark::State& state) {
  const BasicBlock block = typical_block();
  const DepGraph dag(block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule_order(dag));
  }
}
BENCHMARK(BM_ListSchedule);

void BM_GreedySchedule(benchmark::State& state) {
  const BasicBlock block = typical_block();
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_schedule(machine, dag));
  }
}
BENCHMARK(BM_GreedySchedule);

void BM_OptimalSchedule_TypicalBlock(benchmark::State& state) {
  const BasicBlock block = typical_block();
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 0;  // to exhaustion
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(machine, dag, config));
  }
  state.SetLabel("provably optimal, 15-instr block; paper: ~0.01s in 1990");
}
BENCHMARK(BM_OptimalSchedule_TypicalBlock);

void BM_OptimalSchedule_BySize(benchmark::State& state) {
  // Sweep block size; the per-block cost growth mirrors Figure 6.
  const auto target = static_cast<std::size_t>(state.range(0));
  GeneratorParams params;
  params.statements = static_cast<int>(target) / 2 + 1;
  params.variables = 5;
  params.constants = 2;
  BasicBlock block;
  for (params.seed = 1;; ++params.seed) {
    block = generate_block(params);
    if (block.size() == target) break;
    if (params.seed > 20000) {
      state.SkipWithError("no block of requested size");
      return;
    }
  }
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  SearchConfig config;
  config.curtail_lambda = 50000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(machine, dag, config));
  }
}
BENCHMARK(BM_OptimalSchedule_BySize)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(24);

void BM_ExhaustiveSchedule_TenInstructions(benchmark::State& state) {
  GeneratorParams params;
  params.statements = 5;
  params.variables = 4;
  params.constants = 2;
  BasicBlock block;
  for (params.seed = 1;; ++params.seed) {
    block = generate_block(params);
    if (block.size() == 10) break;
  }
  const Machine machine = Machine::paper_simulation();
  const DepGraph dag(block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exhaustive_schedule(machine, dag));
  }
  state.SetLabel("all legal orders of a 10-instr block");
}
BENCHMARK(BM_ExhaustiveSchedule_TenInstructions);

}  // namespace

BENCHMARK_MAIN();
