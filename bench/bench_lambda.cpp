// Section 5.3 convergence experiment: for blocks whose search the curtail
// point truncates, raising lambda by 10x and 50x "did not cause the search
// to run to completion... however, neither did the best schedule change".
//
// We find the truncated blocks at the baseline lambda, re-run each at
// 10x and 50x, and report how many improved and by how much.
#include <iostream>

#include "bench_common.hpp"
#include "ir/dag.hpp"
#include "sched/optimal_scheduler.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Curtailed-Search Convergence (lambda x10, x50)",
                "Section 5.3");

  const int runs = bench::corpus_runs(4000);
  constexpr std::uint64_t kBaseLambda = 20000;
  CorpusSpec spec;
  spec.total_runs = runs;
  const auto params = corpus_params(spec);

  CorpusRunOptions base = bench::paper_run_options(kBaseLambda);
  const auto records = run_corpus(params, base);

  std::vector<std::size_t> truncated;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].completed) truncated.push_back(i);
  }
  std::cout << "corpus: " << runs << " blocks at lambda = " << kBaseLambda
            << "; truncated searches: " << truncated.size() << "\n\n";

  CsvWriter csv("lambda.csv");
  csv.row({"block_index", "block_size", "nops_base", "nops_x10", "nops_x50",
           "completed_x50"});

  int improved_x10 = 0;
  int improved_x50 = 0;
  int completed_x50 = 0;
  Accumulator improvement;
  for (std::size_t index : truncated) {
    const BasicBlock block = generate_block(params[index]);
    const DepGraph dag(block);

    auto run_at = [&](std::uint64_t lambda) {
      SearchConfig config = base.search;
      config.curtail_lambda = lambda;
      return optimal_schedule(base.machine, dag, config);
    };
    const int nops_base = records[index].final_nops;
    const OptimalResult x10 = run_at(kBaseLambda * 10);
    const OptimalResult x50 = run_at(kBaseLambda * 50);
    improved_x10 += x10.stats.best_nops < nops_base;
    improved_x50 += x50.stats.best_nops < nops_base;
    completed_x50 += x50.stats.completed;
    improvement.add(nops_base - x50.stats.best_nops);
    csv.row_of(index, records[index].block_size, nops_base,
               x10.stats.best_nops, x50.stats.best_nops,
               x50.stats.completed ? 1 : 0);
  }

  if (truncated.empty()) {
    std::cout << "every search completed at the baseline lambda; nothing to "
                 "re-run (increase corpus size or lower lambda)\n";
  } else {
    std::cout << "of " << truncated.size() << " truncated searches:\n"
              << "  improved by lambda x10: " << improved_x10 << "\n"
              << "  improved by lambda x50: " << improved_x50 << "\n"
              << "  ran to completion at x50: " << completed_x50 << "\n"
              << "  mean NOP improvement at x50: "
              << compact_double(improvement.mean(), 3)
              << " (paper: best schedule generally unchanged)\n";
  }
  std::cout << "CSV written to lambda.csv\n";
  return 0;
}
