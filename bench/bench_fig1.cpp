// Figure 1 reproduction: schedules searched vs. block size for the runs
// that completed (terminated on condition [1], provably optimal).
//
// The paper plots one point per completed run on a log axis; the spread
// grows with block size but stays far below the factorial envelope.
#include <iostream>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Schedules Searched Vs. Block Size (Completed Runs)",
                "Figure 1");

  const int runs = bench::corpus_runs();
  const std::vector<RunRecord> records =
      bench::run_paper_corpus(runs, bench::paper_run_options());

  std::vector<ChartPoint> points;
  GroupedStats by_size;
  std::size_t completed = 0;
  CsvWriter csv("fig1.csv");
  csv.row({"block_size", "omega_calls"});
  for (const RunRecord& r : records) {
    if (!r.completed || r.block_size == 0) continue;
    ++completed;
    points.push_back({static_cast<double>(r.block_size),
                      static_cast<double>(r.omega_calls)});
    by_size.add(r.block_size, static_cast<double>(r.omega_calls));
    csv.row_of(r.block_size, r.omega_calls);
  }

  ChartOptions options;
  options.title = "placements examined (log) vs block size, " +
                  std::to_string(completed) + " complete runs";
  options.x_label = "instructions per block";
  options.y_label = "omega calls";
  options.log_y = true;
  std::cout << render_scatter(points, options) << "\n";

  std::cout << "mean omega calls by block size (sample):\n";
  int shown = 0;
  for (const auto& [size, acc] : by_size.groups()) {
    if (size % 5 != 0) continue;
    std::cout << "  n=" << size << ": mean "
              << compact_double(acc.mean(), 4) << ", max "
              << compact_double(acc.max(), 4) << " (" << acc.count()
              << " runs)\n";
    if (++shown >= 10) break;
  }
  std::cout << "CSV written to fig1.csv\n";
  return 0;
}
