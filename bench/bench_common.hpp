// Shared plumbing for the table/figure reproduction binaries.
//
// Every bench prints the paper-style table or ASCII figure to stdout and
// mirrors the raw series into a CSV file next to the working directory.
// Workload sizes default to the paper's (16,000 corpus blocks) and can be
// overridden through the PS_CORPUS_RUNS environment variable for quick
// smoke runs.
// Observability knobs (shared by every figure/table bench):
//   PS_TRACE=<path>    record a structured trace of each corpus run and
//                      write Chrome trace-event JSON to <path> (the file
//                      covers the most recent run);
//   PS_METRICS=<path>  enable the metrics registry for the corpus run and
//                      export the final snapshot to <path> (.prom/.txt =
//                      Prometheus text exposition, .json = JSON);
//   PS_PROGRESS=1      live corpus progress on stderr;
//   PS_RESULT_CACHE=<path>  persistent cross-run result cache file for the
//                      optimal searches (see cache/result_cache.hpp) — the
//                      warm-run CI lane points two successive corpus runs
//                      at one file and asserts the second mostly hits;
//   PS_PROFILE=<path>  sample every thread's phase stack during the corpus
//                      run and write collapsed-stack lines to <path>
//                      (flamegraph.pl/speedscope input; a phase-share
//                      table is printed to stderr as well);
//   PS_WATCHDOG=<seconds>  arm the stall watchdog: a search with no
//                      heartbeat progress for that long dumps its flight
//                      recorder to stderr (and <PS_PROFILE>.stall.json
//                      when PS_PROFILE is also set);
//   PS_BACKEND=<bnb|cp|portfolio>  optimal-search backend for the corpus
//                      run (default bnb);
//   PS_SERVE=<port>    serve live observability endpoints (/metrics,
//                      /healthz, /status, /profile?seconds=N, ...) on
//                      127.0.0.1:<port> for the bench's whole lifetime;
//                      0 picks an ephemeral port — the bound URL is
//                      printed to stderr either way.
// Every bench also handles SIGINT/SIGTERM gracefully: the PS_TRACE /
// PS_METRICS / PS_PROFILE outputs are flushed (and the server stopped)
// before the process exits with 128+signo.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/corpus_runner.hpp"
#include "obs/http_exporter.hpp"
#include "sched/scheduler.hpp"
#include "synth/corpus.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/interrupt.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/progress.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace pipesched::bench {

/// Corpus size: paper default 16,000, overridable via PS_CORPUS_RUNS.
inline int corpus_runs(int fallback = 16000) {
  if (const char* env = std::getenv("PS_CORPUS_RUNS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// The paper's experiment configuration: Tables 4-5 machine, curtail point
/// "large relative to the number searched for an average block" (the
/// average completed search needs a few hundred placements). Overridable
/// via PS_LAMBDA for calibration runs; PS_DEADLINE (seconds, fractional
/// allowed) adds a wall-clock budget per search on top of lambda.
inline CorpusRunOptions paper_run_options(std::uint64_t lambda = 50000) {
  if (const char* env = std::getenv("PS_LAMBDA")) {
    const long long parsed = std::atoll(env);
    if (parsed >= 0) lambda = static_cast<std::uint64_t>(parsed);
  }
  CorpusRunOptions options;
  options.machine = Machine::paper_simulation();
  options.search.curtail_lambda = lambda;
  if (const char* env = std::getenv("PS_DEADLINE")) {
    const double parsed = std::atof(env);
    if (parsed > 0) options.search.deadline_seconds = parsed;
  }
  // The paper reports using "a number of other heuristics" beyond the
  // rules Section 4.2.3 enumerates; the optimality-preserving critical-
  // path lower bound (verified against exhaustive search in the test
  // suite) is our stand-in, and reproduces the paper's completion rate
  // and search sizes almost exactly (98.5% vs 98.83%, mean ~520 vs 427
  // placements per completed block).
  options.search.lower_bound_prune = true;
  if (const char* env = std::getenv("PS_RESULT_CACHE")) {
    if (env[0] != '\0') options.search.result_cache_path = env;
  }
  if (const char* env = std::getenv("PS_BACKEND")) {
    if (env[0] != '\0') {
      PS_CHECK(parse_optimal_backend(env, &options.search.backend),
               "PS_BACKEND must be bnb, cp, or portfolio");
    }
  }
  return options;
}

/// PS_SERVE: the bench's embedded observability server, started on the
/// first call and kept alive for the whole process (a bench that runs
/// several corpora serves them all; the server joins at exit). Null when
/// the knob is unset. Benches have no setup phase worth gating /readyz
/// on, so the server is marked ready immediately.
inline HttpExporter* bench_http_exporter() {
  static std::unique_ptr<HttpExporter> server = [] {
    std::unique_ptr<HttpExporter> s;
    if (const char* env = std::getenv("PS_SERVE"); env && env[0] != '\0') {
      HttpExporterOptions options;
      options.port = static_cast<std::uint16_t>(std::atoi(env));
      s = std::make_unique<HttpExporter>(options);
      s->set_ready(true);
      std::cerr << "bench: serving observability endpoints on "
                << s->base_url() << "\n";
    }
    return s;
  }();
  return server.get();
}

/// Run the standard corpus once (shared by the figure benches), honoring
/// the PS_TRACE / PS_PROGRESS observability knobs. A bench that runs
/// several corpora overwrites PS_TRACE's file each time — the trace
/// covers the most recent run, which keeps files bounded.
inline std::vector<RunRecord> run_paper_corpus(
    int runs, const CorpusRunOptions& options) {
  CorpusSpec spec;
  spec.total_runs = runs;

  // Interrupt handling first: the blocked signal mask must be in place
  // before the server/profiler/pool spawn threads that inherit it.
  install_graceful_interrupt([](int) {
    if (HttpExporter* s = bench_http_exporter()) s->stop();
    progress_finish_all();
    if (const char* p = std::getenv("PS_PROFILE");
        p && p[0] != '\0' && profiler_enabled()) {
      profiler_disable();
      profiler_write_collapsed(p);
    }
    if (const char* p = std::getenv("PS_TRACE");
        p && p[0] != '\0' && trace_enabled()) {
      trace_disable();
      trace_write_json(p);
    }
    if (const char* p = std::getenv("PS_METRICS"); p && p[0] != '\0') {
      metrics_disable();
      metrics_write(p);
    }
  });
  bench_http_exporter();

  CorpusRunOptions run_options = options;
  std::unique_ptr<ProgressReporter> progress;
  if (const char* env = std::getenv("PS_PROGRESS"); env && env[0] != '\0') {
    progress = std::make_unique<ProgressReporter>(
        static_cast<std::size_t>(runs), std::cerr,
        ProgressReporter::stderr_is_tty());
    run_options.progress = progress.get();
  }
  const char* trace_path = std::getenv("PS_TRACE");
  if (trace_path && trace_path[0] != '\0') trace_enable();
  const char* metrics_path = std::getenv("PS_METRICS");
  if (metrics_path && metrics_path[0] != '\0') metrics_enable();
  const char* profile_path = std::getenv("PS_PROFILE");
  const bool profiling = profile_path && profile_path[0] != '\0';
  if (const char* env = std::getenv("PS_WATCHDOG"); env && env[0] != '\0') {
    const double seconds = std::atof(env);
    if (seconds > 0) {
      watchdog_enable(seconds, profiling
                                   ? std::string(profile_path) + ".stall.json"
                                   : std::string());
    }
  }
  if (profiling) profiler_enable();

  std::vector<RunRecord> records =
      run_corpus(corpus_params(spec), run_options);

  if (profiling) {
    profiler_disable();
    profiler_write_collapsed(profile_path);
    std::cerr << "profile: " << profiler_total_samples()
              << " samples written to " << profile_path
              << " (collapsed-stack format)\n";
    const std::string table = profiler_phase_table();
    if (!table.empty()) std::cerr << table;
  }
  watchdog_disable();

  if (trace_path && trace_path[0] != '\0') {
    trace_disable();
    trace_write_json(trace_path);
    std::cerr << "trace written to " << trace_path
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  }
  if (metrics_path && metrics_path[0] != '\0') {
    metrics_disable();
    metrics_write(metrics_path);
    std::cerr << metrics_summary_line() << " written to " << metrics_path
              << "\n";
  }
  return records;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "=============================================================="
               "==========\n"
            << title << "\n(reproduces " << paper_ref
            << " of Nisar & Dietz, 'Optimal Code Scheduling for "
               "Multiple-Pipeline Processors', 1990)\n"
            << "=============================================================="
               "==========\n";
}

}  // namespace pipesched::bench
