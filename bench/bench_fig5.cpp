// Figure 5 reproduction: distribution of sample block sizes.
//
// The paper's corpus deliberately over-represents large blocks (average
// 20.6 instructions vs <10 in real programs) to stress the scheduler;
// blocks past 40 instructions appear with low frequency.
#include <iostream>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Distribution of Sample Block Sizes", "Figure 5");

  const int runs = bench::corpus_runs();
  CorpusSpec spec;
  spec.total_runs = runs;

  Histogram hist;
  Accumulator sizes;
  for (const GeneratorParams& params : corpus_params(spec)) {
    const std::size_t n = generate_block(params).size();
    hist.add(static_cast<long>(n));
    sizes.add(static_cast<double>(n));
  }

  // Bucket by 2 for a readable bar chart.
  Histogram bucketed;
  for (const auto& [size, count] : hist.bins()) {
    bucketed.add(size / 2 * 2, count);
  }
  ChartOptions options;
  options.title = "blocks per size bucket (bucket = 2 instructions)";
  options.width = 60;
  std::cout << render_histogram(bucketed, options) << "\n";

  std::cout << "blocks: " << sizes.count() << ", mean size "
            << compact_double(sizes.mean(), 4) << " (paper: 20.6), min "
            << sizes.min() << ", max " << sizes.max() << ", stddev "
            << compact_double(sizes.stddev(), 3) << "\n";

  CsvWriter csv("fig5.csv");
  csv.row({"block_size", "count"});
  for (const auto& [size, count] : hist.bins()) csv.row_of(size, count);
  std::cout << "CSV written to fig5.csv\n";
  return 0;
}
