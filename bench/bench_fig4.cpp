// Figure 4 reproduction: initial and final NOPs vs. block size.
//
// The paper's observation: initial (list-schedule) NOPs grow linearly with
// block size, while final (optimal) NOPs stay nearly constant — the
// scheduler hides almost all pipeline latency regardless of block length.
#include <iostream>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Initial and Final NOPs Vs. Block Size", "Figure 4");

  const int runs = bench::corpus_runs();
  const std::vector<RunRecord> records =
      bench::run_paper_corpus(runs, bench::paper_run_options());

  GroupedStats initial;
  GroupedStats final_nops;
  for (const RunRecord& r : records) {
    if (r.block_size == 0) continue;
    initial.add(r.block_size, r.initial_nops);
    final_nops.add(r.block_size, r.final_nops);
  }

  ChartOptions options;
  options.title = "mean NOPs vs block size";
  options.x_label = "instructions per block";
  options.y_label = "NOPs";
  std::cout << render_lines({{"initial (list schedule)", initial},
                             {"final (optimal)", final_nops}},
                            options)
            << "\n";

  CsvWriter csv("fig4.csv");
  csv.row({"block_size", "runs", "avg_initial_nops", "avg_final_nops"});
  std::cout << pad_left("n", 5) << pad_left("runs", 8)
            << pad_left("avg initial", 14) << pad_left("avg final", 12)
            << "\n";
  for (const auto& [size, acc] : initial.groups()) {
    const auto& fin = final_nops.groups().at(size);
    csv.row_of(size, acc.count(), acc.mean(), fin.mean());
    if (size % 4 == 0) {
      std::cout << pad_left(std::to_string(size), 5)
                << pad_left(std::to_string(acc.count()), 8)
                << pad_left(compact_double(acc.mean(), 3), 14)
                << pad_left(compact_double(fin.mean(), 3), 12) << "\n";
    }
  }
  std::cout << "CSV written to fig4.csv\n";
  return 0;
}
