// Superblock formation (DESIGN.md item 16, toward Section 6's trace
// scheduling): what merging linear block chains buys.
//
// Workload: straight-line programs deliberately fractured into one block
// per statement (what a naive front end or per-statement lowering
// produces), chained by fall-through. merge_linear_chains() collapses the
// chain back into one superblock; compilation is compared on
//   * total instructions (cross-block load forwarding / CSE now fire),
//   * total NOPs and summed completion cycles (the scheduler can overlap
//     latencies across the former cuts).
#include <iostream>

#include "bench_common.hpp"
#include "core/program_compiler.hpp"
#include "core/superblock.hpp"
#include "frontend/codegen.hpp"
#include "synth/generator.hpp"
#include "util/stats.hpp"

namespace {

using namespace pipesched;

/// One block per statement, fall-through chained, Return at the end.
Program fractured_program(const SourceProgram& source) {
  Program program;
  for (std::size_t s = 0; s < source.statements.size(); ++s) {
    BlockEmitter emitter("s" + std::to_string(s));
    const Stmt& stmt = source.statements[s];
    emitter.emit_assign(stmt.target, *stmt.value);
    const BlockId id = program.add_block();
    program.block_mut(id).block = emitter.take();
    program.block_mut(id).term =
        s + 1 == source.statements.size() ? Terminator::ret()
                                          : Terminator::fall_through();
  }
  program.validate();
  return program;
}

int total_cycles(const ProgramCompileResult& result) {
  int cycles = 0;
  for (const CompiledBlock& block : result.blocks) {
    cycles += block.schedule.completion_cycle();
  }
  return cycles;
}

}  // namespace

int main() {
  using namespace pipesched;
  bench::banner("Superblock Formation on Fractured Straight-Line Code",
                "toward Section 6 trace scheduling");

  const int runs = bench::corpus_runs(1500);
  Accumulator frac_insns;
  Accumulator merged_insns;
  Accumulator frac_nops;
  Accumulator merged_nops;
  Accumulator frac_cycles;
  Accumulator merged_cycles;
  Accumulator merges;

  for (int i = 0; i < runs; ++i) {
    GeneratorParams params;
    params.statements = 4 + i % 12;
    params.variables = 4 + i % 4;
    params.constants = 2;
    params.seed = 31000 + static_cast<std::uint64_t>(i) * 13;
    const SourceProgram source = generate_source(params);
    const Program fractured = fractured_program(source);
    const SuperblockResult merged = merge_linear_chains(fractured);
    merges.add(merged.merges);

    ProgramCompileOptions options;
    options.block.search.curtail_lambda = 20000;
    options.block.search.lower_bound_prune = true;
    const ProgramCompileResult a = compile_program(fractured, options);
    const ProgramCompileResult b = compile_program(merged.program, options);

    frac_insns.add(a.total_instructions);
    merged_insns.add(b.total_instructions);
    frac_nops.add(a.total_nops);
    merged_nops.add(b.total_nops);
    frac_cycles.add(total_cycles(a));
    merged_cycles.add(total_cycles(b));
  }

  CsvWriter csv("superblock.csv");
  csv.row({"variant", "avg_instructions", "avg_nops", "avg_total_cycles"});
  std::cout << runs << " fractured programs, mean "
            << compact_double(merges.mean(), 3)
            << " edges merged each\n\n"
            << pad_right("variant", 26) << pad_left("avg insns", 11)
            << pad_left("avg NOPs", 10) << pad_left("avg cycles", 12)
            << "\n";
  const auto row = [&](const char* name, const Accumulator& insns,
                       const Accumulator& nops, const Accumulator& cycles) {
    std::cout << pad_right(name, 26)
              << pad_left(compact_double(insns.mean(), 4), 11)
              << pad_left(compact_double(nops.mean(), 4), 10)
              << pad_left(compact_double(cycles.mean(), 4), 12) << "\n";
    csv.row_of(name, insns.mean(), nops.mean(), cycles.mean());
  };
  row("one block per statement", frac_insns, frac_nops, frac_cycles);
  row("superblock merged", merged_insns, merged_nops, merged_cycles);

  std::cout << "\nmerging restores the optimizer's and scheduler's scope: "
               "fewer instructions\n(cross-block redundancy removed) and "
               "fewer cycles (latencies overlap across\nthe former cuts).\n"
            << "CSV written to superblock.csv\n";
  return 0;
}
