// Table 7 reproduction: statistics for scheduling the 16,000-block corpus
// with the branch-and-bound scheduler on the Tables 4-5 machine.
//
// Paper values for orientation (Sun 3/50, 1990):
//   completed runs 15,812 (98.83%), truncated 188 (1.17%);
//   avg instructions/block 20.50 (completed) / 32.28 (truncated);
//   avg initial NOPs 9.50 / 14.34; avg final NOPs 0.67 / 4.03;
//   avg Omega calls 427.4 / 54,150; avg time ~0.1s / ~15s.
// Counts are comparable; wall-clock is ~4 orders of magnitude faster on
// modern hardware.
#include <iostream>

#include "bench_common.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pipesched;
  bench::banner("Statistics for Scheduling the Synthetic Corpus", "Table 7");

  const int runs = bench::corpus_runs();
  const CorpusRunOptions options = bench::paper_run_options();
  std::cout << "corpus: " << runs << " blocks, machine "
            << options.machine.name() << ", curtail point lambda = "
            << options.search.curtail_lambda << "\n\n";

  Timer wall;
  const std::vector<RunRecord> records =
      bench::run_paper_corpus(runs, options);
  const double total_seconds = wall.seconds();

  const CorpusSummary summary = summarize_corpus(records);
  std::cout << "[paper protocol: enumerated prunes + critical-path lower "
               "bound]\n"
            << render_corpus_summary(summary) << "\n";
  std::cout << "total wall time: " << compact_double(total_seconds, 3)
            << "s (" << compact_double(runs / total_seconds, 4)
            << " blocks/second)\n\n";

  // Secondary run: only the pruning rules Section 4.2.3 enumerates.
  CorpusRunOptions enumerated = options;
  enumerated.search.lower_bound_prune = false;
  const CorpusSummary plain =
      summarize_corpus(bench::run_paper_corpus(runs, enumerated));
  std::cout << "[enumerated pruning rules only]\n"
            << render_corpus_summary(plain) << "\n";

  CsvWriter csv("table7.csv");
  csv.row({"variant", "column", "runs", "percent", "avg_instructions",
           "avg_initial_nops", "avg_final_nops", "avg_omega_calls",
           "avg_seconds"});
  const auto dump = [&](const char* variant, const char* name,
                        const CorpusSummary::Column& column) {
    csv.row_of(variant, name, column.runs, column.percent,
               column.avg_instructions, column.avg_initial_nops,
               column.avg_final_nops, column.avg_omega_calls,
               column.avg_seconds);
  };
  dump("paper_protocol", "completed", summary.completed);
  dump("paper_protocol", "truncated", summary.truncated);
  dump("paper_protocol", "total", summary.total);
  dump("enumerated_only", "completed", plain.completed);
  dump("enumerated_only", "truncated", plain.truncated);
  dump("enumerated_only", "total", plain.total);

  // Machine-readable exports: one record per block (for post-processing)
  // and a single-object roll-up so successive PRs can track the perf
  // trajectory without parsing tables.
  write_corpus_jsonl(records, "corpus_records.jsonl");
  CorpusBenchMeta meta;
  meta.machine = options.machine.name();
  meta.curtail_lambda = options.search.curtail_lambda;
  meta.deadline_seconds = options.search.deadline_seconds;
  meta.total_wall_seconds = total_seconds;
  write_corpus_bench_json(summary, records, meta, "BENCH_corpus.json");
  std::cout << "CSV written to table7.csv; per-block records in "
               "corpus_records.jsonl; roll-up in BENCH_corpus.json\n";
  return 0;
}
