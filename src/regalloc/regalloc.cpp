#include "regalloc/regalloc.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/check.hpp"

namespace pipesched {

std::vector<LiveRange> compute_live_ranges(
    const BasicBlock& block, const std::vector<TupleIndex>& order) {
  PS_CHECK(order.size() == block.size(), "order does not cover the block");
  std::vector<int> pos_of(block.size(), -1);
  for (std::size_t p = 0; p < order.size(); ++p) {
    PS_CHECK(order[p] >= 0 &&
                 static_cast<std::size_t>(order[p]) < block.size() &&
                 pos_of[static_cast<std::size_t>(order[p])] < 0,
             "order is not a permutation");
    pos_of[static_cast<std::size_t>(order[p])] = static_cast<int>(p);
  }

  std::vector<LiveRange> ranges;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const auto index = static_cast<TupleIndex>(i);
    if (!opcode_has_result(block.tuple(index).op)) continue;
    LiveRange r;
    r.tuple = index;
    r.def_pos = pos_of[i];
    r.last_use_pos = pos_of[i];
    ranges.push_back(r);
  }

  // Extend each range to its last reader's position.
  std::vector<int> range_of(block.size(), -1);
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    range_of[static_cast<std::size_t>(ranges[k].tuple)] = static_cast<int>(k);
  }
  for (std::size_t i = 0; i < block.size(); ++i) {
    const Tuple& t = block.tuple(static_cast<TupleIndex>(i));
    for (const Operand* o : {&t.a, &t.b}) {
      if (!o->is_ref()) continue;
      const int k = range_of[static_cast<std::size_t>(o->ref)];
      PS_ASSERT(k >= 0);
      ranges[static_cast<std::size_t>(k)].last_use_pos =
          std::max(ranges[static_cast<std::size_t>(k)].last_use_pos,
                   pos_of[i]);
    }
  }

  std::sort(ranges.begin(), ranges.end(),
            [](const LiveRange& a, const LiveRange& b) {
              return a.def_pos < b.def_pos;
            });
  return ranges;
}

int max_live(const std::vector<LiveRange>& ranges) {
  // Sweep positions: +1 at def, -1 after last use.
  std::map<int, int> delta;
  for (const LiveRange& r : ranges) {
    delta[r.def_pos] += 1;
    delta[r.last_use_pos + 1] -= 1;
  }
  int live = 0;
  int best = 0;
  for (const auto& [pos, d] : delta) {
    live += d;
    best = std::max(best, live);
  }
  return best;
}

Allocation linear_scan(const BasicBlock& block,
                       const std::vector<TupleIndex>& order,
                       int num_registers, AllocPolicy policy) {
  PS_CHECK(num_registers > 0, "need at least one register");
  const std::vector<LiveRange> ranges = compute_live_ranges(block, order);

  Allocation allocation;
  allocation.reg_of.assign(block.size(), -1);

  // Free registers: LowestFree re-sorts so the lowest id is taken first;
  // RoundRobin treats the pool as a FIFO, so a freed register goes to the
  // back of the line and the whole file cycles before any reuse.
  std::deque<int> free_regs;
  for (int r = 0; r < num_registers; ++r) free_regs.push_back(r);
  std::multimap<int, int> active;  // last_use_pos -> register

  int highest_used = -1;
  for (const LiveRange& range : ranges) {
    // Expire ranges whose value is dead before this def.
    while (!active.empty() && active.begin()->first < range.def_pos) {
      free_regs.push_back(active.begin()->second);
      active.erase(active.begin());
    }
    if (policy == AllocPolicy::LowestFree) {
      std::sort(free_regs.begin(), free_regs.end());
    }
    PS_CHECK(!free_regs.empty(),
             "register allocation requires spill code: block needs more than "
                 << num_registers << " registers (MAXLIVE = "
                 << max_live(ranges) << ")");
    const int reg = free_regs.front();
    free_regs.pop_front();
    allocation.reg_of[static_cast<std::size_t>(range.tuple)] = reg;
    highest_used = std::max(highest_used, reg);
    active.emplace(range.last_use_pos, reg);
  }
  allocation.registers_used = highest_used + 1;
  return allocation;
}

bool verify_allocation(const BasicBlock& block,
                       const std::vector<TupleIndex>& order,
                       const Allocation& allocation) {
  const std::vector<LiveRange> ranges = compute_live_ranges(block, order);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const int ri = allocation.reg_of[static_cast<std::size_t>(ranges[i].tuple)];
    if (ri < 0) return false;
    for (std::size_t j = i + 1; j < ranges.size(); ++j) {
      const int rj =
          allocation.reg_of[static_cast<std::size_t>(ranges[j].tuple)];
      if (ri != rj) continue;
      const bool overlap = ranges[i].def_pos <= ranges[j].last_use_pos &&
                           ranges[j].def_pos <= ranges[i].last_use_pos;
      if (overlap) return false;
    }
  }
  return true;
}

std::vector<std::pair<TupleIndex, TupleIndex>> false_dependence_edges(
    const BasicBlock& block, const Allocation& allocation) {
  // Readers of each value, in original order.
  std::vector<std::vector<TupleIndex>> readers(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    const Tuple& t = block.tuple(static_cast<TupleIndex>(i));
    for (const Operand* o : {&t.a, &t.b}) {
      if (o->is_ref()) {
        readers[static_cast<std::size_t>(o->ref)].push_back(
            static_cast<TupleIndex>(i));
      }
    }
  }

  // Per register, defs in original order; consecutive defs A -> B impose
  // anti edges reader(A) -> B and A -> B.
  std::vector<std::pair<TupleIndex, TupleIndex>> edges;
  std::vector<TupleIndex> last_def(
      static_cast<std::size_t>(allocation.registers_used), -1);
  for (std::size_t i = 0; i < block.size(); ++i) {
    const int reg = allocation.reg_of[i];
    if (reg < 0) continue;
    const auto def = static_cast<TupleIndex>(i);
    const TupleIndex prev = last_def[static_cast<std::size_t>(reg)];
    if (prev >= 0) {
      edges.emplace_back(prev, def);
      for (TupleIndex reader : readers[static_cast<std::size_t>(prev)]) {
        if (reader < def) edges.emplace_back(reader, def);
      }
    }
    last_def[static_cast<std::size_t>(reg)] = def;
  }
  return edges;
}

}  // namespace pipesched
