// Spill-code creation (paper Section 3.1):
//
//   "if there are more live values than registers in the target machine,
//    then all values beyond the number of registers will be explicitly
//    re-loaded ... we insure that when registers are actually allocated
//    later, there will be no need to introduce new spill instructions,
//    since these could invalidate the optimality of the schedule."
//
// insert_spill_code() rewrites a block so that its register pressure (in
// original order) never exceeds `max_live_target`: at each over-pressure
// point the live value whose next use is farthest away (Belady's choice)
// is stored to a fresh spill temporary right after its definition and
// re-loaded just before its first use past the pressure point; later uses
// read the reload. Spill stores are timing-transparent on typical machines
// (Store uses no pipeline), so the cost is the reload's latency — exactly
// the trade the paper describes.
#pragma once

#include "ir/block.hpp"

namespace pipesched {

struct SpillResult {
  BasicBlock block;
  int values_spilled = 0;
};

/// Rewrite `block` until max-live (original order) <= max_live_target.
/// Requires max_live_target >= 3 (an instruction's two operands plus its
/// result must be co-resident). Throws Error if the target is infeasible.
SpillResult insert_spill_code(const BasicBlock& block, int max_live_target);

/// Max simultaneously-live values of `block` in original order (an
/// instruction's result counts as live alongside its operands).
int block_max_live(const BasicBlock& block);

}  // namespace pipesched
