#include "regalloc/spill.hpp"

#include <algorithm>
#include <optional>

#include "regalloc/regalloc.hpp"
#include "util/check.hpp"

namespace pipesched {

namespace {

std::vector<TupleIndex> identity_order(std::size_t n) {
  std::vector<TupleIndex> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<TupleIndex>(i);
  return order;
}

/// Positions (ascending) at which each value is read.
std::vector<std::vector<TupleIndex>> use_positions(const BasicBlock& block) {
  std::vector<std::vector<TupleIndex>> uses(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    const Tuple& t = block.tuple(static_cast<TupleIndex>(i));
    for (const Operand* o : {&t.a, &t.b}) {
      if (o->is_ref()) {
        uses[static_cast<std::size_t>(o->ref)].push_back(
            static_cast<TupleIndex>(i));
      }
    }
  }
  return uses;
}

/// One spill transformation: value `victim` is stored to `spill_var`
/// right after its definition; uses at positions > split are redirected
/// to a reload inserted immediately before the first such use.
BasicBlock apply_spill(const BasicBlock& block, TupleIndex victim,
                       TupleIndex split, const std::string& spill_var) {
  BasicBlock out(block.label());
  for (std::size_t v = 0; v < block.var_count(); ++v) {
    out.var_id(block.var_name(static_cast<VarId>(v)));
  }
  const VarId slot = out.var_id(spill_var);

  std::vector<TupleIndex> new_of_old(block.size(), -1);
  TupleIndex reload = -1;

  auto remap = [&](Operand o, TupleIndex user) {
    if (!o.is_ref()) return o;
    if (o.ref == victim && user > split) {
      PS_ASSERT(reload >= 0);
      return Operand::of_ref(reload);
    }
    return Operand::of_ref(new_of_old[static_cast<std::size_t>(o.ref)]);
  };

  for (std::size_t i = 0; i < block.size(); ++i) {
    const auto old_index = static_cast<TupleIndex>(i);
    const Tuple& t = block.tuple(old_index);

    // First use past the split point: reload just before it.
    if (reload < 0 && old_index > split) {
      bool uses_victim = (t.a.is_ref() && t.a.ref == victim) ||
                         (t.b.is_ref() && t.b.ref == victim);
      if (uses_victim) {
        reload = out.append(Opcode::Load, Operand::of_var(slot));
      }
    }

    Tuple rewritten = t;
    rewritten.a = remap(t.a, old_index);
    rewritten.b = remap(t.b, old_index);
    new_of_old[i] = out.append(rewritten);

    if (old_index == victim) {
      out.append(Opcode::Store, Operand::of_var(slot),
                 Operand::of_ref(new_of_old[i]));
    }
  }
  out.validate();
  return out;
}

}  // namespace

int block_max_live(const BasicBlock& block) {
  if (block.empty()) return 0;
  return max_live(compute_live_ranges(block, identity_order(block.size())));
}

SpillResult insert_spill_code(const BasicBlock& block, int max_live_target) {
  PS_CHECK(max_live_target >= 3,
           "spill insertion needs a target of at least 3 registers "
           "(two operands plus a result)");
  SpillResult result;
  result.block = block;

  // Each round removes one value from the first over-pressure point; the
  // loop is bounded because every round strictly shrinks some live range.
  for (int round = 0; round < 10000; ++round) {
    const std::size_t n = result.block.size();
    const auto ranges =
        compute_live_ranges(result.block, identity_order(n));
    const auto uses = use_positions(result.block);

    // Find the first position where pressure exceeds the target.
    std::vector<int> pressure(n, 0);
    for (const LiveRange& r : ranges) {
      for (int p = r.def_pos; p <= r.last_use_pos; ++p) ++pressure[p];
    }
    std::optional<int> hot;
    for (std::size_t p = 0; p < n; ++p) {
      if (pressure[p] > max_live_target) {
        hot = static_cast<int>(p);
        break;
      }
    }
    if (!hot) return result;

    // Belady: among values live across *hot* with no use at it and a use
    // after it, spill the one whose next use is farthest away.
    TupleIndex victim = -1;
    TupleIndex victim_next_use = -1;
    for (const LiveRange& r : ranges) {
      if (r.def_pos >= *hot || r.last_use_pos <= *hot) continue;
      const auto& reads = uses[static_cast<std::size_t>(r.tuple)];
      if (std::binary_search(reads.begin(), reads.end(),
                             static_cast<TupleIndex>(*hot))) {
        continue;  // operand of the hot instruction itself
      }
      const auto next = std::upper_bound(reads.begin(), reads.end(),
                                         static_cast<TupleIndex>(*hot));
      if (next == reads.end()) continue;
      if (*next > victim_next_use) {
        victim = r.tuple;
        victim_next_use = *next;
      }
    }
    PS_CHECK(victim >= 0,
             "cannot reduce register pressure below "
                 << max_live_target << " at position " << *hot + 1
                 << " (every live value is used there)");

    result.block = apply_spill(result.block, victim,
                               static_cast<TupleIndex>(*hot),
                               ".s" + std::to_string(result.values_spilled));
    ++result.values_spilled;
  }
  throw Error("spill insertion did not converge");
}

}  // namespace pipesched
