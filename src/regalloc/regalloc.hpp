// Post-scheduling register allocation (paper Section 3.4).
//
// Values carry no register names until after the pipeline scheduler has
// fixed the instruction order; only then are tuple results mapped onto
// physical registers, so register reuse can never constrain the schedule.
// Section 3.1's spill discipline is honoured in reverse: the allocator
// *verifies* the spill-free precondition (MAXLIVE <= available registers)
// rather than inserting spills, and throws if it is violated.
//
// false_dependence_edges() implements the comparison point: given an
// allocation computed on the ORIGINAL instruction order (what a postpass
// scheduler working on final assembly would face), it returns the anti
// dependences that register reuse imposes on any reordering. Feeding those
// into DepGraph and re-running the optimal scheduler quantifies the
// paper's claim that scheduling-before-allocation avoids artificial
// constraints.
#pragma once

#include <vector>

#include "ir/block.hpp"

namespace pipesched {

/// Live range of one tuple's result over a given schedule order.
/// Positions are 0-based indices into the order.
struct LiveRange {
  TupleIndex tuple = -1;
  int def_pos = 0;
  int last_use_pos = 0;  ///< == def_pos when the result is never read
};

/// Live ranges for all value-producing tuples, ordered by def position.
/// `order` must be a permutation of the block's tuples.
std::vector<LiveRange> compute_live_ranges(
    const BasicBlock& block, const std::vector<TupleIndex>& order);

/// Maximum number of simultaneously live values (MAXLIVE).
int max_live(const std::vector<LiveRange>& ranges);

struct Allocation {
  /// Register per tuple index; -1 for tuples without a result.
  std::vector<int> reg_of;
  int registers_used = 0;
};

/// Register-selection policy.
///   LowestFree  always picks the lowest-numbered free register (minimises
///               registers touched; maximises reuse);
///   RoundRobin  cycles through the file before reusing a register (what
///               many code generators do with temporaries; with a larger
///               file it induces *fewer* reuse constraints, which is what
///               the allocate-before-scheduling ablation sweeps).
enum class AllocPolicy { LowestFree, RoundRobin };

/// Linear-scan assignment of live ranges to `num_registers` registers.
/// Throws Error when the block would need spill code (MAXLIVE too high).
Allocation linear_scan(const BasicBlock& block,
                       const std::vector<TupleIndex>& order,
                       int num_registers,
                       AllocPolicy policy = AllocPolicy::LowestFree);

/// Check that no two overlapping live ranges share a register.
bool verify_allocation(const BasicBlock& block,
                       const std::vector<TupleIndex>& order,
                       const Allocation& allocation);

/// Anti-dependence edges {from, to} (in tuple-index space, from < to)
/// imposed by register reuse under `allocation` computed on the original
/// order: when register r passes from value A to value B, every reader of
/// A — and A itself — must execute before B.
std::vector<std::pair<TupleIndex, TupleIndex>> false_dependence_edges(
    const BasicBlock& block, const Allocation& allocation);

}  // namespace pipesched
