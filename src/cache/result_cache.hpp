// Persistent cross-run schedule cache with verified lookups.
//
// Production corpora repeat blocks; the dominance cache dies with each
// search. This tier memoizes whole SOLVED blocks: the canonical form of
// (block DAG + machine semantics + the SearchConfig fields the optimum
// depends on + initial pipeline state) maps to the proven-optimal
// Schedule. Consulted by run_optimal_backend before dispatching a
// backend, so psc, the corpus runner, the program compiler, and the
// benches all share it through SearchConfig::result_cache_path.
//
// Soundness rules, in order of importance:
//
//   1. Only PROVEN results are stored: stats.completed && stats.feasible.
//      A completed search's best_nops is the true optimum regardless of
//      backend or pruning configuration (both backends are exact and
//      every prune is cost-preserving), so a cached entry is valid for
//      any later query with the same canonical form — including queries
//      under different lambda/deadline budgets.
//   2. Lookups are VERIFIED: entries are found by a 64-bit content hash,
//      but the stored canonical form is byte-compared against the query
//      before a hit is returned. A hash collision therefore degrades to
//      a miss (counted as a verified reject), never a wrong schedule.
//   3. The on-disk tier is an append log that can never poison a run: a
//      version-stamped header gates format changes, every record carries
//      a CRC, and corrupt or truncated tails are skipped with a counted
//      warning (ps_result_cache_load_errors) — never a crash.
//
// Concurrency: the in-memory index is sharded by hash with one mutex per
// shard (mirroring ShardedDominanceCache); disk appends serialize on a
// file mutex and fsync before returning. One process-wide instance per
// path (open_shared) makes every SearchConfig copy carrying the same
// path share one cache.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/dag.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"
#include "sched/timing.hpp"

namespace pipesched {

struct SearchConfig;

/// Lifetime traffic counters for one ResultCache instance. Invariant:
/// hits + misses == probes; verified_rejects are key-hash matches whose
/// canonical bytes differed (each such probe still resolves to a miss).
struct ResultCacheStats {
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t verified_rejects = 0;
  std::uint64_t stores = 0;          ///< records appended to disk
  std::uint64_t load_errors = 0;     ///< corrupt/truncated records skipped
  std::uint64_t entries_loaded = 0;  ///< records replayed from disk on open
};

/// One memoized solved block: the proven-optimal schedule plus the two
/// cost summaries the roll-ups compare exactly. initial_nops is stored so
/// a warm run reports the same seed cost a fresh search would (it is a
/// bench_diff exact field).
struct CachedSchedule {
  int initial_nops = 0;
  int best_nops = 0;
  Schedule schedule;
};

class ResultCache {
 public:
  /// Opens (creating if absent) the append log at `path`, replays every
  /// intact record into the in-memory index, and keeps an fsync'd append
  /// descriptor for stores. Throws pipesched::Error when the path cannot
  /// be opened for appending or the file carries a different format
  /// version — callers (psc) turn that into a clean diagnostic + exit 2.
  explicit ResultCache(std::string path);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Process-wide instance registry: every open of the same path returns
  /// the same cache, so concurrent corpus workers share one index and
  /// one append descriptor.
  static std::shared_ptr<ResultCache> open_shared(const std::string& path);

  /// Deterministic canonical serialization of everything the optimal
  /// result depends on (see DESIGN.md section 3.7 for the field-by-field
  /// argument). Byte equality of two canonical forms implies the two
  /// queries have the same set of optimal schedules and the same optimum
  /// cost.
  static std::string canonical_form(const Machine& machine,
                                    const DepGraph& dag,
                                    const SearchConfig& config,
                                    const PipelineState& initial);

  /// Verified lookup: returns true and fills `out` only when an entry's
  /// stored canonical form is byte-identical to `canonical`.
  bool lookup(const std::string& canonical, CachedSchedule* out);

  /// Memoize a PROVEN result (caller asserts completed && feasible):
  /// inserts into the in-memory index and appends one fsync'd record to
  /// the log. Duplicate canonicals are dropped (first store wins; any
  /// later duplicate is necessarily an equal-cost optimum).
  void store(const std::string& canonical, const CachedSchedule& result);

  ResultCacheStats stats() const;
  const std::string& path() const { return path_; }
  std::size_t entry_count() const;

  /// Content hash used for bucketing (never trusted for equality).
  static std::uint64_t hash_of(const std::string& canonical);

  /// Test seam: plant an entry in the bucket for `hash` regardless of
  /// `canonical`'s real hash — forces the 64-bit collision case that
  /// verified lookups must reject. Memory-only; nothing hits the disk.
  void debug_insert(std::uint64_t hash, std::string canonical,
                    CachedSchedule payload);

  static constexpr std::uint32_t kFormatVersion = 1;

 private:
  struct Entry {
    std::string canonical;
    CachedSchedule payload;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<Entry>> buckets;
  };
  static constexpr std::size_t kShardCount = 16;

  Shard& shard_for(std::uint64_t hash) {
    // High bits pick the shard; unordered_map rehashes the full word, so
    // the two selections never correlate.
    return shards_[(hash >> 60) & (kShardCount - 1)];
  }

  /// Inserts unless an entry with identical canonical bytes exists.
  /// Returns true when the entry was new.
  bool insert_memory(std::uint64_t hash, const std::string& canonical,
                     const CachedSchedule& payload);

  void load_log();
  void append_record(const std::string& canonical,
                     const CachedSchedule& payload);

  std::string path_;
  std::array<Shard, kShardCount> shards_;
  std::mutex file_mutex_;
  int fd_ = -1;

  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> verified_rejects_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> load_errors_{0};
  std::atomic<std::uint64_t> entries_loaded_{0};
};

}  // namespace pipesched
