#include "cache/result_cache.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <type_traits>
#include <utility>

#include "ir/opcode.hpp"
#include "sched/scheduler.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"

namespace pipesched {

namespace {

/// On-disk layout. Header: 8-byte magic + u32 format version + u32
/// reserved (zero). Records: [u32 canonical_len][u32 payload_len]
/// [u32 crc32(canonical || payload)][canonical][payload], appended
/// whole and fsync'd. All integers little-endian.
constexpr char kMagic[8] = {'P', 'S', 'R', 'C', 'A', 'C', 'H', 'E'};
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kFrameBytes = 12;

/// Upper bound on either section of a record; anything larger in a frame
/// means the frame bytes themselves are garbage (no way to resync an
/// append log past a corrupt length, so loading stops there).
constexpr std::uint32_t kMaxSectionBytes = 1u << 28;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader for payload decoding: any overrun
/// flags failure instead of reading garbage, so a corrupt payload that
/// passed its CRC by chance still cannot produce a bogus schedule.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint32_t u32() {
    if (pos_ + 4 > size_) {
      ok_ = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  bool ok() const { return ok_ && pos_ == size_; }
  bool in_bounds() const { return ok_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
std::uint32_t crc32(const char* data, std::size_t size,
                    std::uint32_t seed = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<std::uint8_t>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return ~crc;
}

std::string encode_payload(const CachedSchedule& payload) {
  std::string out;
  put_i32(out, payload.initial_nops);
  put_i32(out, payload.best_nops);
  const Schedule& s = payload.schedule;
  put_u32(out, static_cast<std::uint32_t>(s.order.size()));
  for (TupleIndex t : s.order) put_i32(out, t);
  put_u32(out, static_cast<std::uint32_t>(s.nops.size()));
  for (int v : s.nops) put_i32(out, v);
  put_u32(out, static_cast<std::uint32_t>(s.issue_cycle.size()));
  for (int v : s.issue_cycle) put_i32(out, v);
  put_u32(out, static_cast<std::uint32_t>(s.unit.size()));
  for (PipelineId v : s.unit) put_i32(out, v);
  return out;
}

bool decode_payload(const char* data, std::size_t size,
                    CachedSchedule* out) {
  Reader r(data, size);
  out->initial_nops = r.i32();
  out->best_nops = r.i32();
  const auto read_vec = [&r](auto& vec) {
    const std::uint32_t n = r.u32();
    if (!r.in_bounds() || n > kMaxSectionBytes / 4) return false;
    vec.clear();
    vec.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      vec.push_back(
          static_cast<typename std::decay_t<decltype(vec)>::value_type>(
              r.i32()));
    }
    return r.in_bounds();
  };
  if (!read_vec(out->schedule.order)) return false;
  if (!read_vec(out->schedule.nops)) return false;
  if (!read_vec(out->schedule.issue_cycle)) return false;
  if (!read_vec(out->schedule.unit)) return false;
  return r.ok();
}

Counter& rc_counter(const char* event) {
  static const char* kHelp = "Persistent result-cache traffic, by event";
  return metrics_counter("ps_result_cache_events_total", {{"event", event}},
                         kHelp);
}

void count_metric(const char* event) {
  if (!metrics_enabled()) return;
  rc_counter(event).increment();
}

}  // namespace

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {
  PS_CHECK(!path_.empty(), "result cache: path must not be empty");
  load_log();

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  PS_CHECK(fd_ >= 0, "result cache: cannot open '"
                         << path_ << "' for append: " << std::strerror(errno));
  // Brand-new (or zero-length) log: stamp the header before any record.
  struct stat st {};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    std::string header(kMagic, sizeof(kMagic));
    put_u32(header, kFormatVersion);
    put_u32(header, 0);
    const char* p = header.data();
    std::size_t left = header.size();
    while (left > 0) {
      const ssize_t wrote = ::write(fd_, p, left);
      PS_CHECK(wrote > 0, "result cache: cannot write header to '"
                              << path_ << "': " << std::strerror(errno));
      p += wrote;
      left -= static_cast<std::size_t>(wrote);
    }
    ::fsync(fd_);
  }
}

ResultCache::~ResultCache() {
  if (fd_ >= 0) ::close(fd_);
}

std::shared_ptr<ResultCache> ResultCache::open_shared(
    const std::string& path) {
  static std::mutex registry_mutex;
  static std::unordered_map<std::string, std::shared_ptr<ResultCache>>
      registry;
  std::lock_guard lock(registry_mutex);
  auto it = registry.find(path);
  if (it != registry.end()) return it->second;
  auto cache = std::make_shared<ResultCache>(path);
  registry.emplace(path, cache);
  return cache;
}

std::string ResultCache::canonical_form(const Machine& machine,
                                        const DepGraph& dag,
                                        const SearchConfig& config,
                                        const PipelineState& initial) {
  std::string out;
  out.reserve(64 + dag.size() * 32);
  // Canonical-form version, bumped whenever the serialization below (or
  // the meaning of any serialized field) changes, so stale entries from
  // an older scheme can never verify against a new query.
  out.append("PSCF");
  put_u8(out, 1);

  // Machine semantics (names excluded — they do not affect schedules):
  // per-pipeline timing plus the opcode -> pipeline-set mapping, which
  // together determine unit groups, latencies, and enqueue conflicts.
  put_u32(out, static_cast<std::uint32_t>(machine.pipeline_count()));
  for (std::size_t u = 0; u < machine.pipeline_count(); ++u) {
    const PipelineDesc& p = machine.pipeline(static_cast<PipelineId>(u));
    put_i32(out, p.latency);
    put_i32(out, p.enqueue);
  }
  put_u32(out, static_cast<std::uint32_t>(kOpcodeCount));
  for (int op = 0; op < kOpcodeCount; ++op) {
    const auto& units = machine.pipelines_for(static_cast<Opcode>(op));
    put_u32(out, static_cast<std::uint32_t>(units.size()));
    for (PipelineId id : units) put_i32(out, id);
  }

  // The block's tuples (full operand identity: refs drive both deps and
  // register pressure) and the dependence edges. Edges are serialized
  // explicitly rather than re-derived because DepGraph supports extra
  // ordering constraints beyond the block's own dependences.
  put_u32(out, static_cast<std::uint32_t>(dag.size()));
  for (std::size_t i = 0; i < dag.size(); ++i) {
    const Tuple& t = dag.block().tuple(static_cast<TupleIndex>(i));
    put_u8(out, static_cast<std::uint8_t>(t.op));
    for (const Operand* o : {&t.a, &t.b}) {
      put_u8(out, static_cast<std::uint8_t>(o->kind));
      put_i32(out, o->ref);
      put_i32(out, o->var);
      put_i64(out, o->imm);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(dag.edges().size()));
  for (const DepEdge& e : dag.edges()) {
    put_i32(out, e.from);
    put_i32(out, e.to);
    put_u8(out, static_cast<std::uint8_t>(e.kind));
  }

  // The only SearchConfig fields a PROVEN result depends on: the pressure
  // ceiling changes which schedules are feasible at all, and the seed
  // choice changes the reported initial_nops (a bench_diff exact field).
  // Budgets, backend choice, and pruning toggles are excluded on purpose:
  // completed searches agree on the optimum across all of them.
  put_i32(out, config.max_live_registers);
  put_u8(out, config.seed_with_list_schedule ? 1 : 0);

  // Incoming pipeline residue (block-splitting schedules sub-blocks
  // against a non-drained entry state).
  put_u32(out, static_cast<std::uint32_t>(initial.unit_last_issue.size()));
  for (int v : initial.unit_last_issue) put_i32(out, v);
  return out;
}

std::uint64_t ResultCache::hash_of(const std::string& canonical) {
  // FNV-1a over the canonical bytes; used only to pick buckets. Equality
  // decisions always byte-compare the canonical form.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : canonical) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool ResultCache::lookup(const std::string& canonical, CachedSchedule* out) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  count_metric("probe");
  const std::uint64_t hash = hash_of(canonical);
  Shard& shard = shard_for(hash);
  std::uint64_t rejects = 0;
  bool hit = false;
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.buckets.find(hash);
    if (it != shard.buckets.end()) {
      for (const Entry& e : it->second) {
        // The verified part of "verified lookup": a matching hash is only
        // a candidate. Byte-identical canonical forms are required, so a
        // collision degrades to a miss, never a wrong schedule.
        if (e.canonical == canonical) {
          *out = e.payload;
          hit = true;
          break;
        }
        ++rejects;
      }
    }
  }
  if (rejects > 0) {
    verified_rejects_.fetch_add(rejects, std::memory_order_relaxed);
    if (metrics_enabled()) rc_counter("verified_reject").add(rejects);
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    count_metric("hit");
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_metric("miss");
  }
  return hit;
}

bool ResultCache::insert_memory(std::uint64_t hash,
                                const std::string& canonical,
                                const CachedSchedule& payload) {
  Shard& shard = shard_for(hash);
  std::lock_guard lock(shard.mutex);
  std::vector<Entry>& bucket = shard.buckets[hash];
  for (const Entry& e : bucket) {
    if (e.canonical == canonical) return false;
  }
  bucket.push_back(Entry{canonical, payload});
  return true;
}

void ResultCache::store(const std::string& canonical,
                        const CachedSchedule& result) {
  const std::uint64_t hash = hash_of(canonical);
  if (!insert_memory(hash, canonical, result)) return;
  append_record(canonical, result);
  stores_.fetch_add(1, std::memory_order_relaxed);
  count_metric("store");
}

void ResultCache::append_record(const std::string& canonical,
                                const CachedSchedule& payload) {
  const std::string body = encode_payload(payload);
  std::string record;
  record.reserve(kFrameBytes + canonical.size() + body.size());
  put_u32(record, static_cast<std::uint32_t>(canonical.size()));
  put_u32(record, static_cast<std::uint32_t>(body.size()));
  const std::uint32_t crc =
      crc32(body.data(), body.size(),
            crc32(canonical.data(), canonical.size()));
  put_u32(record, crc);
  record += canonical;
  record += body;

  // One writer at a time; the whole record goes out in order and is
  // fsync'd before the store returns, so a crash leaves at worst one
  // truncated tail record — which the next load skips with a counted
  // warning.
  std::lock_guard lock(file_mutex_);
  const char* p = record.data();
  std::size_t left = record.size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd_, p, left);
    PS_CHECK(wrote > 0, "result cache: append to '"
                            << path_ << "' failed: " << std::strerror(errno));
    p += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  ::fsync(fd_);
}

void ResultCache::load_log() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no file yet: the constructor will create it
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.empty()) return;  // touched-but-empty file: treat as new

  PS_CHECK(data.size() >= kHeaderBytes,
           "result cache: '" << path_ << "' is too short to carry a header");
  PS_CHECK(std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0,
           "result cache: '" << path_ << "' is not a result-cache file");
  const std::uint32_t version = read_u32(data.data() + 8);
  PS_CHECK(version == kFormatVersion,
           "result cache: '" << path_ << "' has format version " << version
                             << ", this build expects " << kFormatVersion);

  std::size_t pos = kHeaderBytes;
  std::uint64_t errors = 0;
  std::uint64_t loaded = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameBytes) {
      ++errors;  // truncated frame (crash mid-append)
      break;
    }
    const std::uint32_t canonical_len = read_u32(data.data() + pos);
    const std::uint32_t payload_len = read_u32(data.data() + pos + 4);
    const std::uint32_t crc_stored = read_u32(data.data() + pos + 8);
    if (canonical_len > kMaxSectionBytes || payload_len > kMaxSectionBytes) {
      ++errors;  // garbage lengths: cannot resync an append log past here
      break;
    }
    const std::size_t body_len =
        static_cast<std::size_t>(canonical_len) + payload_len;
    if (data.size() - pos - kFrameBytes < body_len) {
      ++errors;  // truncated tail record
      break;
    }
    const char* canonical_ptr = data.data() + pos + kFrameBytes;
    const char* payload_ptr = canonical_ptr + canonical_len;
    pos += kFrameBytes + body_len;

    const std::uint32_t crc_actual =
        crc32(payload_ptr, payload_len, crc32(canonical_ptr, canonical_len));
    if (crc_actual != crc_stored) {
      ++errors;  // bit rot within a framed record: skip just this one
      continue;
    }
    CachedSchedule payload;
    if (!decode_payload(payload_ptr, payload_len, &payload)) {
      ++errors;
      continue;
    }
    std::string canonical(canonical_ptr, canonical_len);
    if (insert_memory(hash_of(canonical), canonical, payload)) ++loaded;
  }

  entries_loaded_.store(loaded, std::memory_order_relaxed);
  if (errors > 0) {
    load_errors_.store(errors, std::memory_order_relaxed);
    if (metrics_enabled()) rc_counter("load_error").add(errors);
    std::fprintf(stderr,
                 "result cache: skipped %llu corrupt or truncated "
                 "record(s) in '%s'\n",
                 static_cast<unsigned long long>(errors), path_.c_str());
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats s;
  s.probes = probes_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.verified_rejects = verified_rejects_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.load_errors = load_errors_.load(std::memory_order_relaxed);
  s.entries_loaded = entries_loaded_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ResultCache::entry_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [hash, bucket] : shard.buckets) {
      (void)hash;
      total += bucket.size();
    }
  }
  return total;
}

void ResultCache::debug_insert(std::uint64_t hash, std::string canonical,
                               CachedSchedule payload) {
  Shard& shard = shard_for(hash);
  std::lock_guard lock(shard.mutex);
  shard.buckets[hash].push_back(
      Entry{std::move(canonical), std::move(payload)});
}

}  // namespace pipesched
