// Monotonic wall-clock timer for benchmark harnesses.
#pragma once

#include <chrono>

namespace pipesched {

/// Stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last reset().
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pipesched
