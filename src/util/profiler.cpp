#include "util/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/csv.hpp"  // json_quote
#include "util/metrics.hpp"

namespace pipesched {

namespace prof_detail {

std::atomic<bool> g_enabled{false};

namespace {

/// All threads' phase stacks. Stacks are registered on a thread's first
/// active marker and leaked with the registry (threads may die while the
/// sampler holds a pointer; the stack must outlive them both).
struct StackRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<PhaseStack>> stacks;
};

StackRegistry& stack_registry() {
  static StackRegistry* r = new StackRegistry;  // leaked: outlives workers
  return *r;
}

}  // namespace

PhaseStack& local_stack() {
  thread_local PhaseStack* stack = nullptr;
  if (stack == nullptr) {
    auto owned = std::make_unique<PhaseStack>();
    stack = owned.get();
    StackRegistry& reg = stack_registry();
    std::lock_guard lock(reg.mutex);
    stack->tid = static_cast<std::uint32_t>(reg.stacks.size() + 1);
    reg.stacks.push_back(std::move(owned));
  }
  return *stack;
}

}  // namespace prof_detail

namespace {

using Clock = std::chrono::steady_clock;

/// Accumulated samples: (tid, collapsed path) -> count. Touched only by
/// the sampler thread and by snapshot/clear callers, so one mutex is
/// plenty — the hot worker path never sees it.
struct Accumulator {
  std::mutex mutex;
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> counts;
  std::uint64_t total = 0;
};

Accumulator& accumulator() {
  static Accumulator* a = new Accumulator;
  return *a;
}

std::atomic<double> g_sample_period_s{0};
std::atomic<std::uint64_t> g_stall_count{0};

/// Read one thread's phase stack into a collapsed "a;b;c" path. Returns
/// an empty string when the thread is idle (depth 0). A read racing a
/// push/pop attributes the sample to the caller or the callee frame —
/// both truthful within one frame of the sampled instant (DESIGN.md
/// section 3.8).
std::string read_stack_path(const prof_detail::PhaseStack& stack) {
  const std::uint32_t depth = stack.depth.load(std::memory_order_acquire);
  if (depth == 0) return {};
  const std::uint32_t n = std::min<std::uint32_t>(depth, kProfilerMaxDepth);
  std::string path;
  for (std::uint32_t i = 0; i < n; ++i) {
    const char* frame = stack.frames[i].load(std::memory_order_relaxed);
    if (frame == nullptr) break;  // unreachable in practice; stay safe
    if (!path.empty()) path += ';';
    path += frame;
  }
  return path;
}

void take_sample() {
  std::vector<std::pair<std::uint32_t, std::string>> live;
  {
    auto& reg = prof_detail::stack_registry();
    std::lock_guard lock(reg.mutex);
    for (const auto& stack : reg.stacks) {
      std::string path = read_stack_path(*stack);
      if (!path.empty()) live.emplace_back(stack->tid, std::move(path));
    }
  }
  if (live.empty()) return;
  auto& acc = accumulator();
  std::lock_guard lock(acc.mutex);
  for (auto& sample : live) {
    ++acc.counts[std::move(sample)];
    ++acc.total;
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

struct SearchMonitor::Impl {
  explicit Impl(const char* label_in) : label(label_in) {
    created = Clock::now();
    last_progress = created;
  }

  /// Re-arm a pooled Impl for a new search. The ring contents are NOT
  /// cleared — ring_size/ring_next gate every read, so stale entries are
  /// unreachable and the 2KB ring is never re-touched wholesale. (The
  /// one-time zero-fill at construction is exactly what the pool below
  /// amortizes away: a fresh Impl per search dirtied ~40 cache lines of
  /// search-hot data on every ~50us corpus block.)
  void reset(const char* label_in) {
    label = label_in;
    ring_size = 0;
    ring_next = 0;
    created = Clock::now();
    last_progress = created;
    last_nodes = 0;
    dumped = false;
  }

  const char* label;
  std::uint64_t id = 0;

  mutable std::mutex mutex;
  HeartbeatSnapshot ring[kRingCapacity];
  std::size_t ring_size = 0;
  std::size_t ring_next = 0;
  Clock::time_point created;
  Clock::time_point last_progress;  ///< last time nodes advanced
  std::uint64_t last_nodes = 0;
  bool dumped = false;  ///< one stall dump per monitor

  struct Registry {
    std::mutex mutex;
    std::vector<Impl*> monitors;   ///< live monitors only (RAII)
    std::vector<Impl*> free_pool;  ///< retired Impls kept warm for reuse
    std::uint64_t next_id = 1;
  };
  static Registry& registry() {
    static Registry* r = new Registry;
    return *r;
  }

  /// Pool bound: enough for every plausible set of concurrent searches;
  /// beyond it retired Impls are simply freed.
  static constexpr std::size_t kMaxPooled = 64;
};

SearchMonitor::SearchMonitor(const char* label) {
  auto& reg = Impl::registry();
  std::lock_guard lock(reg.mutex);
  if (!reg.free_pool.empty()) {
    impl_ = reg.free_pool.back();
    reg.free_pool.pop_back();
    impl_->reset(label);
  } else {
    impl_ = new Impl(label);
  }
  impl_->id = reg.next_id++;
  reg.monitors.push_back(impl_);
}

SearchMonitor::~SearchMonitor() {
  auto& reg = Impl::registry();
  Impl* to_free = nullptr;
  {
    std::lock_guard lock(reg.mutex);
    reg.monitors.erase(
        std::remove(reg.monitors.begin(), reg.monitors.end(), impl_),
        reg.monitors.end());
    if (reg.free_pool.size() < Impl::kMaxPooled) {
      reg.free_pool.push_back(impl_);
    } else {
      to_free = impl_;
    }
  }
  delete to_free;
}

void SearchMonitor::heartbeat(std::uint64_t nodes, int incumbent_nops,
                              std::uint32_t depth, double cache_hit_pct) {
  const Clock::time_point now = Clock::now();
  std::lock_guard lock(impl_->mutex);
  HeartbeatSnapshot& slot = impl_->ring[impl_->ring_next];
  slot.t_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                            impl_->created)
          .count());
  slot.nodes = nodes;
  slot.incumbent_nops = incumbent_nops;
  slot.depth = depth;
  slot.cache_hit_pct = cache_hit_pct;
  impl_->ring_next = (impl_->ring_next + 1) % kRingCapacity;
  if (impl_->ring_size < kRingCapacity) ++impl_->ring_size;
  // Heartbeats fire on the searches' 1,024-expansion tick, so a heartbeat
  // IS nodes-expanded progress — and in a parallel search, where several
  // workers feed one monitor with interleaved per-ledger node counts,
  // it is the only coherent progress signal.
  impl_->last_nodes = std::max(impl_->last_nodes, nodes);
  impl_->last_progress = now;
}

std::vector<HeartbeatSnapshot> SearchMonitor::ring() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<HeartbeatSnapshot> out;
  out.reserve(impl_->ring_size);
  const std::size_t start =
      (impl_->ring_next + kRingCapacity - impl_->ring_size) % kRingCapacity;
  for (std::size_t i = 0; i < impl_->ring_size; ++i) {
    out.push_back(impl_->ring[(start + i) % kRingCapacity]);
  }
  return out;
}

const char* SearchMonitor::label() const { return impl_->label; }

std::vector<MonitorStatus> search_monitor_statuses() {
  std::vector<MonitorStatus> out;
  auto& reg = SearchMonitor::Impl::registry();
  // registry -> monitor, the same order check_stalls() takes; a /status
  // scrape and a stall dump can interleave but never deadlock.
  std::lock_guard lock(reg.mutex);
  out.reserve(reg.monitors.size());
  for (const SearchMonitor::Impl* mon : reg.monitors) {
    std::lock_guard mon_lock(mon->mutex);
    MonitorStatus& status = out.emplace_back();
    status.label = mon->label;
    status.monitor_id = mon->id;
    status.ring.reserve(mon->ring_size);
    const std::size_t cap = SearchMonitor::kRingCapacity;
    const std::size_t start = (mon->ring_next + cap - mon->ring_size) % cap;
    for (std::size_t i = 0; i < mon->ring_size; ++i) {
      status.ring.push_back(mon->ring[(start + i) % cap]);
    }
  }
  return out;
}

std::vector<PhaseStackSnapshot> profiler_phase_stacks() {
  std::vector<PhaseStackSnapshot> out;
  auto& reg = prof_detail::stack_registry();
  std::lock_guard lock(reg.mutex);
  out.reserve(reg.stacks.size());
  for (const auto& stack : reg.stacks) {
    PhaseStackSnapshot& snap = out.emplace_back();
    snap.tid = stack->tid;
    snap.path = read_stack_path(*stack);
  }
  return out;
}

// ---------------------------------------------------------------------
// Background monitor thread (sampler + watchdog share it)
// ---------------------------------------------------------------------

namespace {

struct MonitorThread {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stop = false;
  // Sampler config (valid while `sampling`).
  bool sampling = false;
  std::chrono::nanoseconds sample_period{0};
  // Watchdog config (valid while `watchdog`).
  bool watchdog = false;
  double watchdog_seconds = 0;
  std::string stall_path;
};

MonitorThread& monitor_thread() {
  static MonitorThread* m = new MonitorThread;
  return *m;
}

/// Serialize one stall dump as a JSON object (strict json.hpp-parsable).
std::string stall_dump_json(const SearchMonitor::Impl& mon,
                            double seconds_since_progress,
                            std::uint64_t last_nodes,
                            const std::vector<HeartbeatSnapshot>& ring) {
  std::ostringstream out;
  out << "{\"stall\":{\"label\":" << json_quote(mon.label)
      << ",\"monitor_id\":" << mon.id << ",\"seconds_since_progress\":"
      << seconds_since_progress << ",\"last_nodes\":" << last_nodes
      << ",\"ring\":[";
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const HeartbeatSnapshot& hb = ring[i];
    if (i > 0) out << ",";
    out << "{\"t_us\":" << hb.t_us << ",\"nodes\":" << hb.nodes
        << ",\"incumbent_nops\":" << hb.incumbent_nops
        << ",\"depth\":" << hb.depth
        << ",\"cache_hit_pct\":" << hb.cache_hit_pct << "}";
  }
  out << "],\"phase_stacks\":[";
  {
    auto& reg = prof_detail::stack_registry();
    std::lock_guard lock(reg.mutex);
    bool first = true;
    for (const auto& stack : reg.stacks) {
      if (!first) out << ",";
      first = false;
      out << "{\"tid\":" << stack->tid << ",\"path\":"
          << json_quote(read_stack_path(*stack)) << "}";
    }
  }
  out << "],\"metrics\":";
  if (metrics_enabled()) {
    metrics_snapshot().write_json(out);
  } else {
    out << "null";
  }
  out << "}}\n";
  return out.str();
}

void dump_stall(SearchMonitor::Impl& mon, double seconds_since_progress,
                const std::string& stall_path) {
  std::vector<HeartbeatSnapshot> ring;
  std::uint64_t last_nodes = 0;
  {
    std::lock_guard lock(mon.mutex);
    last_nodes = mon.last_nodes;
    const std::size_t cap = SearchMonitor::kRingCapacity;
    const std::size_t start = (mon.ring_next + cap - mon.ring_size) % cap;
    for (std::size_t i = 0; i < mon.ring_size; ++i) {
      ring.push_back(mon.ring[(start + i) % cap]);
    }
  }
  std::ostringstream text;
  text << "ps-watchdog: STALL in search '" << mon.label << "' (monitor #"
       << mon.id << "): no nodes-expanded progress for " << std::fixed
       << std::setprecision(1) << seconds_since_progress
       << "s (last nodes=" << last_nodes << ")\n";
  text << "ps-watchdog: last " << ring.size() << " heartbeats"
       << (ring.empty() ? " (none recorded)" : ":") << "\n";
  for (const HeartbeatSnapshot& hb : ring) {
    text << "ps-watchdog:   t=" << hb.t_us << "us nodes=" << hb.nodes
         << " incumbent=" << hb.incumbent_nops << " depth=" << hb.depth
         << " cache_hit_pct=" << std::setprecision(1) << hb.cache_hit_pct
         << "\n";
  }
  {
    auto& reg = prof_detail::stack_registry();
    std::lock_guard lock(reg.mutex);
    for (const auto& stack : reg.stacks) {
      const std::string path = read_stack_path(*stack);
      text << "ps-watchdog:   thread " << stack->tid << " phase: "
           << (path.empty() ? "(idle)" : path) << "\n";
    }
  }
  if (metrics_enabled()) {
    text << "ps-watchdog: " << metrics_summary_line() << "\n";
  }
  std::cerr << text.str() << std::flush;

  if (!stall_path.empty()) {
    const std::string json =
        stall_dump_json(mon, seconds_since_progress, last_nodes, ring);
    std::ofstream out(stall_path);  // overwrite: latest stall wins
    if (out.good()) {
      out << json;
      out.flush();
    }
    if (out.good()) {
      std::cerr << "ps-watchdog: stall dump written to " << stall_path
                << "\n";
    } else {
      std::cerr << "ps-watchdog: failed to write stall dump to "
                << stall_path << "\n";
    }
  }
  g_stall_count.fetch_add(1, std::memory_order_relaxed);
}

void check_stalls(double watchdog_seconds, const std::string& stall_path) {
  const Clock::time_point now = Clock::now();
  std::vector<std::pair<SearchMonitor::Impl*, double>> stalled;
  {
    auto& reg = SearchMonitor::Impl::registry();
    std::lock_guard lock(reg.mutex);
    for (SearchMonitor::Impl* mon : reg.monitors) {
      std::lock_guard mon_lock(mon->mutex);
      if (mon->dumped) continue;
      const double idle =
          std::chrono::duration<double>(now - mon->last_progress).count();
      if (idle >= watchdog_seconds) {
        mon->dumped = true;
        stalled.emplace_back(mon, idle);
      }
    }
    // Dump while still holding the registry lock: a stalled search is by
    // definition not finishing, but its siblings may be, and the lock
    // keeps every Impl* in `stalled` alive (~SearchMonitor blocks on it).
    for (const auto& [mon, idle] : stalled) {
      dump_stall(*mon, idle, stall_path);
    }
  }
}

void monitor_loop() {
  auto& m = monitor_thread();
  std::unique_lock lock(m.mutex);
  // Absolute-deadline pacing: each tick is scheduled at the previous
  // deadline plus the period, NOT "period after we finished" — otherwise
  // the per-tick work and the OS wakeup latency silently stretch the
  // effective period and every count-times-period estimate undershoots
  // real wall time (measured ~20% at 997 Hz with relative sleeps).
  auto next = std::chrono::steady_clock::now();
  while (!m.stop) {
    std::chrono::nanoseconds period{100 * 1000 * 1000};  // idle fallback
    if (m.sampling) {
      period = m.sample_period;
    } else if (m.watchdog) {
      period = std::min(
          period, std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(m.watchdog_seconds / 4)));
      period = std::max(period, std::chrono::nanoseconds{1000 * 1000});
    }
    next += period;
    const auto now = std::chrono::steady_clock::now();
    if (next < now) {
      // Fell behind (suspended, or a slow dump): skip the lost ticks
      // rather than firing a catch-up burst of samples.
      next = now + period;
    }
    if (m.cv.wait_until(lock, next) == std::cv_status::no_timeout) {
      if (m.stop) break;
      // Woken early (a client toggled sampling/watchdog): rewind this
      // tick and recompute the period instead of sampling ahead of time.
      next -= period;
      continue;
    }
    if (m.stop) break;
    const bool sampling = m.sampling;
    const bool watchdog = m.watchdog;
    const double watchdog_seconds = m.watchdog_seconds;
    const std::string stall_path = m.stall_path;
    lock.unlock();
    if (sampling) take_sample();
    if (watchdog) check_stalls(watchdog_seconds, stall_path);
    lock.lock();
  }
}

/// Start the shared thread if any client (sampler/watchdog) needs it.
/// Caller holds m.mutex.
void ensure_thread_locked(MonitorThread& m) {
  if (m.running) {
    m.cv.notify_all();
    return;
  }
  m.stop = false;
  m.running = true;
  m.thread = std::thread(monitor_loop);
}

/// Join the shared thread once neither client needs it.
void stop_thread_if_idle() {
  auto& m = monitor_thread();
  std::thread to_join;
  {
    std::lock_guard lock(m.mutex);
    if (m.running && !m.sampling && !m.watchdog) {
      m.stop = true;
      m.running = false;
      to_join = std::move(m.thread);
      m.cv.notify_all();
    }
  }
  if (to_join.joinable()) to_join.join();
}

}  // namespace

// ---------------------------------------------------------------------
// Profiler control surface
// ---------------------------------------------------------------------

void profiler_enable(double hz) {
  if (profiler_enabled()) return;
  hz = std::clamp(hz, 1.0, 10000.0);
  profiler_clear();
  g_sample_period_s.store(1.0 / hz, std::memory_order_relaxed);
  {
    auto& m = monitor_thread();
    std::lock_guard lock(m.mutex);
    m.sampling = true;
    m.sample_period = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(1.0 / hz));
    ensure_thread_locked(m);
  }
  prof_detail::g_enabled.store(true, std::memory_order_relaxed);
}

void profiler_disable() {
  if (!prof_detail::g_enabled.exchange(false, std::memory_order_relaxed)) {
    return;
  }
  {
    auto& m = monitor_thread();
    std::lock_guard lock(m.mutex);
    m.sampling = false;
  }
  stop_thread_if_idle();
  // Publish per-top-level-phase sample counts as metrics. The family is
  // only registered when there is something to publish, so a profiler-off
  // process never grows a ps_profile_* series (tests assert this).
  if (!metrics_enabled()) return;
  std::map<std::string, std::uint64_t> by_phase;
  {
    auto& acc = accumulator();
    std::lock_guard lock(acc.mutex);
    for (const auto& [key, count] : acc.counts) {
      const std::string& path = key.second;
      by_phase[path.substr(0, path.find(';'))] += count;
    }
  }
  for (const auto& [phase, count] : by_phase) {
    metrics_counter("ps_profile_samples_total", {{"phase", phase}},
                    "Profiler samples attributed to each top-level phase")
        .add(count);
  }
}

void profiler_clear() {
  auto& acc = accumulator();
  std::lock_guard lock(acc.mutex);
  acc.counts.clear();
  acc.total = 0;
}

std::vector<ProfileSample> profiler_samples() {
  std::vector<ProfileSample> out;
  {
    auto& acc = accumulator();
    std::lock_guard lock(acc.mutex);
    out.reserve(acc.counts.size());
    for (const auto& [key, count] : acc.counts) {
      ProfileSample& s = out.emplace_back();
      s.tid = key.first;
      s.path = key.second;
      s.count = count;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileSample& a, const ProfileSample& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t profiler_total_samples() {
  auto& acc = accumulator();
  std::lock_guard lock(acc.mutex);
  return acc.total;
}

double profiler_sample_period_seconds() {
  return g_sample_period_s.load(std::memory_order_relaxed);
}

namespace {

/// Per-path counts summed across threads, insertion-sorted by path.
std::map<std::string, std::uint64_t> collapsed_counts() {
  std::map<std::string, std::uint64_t> merged;
  auto& acc = accumulator();
  std::lock_guard lock(acc.mutex);
  for (const auto& [key, count] : acc.counts) merged[key.second] += count;
  return merged;
}

}  // namespace

void profiler_write_collapsed(std::ostream& out) {
  for (const auto& [path, count] : collapsed_counts()) {
    out << path << " " << count << "\n";
  }
}

void profiler_write_collapsed(const std::string& path) {
  std::ofstream out(path);
  PS_CHECK(out.good(), "cannot open profile file: " << path);
  profiler_write_collapsed(out);
  out.flush();
  PS_CHECK(out.good(), "write failure on profile file: " << path);
}

std::string profiler_phase_table() {
  const std::map<std::string, std::uint64_t> merged = collapsed_counts();
  std::uint64_t total = 0;
  for (const auto& [path, count] : merged) total += count;
  if (total == 0) return {};

  std::vector<std::pair<std::string, std::uint64_t>> rows(merged.begin(),
                                                          merged.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::size_t width = 5;  // "phase"
  for (const auto& [path, count] : rows) {
    width = std::max(width, path.size());
  }
  const double period = profiler_sample_period_seconds();

  std::ostringstream out;
  out << "  " << std::left << std::setw(static_cast<int>(width)) << "phase"
      << std::right << std::setw(10) << "samples" << std::setw(10)
      << "est_s" << std::setw(8) << "share" << "\n";
  for (const auto& [path, count] : rows) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << path
        << std::right << std::setw(10) << count << std::setw(10)
        << std::fixed << std::setprecision(3)
        << static_cast<double>(count) * period << std::setw(7)
        << std::setprecision(1)
        << 100.0 * static_cast<double>(count) / static_cast<double>(total)
        << "%\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------
// Watchdog control surface
// ---------------------------------------------------------------------

void watchdog_enable(double seconds, const std::string& stall_json_path) {
  PS_CHECK(seconds > 0, "watchdog window must be positive: " << seconds);
  auto& m = monitor_thread();
  std::lock_guard lock(m.mutex);
  m.watchdog = true;
  m.watchdog_seconds = seconds;
  m.stall_path = stall_json_path;
  ensure_thread_locked(m);
}

void watchdog_disable() {
  {
    auto& m = monitor_thread();
    std::lock_guard lock(m.mutex);
    m.watchdog = false;
  }
  stop_thread_if_idle();
}

bool watchdog_enabled() {
  auto& m = monitor_thread();
  std::lock_guard lock(m.mutex);
  return m.watchdog;
}

std::uint64_t watchdog_stall_count() {
  return g_stall_count.load(std::memory_order_relaxed);
}

}  // namespace pipesched
