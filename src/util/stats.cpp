#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pipesched {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Histogram::add(long key, double weight) {
  bins_[key] += weight;
  total_ += weight;
}

long Histogram::min_key() const {
  PS_ASSERT(!bins_.empty());
  return bins_.begin()->first;
}

long Histogram::max_key() const {
  PS_ASSERT(!bins_.empty());
  return bins_.rbegin()->first;
}

void GroupedStats::add(long key, double value) { groups_[key].add(value); }

namespace {

/// Interpolated order statistic of an already-sorted sample.
double quantile_of_sorted(const std::vector<double>& sorted, double p) {
  PS_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> values, double p) {
  PS_CHECK(!values.empty(), "percentile of empty sample");
  std::sort(values.begin(), values.end());
  return quantile_of_sorted(values, p);
}

std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& ps) {
  PS_CHECK(!values.empty(), "quantiles of empty sample");
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(quantile_of_sorted(values, p));
  return out;
}

}  // namespace pipesched
