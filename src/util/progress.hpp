// Live progress reporting for long corpus/program runs.
//
// A ProgressReporter renders "done/total" progress with an error count,
// throughput, and an ETA. On a tty it redraws a single status line in
// place (carriage return, rate-limited so thousands of fast blocks do
// not melt the terminal into scroll-back); on a non-tty stream (CI logs,
// redirects) it degrades to occasional complete lines so logs stay
// greppable and bounded. A third, *silent* mode (no output stream at
// all) exists for runs that only want the thread-safe snapshot() state —
// the live /status HTTP endpoint reads it without forcing stderr noise
// on every corpus run.
//
// Every live reporter also self-registers in a process-wide registry so
// out-of-band observers (the obs HTTP server's /status endpoint, the
// graceful-interrupt cleanup) can find "the current run's progress"
// without threading a pointer through every layer.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>

#include "util/timer.hpp"

namespace pipesched {

/// Point-in-time copy of a reporter's state, safe to take from any
/// thread while workers keep ticking. rate/eta are derived from the
/// reporter's own wall clock at snapshot time.
struct ProgressSnapshot {
  std::size_t done = 0;
  std::size_t total = 0;
  std::size_t errors = 0;
  double elapsed_seconds = 0;
  double rate_per_second = 0;   ///< done / elapsed (0 before any progress)
  double eta_seconds = 0;       ///< remaining / rate (0 when rate is 0)
  bool finished = false;
};

class ProgressReporter {
 public:
  /// Report progress toward `total` completions on `out`. `tty` selects
  /// in-place redraw vs. line-per-report mode; use stderr_is_tty() when
  /// writing to stderr. `min_redraw_seconds` rate-limits tty redraws.
  ProgressReporter(std::size_t total, std::ostream& out, bool tty,
                   double min_redraw_seconds = 0.1);

  /// Silent reporter: counts progress and serves snapshot() but never
  /// writes anywhere. The corpus runner always keeps one of these alive
  /// when the caller did not pass its own, so /status stays live.
  explicit ProgressReporter(std::size_t total);

  /// True when stderr is attached to a terminal (POSIX isatty).
  static bool stderr_is_tty();

  /// Record one completed unit (thread-safe; called from pool workers).
  /// `errored` marks the unit failed — it still counts toward `done`.
  void add(bool errored = false);

  /// Render the final state and end the status line. Idempotent; the
  /// destructor calls it, so scope exit always leaves a clean terminal.
  void finish();

  /// Thread-safe point-in-time state (done/total/errors/rate/ETA).
  ProgressSnapshot snapshot() const;

  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  std::size_t done() const;
  std::size_t errors() const;

 private:
  /// Render one status report (caller holds mutex_). `final_line` forces
  /// the redraw and terminates the line. No-op for silent reporters.
  void render(bool final_line);

  const std::size_t total_;
  std::ostream* out_;  ///< null = silent (snapshot-only) mode
  const bool tty_;
  const double min_redraw_seconds_;
  Timer wall_;

  mutable std::mutex mutex_;
  std::size_t done_ = 0;
  std::size_t errors_ = 0;
  std::size_t next_line_at_ = 0;  ///< non-tty: next `done_` worth a line
  double last_redraw_seconds_ = -1.0;
  bool finished_ = false;
};

/// Snapshot of the most recently constructed still-live reporter (the
/// innermost active run). Returns false when no reporter is live.
bool current_progress(ProgressSnapshot* out);

/// finish() every live reporter — the graceful-interrupt path uses this
/// so Ctrl-C never leaves a half-drawn tty status line. Thread-safe and
/// idempotent (finish() itself is).
void progress_finish_all();

}  // namespace pipesched
