// Live progress reporting for long corpus/program runs.
//
// A ProgressReporter renders "done/total" progress with an error count,
// throughput, and an ETA. On a tty it redraws a single status line in
// place (carriage return, rate-limited so thousands of fast blocks do
// not melt the terminal into scroll-back); on a non-tty stream (CI logs,
// redirects) it degrades to occasional complete lines so logs stay
// greppable and bounded.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>

#include "util/timer.hpp"

namespace pipesched {

class ProgressReporter {
 public:
  /// Report progress toward `total` completions on `out`. `tty` selects
  /// in-place redraw vs. line-per-report mode; use stderr_is_tty() when
  /// writing to stderr. `min_redraw_seconds` rate-limits tty redraws.
  ProgressReporter(std::size_t total, std::ostream& out, bool tty,
                   double min_redraw_seconds = 0.1);

  /// True when stderr is attached to a terminal (POSIX isatty).
  static bool stderr_is_tty();

  /// Record one completed unit (thread-safe; called from pool workers).
  /// `errored` marks the unit failed — it still counts toward `done`.
  void add(bool errored = false);

  /// Render the final state and end the status line. Idempotent; the
  /// destructor calls it, so scope exit always leaves a clean terminal.
  void finish();

  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  std::size_t done() const;
  std::size_t errors() const;

 private:
  /// Render one status report (caller holds mutex_). `final_line` forces
  /// the redraw and terminates the line.
  void render(bool final_line);

  const std::size_t total_;
  std::ostream& out_;
  const bool tty_;
  const double min_redraw_seconds_;
  Timer wall_;

  mutable std::mutex mutex_;
  std::size_t done_ = 0;
  std::size_t errors_ = 0;
  std::size_t next_line_at_ = 0;  ///< non-tty: next `done_` worth a line
  double last_redraw_seconds_ = -1.0;
  bool finished_ = false;
};

}  // namespace pipesched
