#include "util/progress.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace pipesched {

namespace {

/// Live reporters, construction order. Leaked so reporters destroyed
/// during static teardown can still unregister safely.
struct ProgressRegistry {
  std::mutex mutex;
  std::vector<ProgressReporter*> live;
};

ProgressRegistry& registry() {
  static ProgressRegistry* r = new ProgressRegistry;
  return *r;
}

void register_reporter(ProgressReporter* reporter) {
  ProgressRegistry& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.live.push_back(reporter);
}

void unregister_reporter(ProgressReporter* reporter) {
  ProgressRegistry& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), reporter),
                 reg.live.end());
}

}  // namespace

ProgressReporter::ProgressReporter(std::size_t total, std::ostream& out,
                                   bool tty, double min_redraw_seconds)
    : total_(total),
      out_(&out),
      tty_(tty),
      min_redraw_seconds_(min_redraw_seconds) {
  // Non-tty mode logs ~10 evenly spaced lines plus the final one.
  next_line_at_ = std::max<std::size_t>(1, total_ / 10);
  register_reporter(this);
}

ProgressReporter::ProgressReporter(std::size_t total)
    : total_(total), out_(nullptr), tty_(false), min_redraw_seconds_(0) {
  register_reporter(this);
}

bool ProgressReporter::stderr_is_tty() { return isatty(fileno(stderr)) != 0; }

void ProgressReporter::add(bool errored) {
  std::lock_guard lock(mutex_);
  if (done_ < total_) ++done_;
  if (errored) ++errors_;
  if (finished_ || out_ == nullptr) return;
  if (tty_) {
    const double now = wall_.seconds();
    if (done_ == total_ || last_redraw_seconds_ < 0 ||
        now - last_redraw_seconds_ >= min_redraw_seconds_) {
      last_redraw_seconds_ = now;
      render(false);
    }
  } else if (done_ >= next_line_at_) {
    next_line_at_ = done_ + std::max<std::size_t>(1, total_ / 10);
    render(false);
    *out_ << "\n";
  }
}

void ProgressReporter::render(bool final_line) {
  if (out_ == nullptr) return;
  const double seconds = wall_.seconds();
  const double rate = seconds > 0 ? static_cast<double>(done_) / seconds : 0;
  const std::size_t remaining = total_ - std::min(done_, total_);
  std::ostringstream line;
  const std::size_t percent = total_ ? 100 * done_ / total_ : 100;
  line << (tty_ ? "\r" : "") << "[progress] " << done_ << "/" << total_
       << " (" << percent << "%)";
  if (errors_ > 0) line << ", " << errors_ << " errored";
  line << ", " << compact_double(rate, 4) << " blocks/s";
  if (!final_line && rate > 0) {
    line << ", ETA " << compact_double(static_cast<double>(remaining) / rate, 3)
         << "s";
  }
  if (final_line) {
    line << ", " << compact_double(seconds, 3) << "s total";
  }
  // Pad over any longer previous in-place line before \r overwrites it.
  std::string text = line.str();
  if (tty_) text.append(std::max<std::size_t>(text.size(), 60) - text.size(),
                        ' ');
  *out_ << text;
  if (tty_) out_->flush();
}

void ProgressReporter::finish() {
  std::lock_guard lock(mutex_);
  if (finished_) return;
  finished_ = true;
  if (out_ == nullptr) return;
  render(true);
  *out_ << "\n";
  out_->flush();
}

ProgressReporter::~ProgressReporter() {
  // Never let a partial tty status line bleed into subsequent output.
  finish();
  unregister_reporter(this);
}

ProgressSnapshot ProgressReporter::snapshot() const {
  std::lock_guard lock(mutex_);
  ProgressSnapshot snap;
  snap.done = done_;
  snap.total = total_;
  snap.errors = errors_;
  snap.elapsed_seconds = wall_.seconds();
  snap.rate_per_second =
      snap.elapsed_seconds > 0
          ? static_cast<double>(done_) / snap.elapsed_seconds
          : 0;
  const std::size_t remaining = total_ - std::min(done_, total_);
  snap.eta_seconds = snap.rate_per_second > 0
                         ? static_cast<double>(remaining) /
                               snap.rate_per_second
                         : 0;
  snap.finished = finished_;
  return snap;
}

std::size_t ProgressReporter::done() const {
  std::lock_guard lock(mutex_);
  return done_;
}

std::size_t ProgressReporter::errors() const {
  std::lock_guard lock(mutex_);
  return errors_;
}

bool current_progress(ProgressSnapshot* out) {
  ProgressRegistry& reg = registry();
  // Holding the registry lock across snapshot() pins the reporter: its
  // destructor finishes first (own mutex only), then blocks on the
  // registry lock to unregister — so the pointer cannot dangle here.
  std::lock_guard lock(reg.mutex);
  if (reg.live.empty()) return false;
  *out = reg.live.back()->snapshot();
  return true;
}

void progress_finish_all() {
  ProgressRegistry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (ProgressReporter* reporter : reg.live) reporter->finish();
}

}  // namespace pipesched
