#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/build_info.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"  // json_quote

namespace pipesched {

namespace metrics_detail {

std::atomic<bool> g_enabled{false};

}  // namespace metrics_detail

/// Sole friend of the instrument classes: constructs them (constructors
/// are private so only the registry can mint instruments) and zeroes
/// their cells for metrics_reset().
class MetricsRegistry {
 public:
  static Counter* make_counter(std::uint32_t id) { return new Counter(id); }
  static Gauge* make_gauge() { return new Gauge(); }
  static LogHistogram* make_histogram(std::uint32_t id) {
    return new LogHistogram(id);
  }

  static void reset(Counter& c) {
    std::lock_guard lock(c.mutex_);
    for (auto& cell : c.cells_) {
      cell->count.store(0, std::memory_order_relaxed);
    }
  }

  static void reset(Gauge& g) {
    g.value_.store(0, std::memory_order_relaxed);
  }

  static void reset(LogHistogram& h) {
    std::lock_guard lock(h.mutex_);
    for (auto& cell : h.cells_) {
      for (auto& b : cell->buckets) b.store(0, std::memory_order_relaxed);
      cell->count.store(0, std::memory_order_relaxed);
      cell->sum.store(0, std::memory_order_relaxed);
    }
  }
};

namespace {

using Kind = MetricsSnapshot::Kind;

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty() || name == "le") return false;  // reserved for buckets
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Canonicalize (sort by key, validate) the labels of one registration.
MetricLabels canonical_labels(const std::string& name,
                              const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    PS_CHECK(valid_label_name(sorted[i].first),
             "invalid metric label name '" << sorted[i].first << "' on "
                                           << name);
    PS_CHECK(i == 0 || sorted[i].first != sorted[i - 1].first,
             "duplicate metric label '" << sorted[i].first << "' on "
                                        << name);
  }
  return sorted;
}

std::string series_key(const std::string& name, const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

struct Instrument {
  Kind kind = Kind::Counter;
  std::string name;
  MetricLabels labels;
  std::string help;
  // Exactly one is non-null, matching `kind`. Owned here, never freed
  // (process lifetime; references handed out must not dangle).
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  LogHistogram* histogram = nullptr;
};

struct Registry {
  std::mutex mutex;
  std::vector<Instrument> instruments;
  std::unordered_map<std::string, std::size_t> by_key;
  std::unordered_map<std::string, Kind> family_kind;  // name -> kind
  std::uint32_t next_cell_id = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlive all worker threads
  return *r;
}

/// Per-thread cell pointers, indexed by the instrument's dense cell id.
/// Cells are owned by the instruments, so a dying thread leaves its
/// accumulated values behind (exactly what process totals want).
std::vector<void*>& tl_cells() {
  thread_local std::vector<void*> cells;
  return cells;
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

Instrument& find_or_create(const std::string& name,
                           const MetricLabels& labels,
                           const std::string& help, Kind kind) {
  PS_CHECK(valid_metric_name(name), "invalid metric name: '" << name << "'");
  const MetricLabels sorted = canonical_labels(name, labels);
  const std::string key = series_key(name, sorted);

  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  if (const auto it = reg.by_key.find(key); it != reg.by_key.end()) {
    Instrument& existing = reg.instruments[it->second];
    PS_CHECK(existing.kind == kind,
             "metric '" << name << "' already registered as "
                        << kind_name(existing.kind) << ", requested "
                        << kind_name(kind));
    return existing;
  }
  // A family (name) must keep one type across all label sets.
  if (const auto it = reg.family_kind.find(name);
      it != reg.family_kind.end()) {
    PS_CHECK(it->second == kind,
             "metric family '" << name << "' already registered as "
                               << kind_name(it->second) << ", requested "
                               << kind_name(kind));
  } else {
    reg.family_kind.emplace(name, kind);
  }

  Instrument inst;
  inst.kind = kind;
  inst.name = name;
  inst.labels = sorted;
  inst.help = help;
  const std::uint32_t id = reg.next_cell_id++;
  switch (kind) {
    case Kind::Counter:
      inst.counter = MetricsRegistry::make_counter(id);
      break;
    case Kind::Gauge:
      inst.gauge = MetricsRegistry::make_gauge();
      break;
    case Kind::Histogram:
      inst.histogram = MetricsRegistry::make_histogram(id);
      break;
  }
  reg.instruments.push_back(std::move(inst));
  reg.by_key.emplace(key, reg.instruments.size() - 1);
  return reg.instruments.back();
}

/// Format a double with enough digits to round-trip (bucket bounds are
/// powers of two, so this prints them exactly).
std::string format_double(double v) {
  std::ostringstream oss;
  oss << std::setprecision(17) << v;
  return oss.str();
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string render_label_set(const MetricLabels& labels,
                             const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& k, const std::string& v) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  };
  for (const auto& [k, v] : labels) emit(k, v);
  if (!extra_key.empty()) emit(extra_key, extra_value);
  out += "}";
  return out;
}

}  // namespace

void metrics_enable() {
  metrics_detail::g_enabled.store(true, std::memory_order_relaxed);
  // Every live registry identifies the binary that fills it: scrapers
  // and roll-ups join on these labels (see build_info.hpp).
  register_build_info_metric();
}

void metrics_disable() {
  metrics_detail::g_enabled.store(false, std::memory_order_relaxed);
}

void metrics_reset() {
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    for (Instrument& inst : reg.instruments) {
      switch (inst.kind) {
        case Kind::Counter:
          MetricsRegistry::reset(*inst.counter);
          break;
        case Kind::Gauge:
          MetricsRegistry::reset(*inst.gauge);
          break;
        case Kind::Histogram:
          MetricsRegistry::reset(*inst.histogram);
          break;
      }
    }
  }
  // The reset just zeroed ps_build_info with every other gauge; restore
  // its constant 1 (outside the registry lock — the gauge factory
  // re-enters it). Gauge writes are enable-gated, hence the check.
  if (metrics_enabled()) register_build_info_metric();
}

metrics_detail::Cell& Counter::cell() {
  std::vector<void*>& tl = tl_cells();
  if (tl.size() <= id_) tl.resize(id_ + 1, nullptr);
  void*& slot = tl[id_];
  if (slot == nullptr) {
    // First touch from this thread: register a private cell under the
    // instrument's mutex; every later add() is wait-free.
    std::lock_guard lock(mutex_);
    cells_.push_back(std::make_unique<metrics_detail::Cell>());
    slot = cells_.back().get();
  }
  return *static_cast<metrics_detail::Cell*>(slot);
}

std::uint64_t Counter::value() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->count.load(std::memory_order_relaxed);
  }
  return total;
}

void LogHistogram::observe(double value) {
  if (!metrics_enabled()) return;
  HistoCell& c = cell();
  c.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  metrics_detail::atomic_add_double(c.sum, value);
}

double LogHistogram::bucket_le(int index) {
  PS_ASSERT(index >= 0 && index < kBuckets);
  if (index == kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, kMinExp + index);
}

int LogHistogram::bucket_index(double value) {
  // Non-positive (and NaN) observations land in the smallest bucket: the
  // histogram tracks durations, where 0 means "below clock resolution".
  if (!(value > 0)) return 0;
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp
  // Smallest k with value <= 2^k: k = exp unless value is an exact power
  // of two (mantissa 0.5), which belongs to its own le=2^(exp-1) bucket.
  const int k = (mantissa == 0.5) ? exp - 1 : exp;
  if (k <= kMinExp) return 0;
  if (k > kMaxExp) return kBuckets - 1;
  return k - kMinExp;
}

LogHistogram::HistoCell& LogHistogram::cell() {
  std::vector<void*>& tl = tl_cells();
  if (tl.size() <= id_) tl.resize(id_ + 1, nullptr);
  void*& slot = tl[id_];
  if (slot == nullptr) {
    std::lock_guard lock(mutex_);
    cells_.push_back(std::make_unique<HistoCell>());
    slot = cells_.back().get();
  }
  return *static_cast<HistoCell*>(slot);
}

LogHistogram::Totals LogHistogram::totals() const {
  Totals t;
  std::lock_guard lock(mutex_);
  for (const auto& cell : cells_) {
    for (int i = 0; i < kBuckets; ++i) {
      t.buckets[i] += cell->buckets[i].load(std::memory_order_relaxed);
    }
    t.count += cell->count.load(std::memory_order_relaxed);
    t.sum += cell->sum.load(std::memory_order_relaxed);
  }
  return t;
}

Counter& metrics_counter(const std::string& name, const MetricLabels& labels,
                         const std::string& help) {
  return *find_or_create(name, labels, help, Kind::Counter).counter;
}

Gauge& metrics_gauge(const std::string& name, const MetricLabels& labels,
                     const std::string& help) {
  return *find_or_create(name, labels, help, Kind::Gauge).gauge;
}

LogHistogram& metrics_histogram(const std::string& name,
                                const MetricLabels& labels,
                                const std::string& help) {
  return *find_or_create(name, labels, help, Kind::Histogram).histogram;
}

const MetricsSnapshot::Series* MetricsSnapshot::find(
    const std::string& name, const MetricLabels& labels) const {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const Series& s : series) {
    if (s.name == name && s.labels == sorted) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value_or_zero(const std::string& name,
                                      const MetricLabels& labels) const {
  const Series* s = find(name, labels);
  return s != nullptr ? s->value : 0.0;
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snapshot;
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  snapshot.series.reserve(reg.instruments.size());
  for (const Instrument& inst : reg.instruments) {
    MetricsSnapshot::Series s;
    s.name = inst.name;
    s.labels = inst.labels;
    s.help = inst.help;
    s.kind = inst.kind;
    switch (inst.kind) {
      case Kind::Counter:
        s.value = static_cast<double>(inst.counter->value());
        break;
      case Kind::Gauge:
        s.value = inst.gauge->value();
        break;
      case Kind::Histogram: {
        const LogHistogram::Totals t = inst.histogram->totals();
        s.buckets.resize(LogHistogram::kBuckets);
        std::uint64_t cumulative = 0;
        for (int i = 0; i < LogHistogram::kBuckets; ++i) {
          cumulative += t.buckets[i];
          s.buckets[static_cast<std::size_t>(i)] = cumulative;
        }
        s.count = t.count;
        s.sum = t.sum;
        break;
      }
    }
    snapshot.series.push_back(std::move(s));
  }
  std::sort(snapshot.series.begin(), snapshot.series.end(),
            [](const MetricsSnapshot::Series& a,
               const MetricsSnapshot::Series& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snapshot;
}

double histogram_quantile(const MetricsSnapshot::Series& series, double q) {
  if (series.kind != MetricsSnapshot::Kind::Histogram ||
      series.count == 0 || series.buckets.empty() || !(q >= 0) || q > 1) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Rank of the target observation among `count` (1-based, like
  // Prometheus histogram_quantile); buckets are cumulative.
  const double rank = q * static_cast<double>(series.count);
  std::size_t bucket = 0;
  while (bucket + 1 < series.buckets.size() &&
         static_cast<double>(series.buckets[bucket]) < rank) {
    ++bucket;
  }
  const int last = static_cast<int>(series.buckets.size()) - 1;
  if (static_cast<int>(bucket) >= last) {
    // Overflow bucket has no finite upper bound; report the largest
    // finite boundary (Prometheus does the same).
    return LogHistogram::bucket_le(last - 1);
  }
  const double hi = LogHistogram::bucket_le(static_cast<int>(bucket));
  const double lo =
      bucket == 0 ? 0.0 : LogHistogram::bucket_le(static_cast<int>(bucket) - 1);
  const std::uint64_t below = bucket == 0 ? 0 : series.buckets[bucket - 1];
  const std::uint64_t in_bucket = series.buckets[bucket] - below;
  if (in_bucket == 0) return hi;
  const double frac =
      (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
  return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
}

void MetricsSnapshot::write_prometheus(std::ostream& out) const {
  std::string current_family;
  for (const Series& s : series) {
    if (s.name != current_family) {
      current_family = s.name;
      if (!s.help.empty()) {
        std::string help;
        for (char c : s.help) {
          if (c == '\\') {
            help += "\\\\";
          } else if (c == '\n') {
            help += "\\n";
          } else {
            help += c;
          }
        }
        out << "# HELP " << s.name << " " << help << "\n";
      }
      const char* type = s.kind == Kind::Counter    ? "counter"
                         : s.kind == Kind::Gauge    ? "gauge"
                                                    : "histogram";
      out << "# TYPE " << s.name << " " << type << "\n";
    }
    if (s.kind == Kind::Histogram) {
      for (int i = 0; i < LogHistogram::kBuckets; ++i) {
        const double le = LogHistogram::bucket_le(i);
        out << s.name << "_bucket"
            << render_label_set(s.labels, "le",
                                std::isinf(le) ? "+Inf" : format_double(le))
            << " " << s.buckets[static_cast<std::size_t>(i)] << "\n";
      }
      out << s.name << "_sum" << render_label_set(s.labels) << " "
          << format_double(s.sum) << "\n";
      out << s.name << "_count" << render_label_set(s.labels) << " "
          << s.count << "\n";
    } else {
      out << s.name << render_label_set(s.labels) << " "
          << format_double(s.value) << "\n";
    }
  }
}

namespace {

void write_json_labels(std::ostream& out, const MetricLabels& labels) {
  out << "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ",";
    first = false;
    out << json_quote(k) << ":" << json_quote(v);
  }
  out << "}";
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& out) const {
  auto write_section = [&](const char* section, Kind kind, bool last) {
    out << "  " << json_quote(section) << ": [";
    bool first = true;
    for (const Series& s : series) {
      if (s.kind != kind) continue;
      out << (first ? "\n" : ",\n") << "    {\"name\":" << json_quote(s.name)
          << ",";
      first = false;
      write_json_labels(out, s.labels);
      if (kind == Kind::Histogram) {
        out << ",\"count\":" << s.count << ",\"sum\":" << format_double(s.sum)
            << ",\"buckets\":[";
        for (int i = 0; i < LogHistogram::kBuckets; ++i) {
          if (i > 0) out << ",";
          const double le = LogHistogram::bucket_le(i);
          out << "{\"le\":";
          if (std::isinf(le)) {
            out << "\"+Inf\"";
          } else {
            out << format_double(le);
          }
          out << ",\"count\":" << s.buckets[static_cast<std::size_t>(i)]
              << "}";
        }
        out << "]}";
      } else {
        out << ",\"value\":" << format_double(s.value) << "}";
      }
    }
    out << (first ? "]" : "\n  ]") << (last ? "\n" : ",\n");
  };
  out << "{\n";
  write_section("counters", Kind::Counter, false);
  write_section("gauges", Kind::Gauge, false);
  write_section("histograms", Kind::Histogram, true);
  out << "}\n";
}

void metrics_write(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  const bool prometheus = ext == ".prom" || ext == ".txt";
  PS_CHECK(prometheus || ext == ".json",
           "metrics export path must end in .prom, .txt, or .json: "
               << path);
  std::ofstream out(path);
  PS_CHECK(out.good(), "cannot open metrics file: " << path);
  const MetricsSnapshot snapshot = metrics_snapshot();
  if (prometheus) {
    snapshot.write_prometheus(out);
  } else {
    snapshot.write_json(out);
  }
  out.flush();
  PS_CHECK(out.good(), "write failure on metrics file: " << path);
}

std::string metrics_summary_line() {
  const MetricsSnapshot snapshot = metrics_snapshot();
  std::size_t counters = 0, gauges = 0, histograms = 0;
  for (const auto& s : snapshot.series) {
    switch (s.kind) {
      case Kind::Counter: ++counters; break;
      case Kind::Gauge: ++gauges; break;
      case Kind::Histogram: ++histograms; break;
    }
  }
  std::ostringstream oss;
  oss << "metrics: " << snapshot.series.size() << " series (" << counters
      << " counters, " << gauges << " gauges, " << histograms
      << " histograms)";
  return oss.str();
}

}  // namespace pipesched
