// Minimal CSV and JSON-lines writers. Every bench binary mirrors its
// printed table into a CSV file so results can be post-processed without
// re-running; the corpus runner additionally exports per-block records as
// JSONL for machine consumption.
//
// Both writers fail loudly: the stream state is checked after every row
// and on flush()/close(), so a full disk truncates an export with an
// exception instead of silently dropping rows.
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pipesched {

/// Row-oriented CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws pipesched::Error on failure.
  explicit CsvWriter(const std::string& path);

  /// Destructor flushes; a failure at that point can only warn on stderr
  /// (call close() explicitly to get the exception).
  ~CsvWriter();

  /// Write a header or data row. Throws Error if the stream went bad.
  void row(const std::vector<std::string>& cells);

  /// Convenience: stringify each cell with operator<<.
  template <typename... Ts>
  void row_of(const Ts&... cells) {
    std::vector<std::string> out;
    (out.push_back(to_cell(cells)), ...);
    row(out);
  }

  /// Flush buffered rows; throws Error if the underlying write failed
  /// (e.g. disk full).
  void flush();

  /// Flush and close; throws Error on any pending write failure. The
  /// writer is unusable afterwards.
  void close();

  const std::string& path() const { return path_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream oss;
    oss << v;
    return oss.str();
  }

  static std::string quote(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  bool closed_ = false;
};

/// JSON-lines writer: one flat JSON object per record. Usage:
///   JsonlWriter out(path);
///   out.begin(); out.field("n", 3); out.field("name", "x"); out.end();
/// Same loud-failure contract as CsvWriter.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();

  void begin();                                     ///< open an object
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, bool value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, int value);
  /// Emit an already-rendered JSON value (number, true/false, null)
  /// verbatim — for callers that pre-stringify their fields.
  void field_raw(const std::string& key, const std::string& rendered);
  void end();                                       ///< close + newline

  void flush();
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  bool in_object_ = false;
  bool first_field_ = true;
  bool closed_ = false;
};

/// Quote + escape `s` as a JSON string literal (including the quotes).
std::string json_quote(const std::string& s);

}  // namespace pipesched
