// Minimal CSV writer. Every bench binary mirrors its printed table into a
// CSV file so results can be post-processed without re-running.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pipesched {

/// Row-oriented CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws pipesched::Error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write a header or data row.
  void row(const std::vector<std::string>& cells);

  /// Convenience: stringify each cell with operator<<.
  template <typename... Ts>
  void row_of(const Ts&... cells) {
    std::vector<std::string> out;
    (out.push_back(to_cell(cells)), ...);
    row(out);
  }

  const std::string& path() const { return path_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream oss;
    oss << v;
    return oss.str();
  }

  static std::string quote(const std::string& cell);

  std::string path_;
  std::ofstream out_;
};

}  // namespace pipesched
