#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"  // json_quote

namespace pipesched {

namespace trace_detail {

std::atomic<bool> g_enabled{false};

namespace {

/// One thread's private event stream. Created on the thread's first
/// recorded event, registered with the global registry, and owned by the
/// registry for the process lifetime (threads may die before flush; a
/// dangling thread_local pointer is never followed after clear() because
/// buffers are reused, not freed).
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::string thread_name;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlive all worker threads
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    buffer->tid = static_cast<std::uint32_t>(reg.buffers.size() + 1);
    reg.buffers.push_back(std::move(owned));
  }
  return *buffer;
}

}  // namespace

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - registry().epoch)
          .count());
}

void record(TraceEvent::Phase phase, const char* name, std::uint64_t ts_us,
            std::uint64_t dur_us, double value) {
  ThreadBuffer& buffer = local_buffer();
  TraceEvent& e = buffer.events.emplace_back();
  e.name = name;
  e.phase = phase;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.value = value;
  e.tid = buffer.tid;
}

}  // namespace trace_detail

void trace_enable() {
  if (trace_enabled()) return;
  trace_clear();
  {
    auto& reg = trace_detail::registry();
    std::lock_guard lock(reg.mutex);
    reg.epoch = std::chrono::steady_clock::now();
  }
  trace_detail::g_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() {
  trace_detail::g_enabled.store(false, std::memory_order_relaxed);
}

void trace_clear() {
  auto& reg = trace_detail::registry();
  std::lock_guard lock(reg.mutex);
  for (auto& buffer : reg.buffers) buffer->events.clear();
}

void trace_set_thread_name(const std::string& name) {
  if (!trace_enabled()) return;
  trace_detail::local_buffer().thread_name = name;
}

std::vector<TraceEvent> trace_snapshot() {
  auto& reg = trace_detail::registry();
  std::vector<TraceEvent> merged;
  {
    std::lock_guard lock(reg.mutex);
    for (const auto& buffer : reg.buffers) {
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return merged;
}

void trace_write_json(std::ostream& out) {
  // Thread-name metadata first, then the events in timestamp order. The
  // pid is constant (single-process tool); tids are the collector's own
  // per-thread track ids.
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  {
    auto& reg = trace_detail::registry();
    std::lock_guard lock(reg.mutex);
    for (const auto& buffer : reg.buffers) {
      if (buffer->thread_name.empty()) continue;
      sep();
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << buffer->tid << ",\"args\":{\"name\":"
          << json_quote(buffer->thread_name) << "}}";
    }
  }
  for (const TraceEvent& e : trace_snapshot()) {
    sep();
    out << "{\"name\":" << json_quote(e.name) << ",\"pid\":1,\"tid\":"
        << e.tid << ",\"ts\":" << e.ts_us;
    switch (e.phase) {
      case TraceEvent::Phase::Complete:
        out << ",\"ph\":\"X\",\"dur\":" << e.dur_us;
        break;
      case TraceEvent::Phase::Counter:
        out << ",\"ph\":\"C\",\"args\":{\"value\":" << e.value << "}";
        break;
      case TraceEvent::Phase::Instant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
    }
    out << "}";
  }
  if (!first) out << "\n";
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void trace_write_json(const std::string& path) {
  std::ofstream out(path);
  PS_CHECK(out.good(), "cannot open trace file: " << path);
  trace_write_json(out);
  out.flush();
  PS_CHECK(out.good(), "write failure on trace file: " << path);
}

}  // namespace pipesched
