#include "util/dominance_cache.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace pipesched {

namespace {

/// Smallest table worth allocating: 1024 entries = 16 KiB.
constexpr std::size_t kMinEntries = 1024;

std::size_t floor_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

std::size_t ceil_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p *= 2;
  return p;
}

}  // namespace

ZobristKeys::ZobristKeys(std::size_t elements, std::uint64_t seed) {
  Rng rng(seed);
  keys_.reserve(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    keys_.push_back(rng.next_u64());
  }
}

DominanceCache::DominanceCache(std::size_t max_bytes) {
  max_entries_ =
      std::max(kMinEntries, floor_pow2(max_bytes / sizeof(Entry)));
  entries_.assign(std::min(kMinEntries, max_entries_), Entry{});
}

DominanceCache::~DominanceCache() {
  // Substrate-level view of cache behavior, distinct from the per-search
  // ps_search_cache_events_total family: these describe the table itself
  // (how full it ran, how much it churned), accumulated as each
  // per-search cache retires.
  if (!metrics_enabled() || stats_.probes == 0) return;
  static Gauge& entries = metrics_gauge(
      "ps_dominance_cache_entries", {},
      "Occupied entries in the most recently retired dominance cache");
  static Gauge& cap = metrics_gauge(
      "ps_dominance_cache_capacity", {},
      "Slot capacity of the most recently retired dominance cache");
  static Counter& inserts = metrics_counter(
      "ps_dominance_cache_inserts_total", {},
      "Entries created across all retired dominance caches");
  static Counter& evictions = metrics_counter(
      "ps_dominance_cache_evictions_total", {},
      "Entries displaced across all retired dominance caches");
  static Counter& superseded = metrics_counter(
      "ps_dominance_cache_superseded_total", {},
      "Cached costs improved in place across all retired caches");
  static Counter& verified_rejects = metrics_counter(
      "ps_dominance_cache_verified_rejects_total", {},
      "Probes whose 64-bit key matched but whose verification word did "
      "not, across all retired caches");
  entries.set(static_cast<double>(used_));
  cap.set(static_cast<double>(entries_.size()));
  inserts.add(stats_.inserts);
  evictions.add(stats_.evictions);
  superseded.add(stats_.superseded);
  verified_rejects.add(stats_.verified_rejects);
}

bool DominanceCache::place(std::vector<Entry>& table, const Entry& e) {
  const std::size_t mask = table.size() - 1;
  for (std::size_t w = 0; w < kProbeWindow; ++w) {
    Entry& slot = table[(e.key + w) & mask];
    if (slot.key == 0) {
      slot = e;
      return true;
    }
  }
  return false;
}

void DominanceCache::maybe_grow() {
  if (used_ * 2 < entries_.size() || entries_.size() >= max_entries_) return;
  std::vector<Entry> bigger(entries_.size() * 2, Entry{});
  std::size_t kept = 0;
  for (const Entry& e : entries_) {
    if (e.key != 0 && place(bigger, e)) ++kept;
  }
  // Entries that no longer fit their probe window are simply dropped:
  // the cache is a pruning accelerator, never a correctness requirement.
  stats_.evictions += used_ - kept;
  used_ = kept;
  entries_ = std::move(bigger);
}

bool DominanceCache::probe_and_update(std::uint64_t key, std::uint64_t verify,
                                      int depth, int cost) {
  PS_ASSERT(depth >= 0 && depth < (1 << 16));
  if (key == 0) key = 0x9e3779b97f4a7c15ull;  // 0 marks empty slots
  ++stats_.probes;

  const std::size_t mask = entries_.size() - 1;
  const auto depth16 = static_cast<std::uint16_t>(depth);
  std::size_t victim = key & mask;
  for (std::size_t w = 0; w < kProbeWindow; ++w) {
    const std::size_t idx = (key + w) & mask;
    Entry& e = entries_[idx];
    if (e.key == 0) {
      e.key = key;
      e.verify = verify;
      e.cost = cost;
      e.depth = depth16;
      ++used_;
      ++stats_.misses;
      ++stats_.inserts;
      maybe_grow();
      return false;
    }
    if (e.key == key && e.depth == depth16) {
      if (e.verify == verify) {
        if (e.cost <= cost) {
          ++stats_.hits;
          return true;
        }
        e.cost = cost;
        ++stats_.misses;
        ++stats_.superseded;
        return false;
      }
      // Full-word key collision between two DISTINCT states: treating
      // this entry as a transposition would prune a subtree that is not
      // dominated. Count the near-miss and treat the slot as a stranger;
      // it stays eligible as a replacement victim below.
      ++stats_.verified_rejects;
    }
    // Replacement policy: keep the shallowest states — they guard the
    // largest subtrees — and among equal depths keep the cheaper (stronger
    // dominator). The victim is the most expendable entry in the window.
    const Entry& v = entries_[victim];
    if (e.depth > v.depth || (e.depth == v.depth && e.cost > v.cost)) {
      victim = idx;
    }
  }

  Entry& v = entries_[victim];
  if (v.depth >= depth16) {
    v.key = key;
    v.verify = verify;
    v.cost = cost;
    v.depth = depth16;
    ++stats_.evictions;
  }
  ++stats_.misses;
  return false;
}

ShardedDominanceCache::ShardedDominanceCache(std::size_t max_bytes,
                                             std::size_t shards) {
  const std::size_t count = ceil_pow2(std::max<std::size_t>(1, shards));
  shard_mask_ = count - 1;
  const std::size_t per_shard = std::max<std::size_t>(1, max_bytes / count);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

bool ShardedDominanceCache::probe_and_update(std::uint64_t key,
                                             std::uint64_t verify, int depth,
                                             int cost,
                                             DominanceCacheStats& local) {
  // High bits pick the shard; the shard's table indexes with the low bits
  // (key & size-1), so the two selections never correlate.
  Shard& shard = *shards_[(key >> 48) & shard_mask_];
  std::lock_guard lock(shard.mutex);
  const DominanceCacheStats before = shard.cache.stats();
  const bool dominated =
      shard.cache.probe_and_update(key, verify, depth, cost);
  const DominanceCacheStats& after = shard.cache.stats();
  local.probes += after.probes - before.probes;
  local.hits += after.hits - before.hits;
  local.misses += after.misses - before.misses;
  local.inserts += after.inserts - before.inserts;
  local.evictions += after.evictions - before.evictions;
  local.superseded += after.superseded - before.superseded;
  local.verified_rejects += after.verified_rejects - before.verified_rejects;
  return dominated;
}

DominanceCacheStats ShardedDominanceCache::stats() const {
  DominanceCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    const DominanceCacheStats& s = shard->cache.stats();
    total.probes += s.probes;
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
    total.superseded += s.superseded;
    total.verified_rejects += s.verified_rejects;
  }
  return total;
}

std::size_t ShardedDominanceCache::capacity() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->cache.capacity();
  }
  return total;
}

}  // namespace pipesched
