// Graceful SIGINT/SIGTERM handling for the long-running entry points.
//
// Before this existed, Ctrl-C on a multi-minute corpus run killed the
// process mid-write: the --metrics/--trace/--profile outputs the user
// asked for were silently lost and a tty progress line was left
// half-drawn. install_graceful_interrupt() turns both signals into an
// orderly shutdown: a registered cleanup callback flushes whatever
// observability outputs are pending (and stops the embedded HTTP server
// if one is serving), then the process exits with the conventional
// 128+signo status.
//
// Mechanism: the calling thread BLOCKS both signals (call this early,
// before spawning worker threads, so every later thread inherits the
// mask) and a small detached watcher thread sigwait()s on them. Unlike
// an async signal handler, the watcher is an ordinary thread — the
// cleanup may take locks, allocate, and do file I/O freely. The watcher
// runs the cleanup at most once, then _Exit()s: static destructors are
// deliberately skipped because worker threads are still mid-task and
// tearing their state down under them is exactly the crash this module
// exists to avoid. Cleanups must flush the streams they care about.
#pragma once

#include <functional>

namespace pipesched {

/// Install (or replace) the interrupt cleanup. First call blocks
/// SIGINT/SIGTERM in the calling thread and starts the watcher; later
/// calls only swap the callback. The callback receives the signal
/// number; exceptions it throws are swallowed (best-effort flush).
void install_graceful_interrupt(std::function<void(int)> cleanup);

/// True once a graceful interrupt is in flight (the cleanup is running
/// or about to). Long loops may poll this to stop early.
bool interrupt_requested();

}  // namespace pipesched
