#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace pipesched {

namespace {

/// Pending tasks across all pools, maintained as an up/down gauge
/// (+1 on submit, -1 on dequeue) so concurrent pools compose.
Gauge& queue_depth_gauge() {
  static Gauge& g = metrics_gauge("ps_thread_pool_queue_depth", {},
                                  "Tasks queued but not yet started");
  return g;
}

Counter& tasks_counter() {
  static Counter& c = metrics_counter("ps_thread_pool_tasks_total", {},
                                      "Tasks executed to completion");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, const std::string& name_prefix) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i, name_prefix] {
      // Name the worker's trace track so corpus timelines read
      // "pool-worker-3" instead of a bare tid (no-op while tracing is
      // off; cheap either way, it runs once per thread).
      trace_set_thread_name(name_prefix + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PS_ASSERT(task);
  {
    std::unique_lock lock(mutex_);
    PS_ASSERT(!stopping_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  queue_depth_gauge().add(1);
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    queue_depth_gauge().add(-1);
    task();
    tasks_counter().increment();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunk so each worker gets several chunks (load balance) without
  // per-index queue overhead.
  const std::size_t chunks = std::min(count, pool.thread_count() * 8);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  // A worker exception must not std::terminate the process (a single bad
  // block would destroy a whole corpus run): capture the first one and
  // rethrow it on the submitting thread once the pool is idle. Chunks
  // that start after a failure bail out immediately — their indices are
  // abandoned, which is fine because the batch as a whole throws.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};

  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, count);
    pool.submit([begin, end, &fn, &error_mutex, &first_error, &failed] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pipesched
