#include "util/json.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace pipesched {

bool JsonValue::as_bool() const {
  PS_CHECK(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  PS_CHECK(kind_ == Kind::Number, "JSON value is not a number");
  return integer_ ? static_cast<double>(int_) : number_;
}

std::int64_t JsonValue::as_int64() const {
  PS_CHECK(is_integer(), "JSON value is not an exact integer");
  return int_;
}

const std::string& JsonValue::as_string() const {
  PS_CHECK(kind_ == Kind::String, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  PS_CHECK(kind_ == Kind::Array, "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  PS_CHECK(kind_ == Kind::Object, "JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(
    const std::vector<std::string>& keys) const {
  const JsonValue* v = this;
  for (const std::string& key : keys) {
    v = v->find(key);
    if (v == nullptr) return nullptr;
  }
  return v;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_integer(std::int64_t n) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.integer_ = true;
  v.int_ = n;
  v.number_ = static_cast<double>(n);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    PS_CHECK(pos_ == text_.size(),
             "JSON: trailing content at byte " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON: " + what + " at byte " + std::to_string(pos_));
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return JsonValue::make_array(std::move(items));
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("bad \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            expect('\\');
            expect('u');
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    // Integer part: "0" or a nonzero-led run (JSON forbids leading zeros).
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail("bad number");
    }
    bool integer_syntax = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integer_syntax = false;
      ++pos_;
      if (digits() == 0) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integer_syntax = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad number: no exponent digits");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integer_syntax) {
      // Keep integer-syntax tokens exact when they fit int64; doubles
      // round everything past 2^53, which the exact-compare consumers
      // (bench_diff correctness fields, the result-cache records) cannot
      // tolerate. Out-of-range integers fall through to the double path.
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::make_integer(static_cast<std::int64_t>(parsed));
      }
    }
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  PS_CHECK(in.good(), "cannot open JSON file: " << path);
  std::ostringstream oss;
  oss << in.rdbuf();
  try {
    return parse_json(oss.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

std::vector<JsonValue> parse_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  PS_CHECK(in.good(), "cannot open JSONL file: " << path);
  std::vector<JsonValue> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    try {
      out.push_back(parse_json(line));
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
  }
  return out;
}

}  // namespace pipesched
