// Small string helpers shared by parsers and report printers.
#pragma once

#include <string>
#include <vector>

namespace pipesched {

/// Strip leading/trailing whitespace.
std::string trim(const std::string& s);

/// Split on a delimiter character; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// True when `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Format a count with thousands separators, e.g. 1307674368000 ->
/// "1,307,674,368,000" (used by the Table 1 reproduction).
std::string with_commas(unsigned long long n);

/// Format a double with `digits` significant digits, scientific when large.
std::string compact_double(double v, int digits = 3);

/// Pad or truncate to an exact column width (left-aligned).
std::string pad_right(const std::string& s, std::size_t width);

/// Pad on the left (right-aligned).
std::string pad_left(const std::string& s, std::size_t width);

}  // namespace pipesched
