// Streaming statistics accumulators for the experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <vector>

namespace pipesched {

/// Single-pass accumulator: count, mean (Welford), min, max, stddev.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integer-keyed histogram (e.g. block-size distributions).
class Histogram {
 public:
  void add(long key, double weight = 1.0);

  const std::map<long, double>& bins() const { return bins_; }
  double total() const { return total_; }
  long min_key() const;
  long max_key() const;

 private:
  std::map<long, double> bins_;
  double total_ = 0.0;
};

/// Values grouped by integer key, each group an Accumulator
/// (e.g. "average NOPs per block size").
class GroupedStats {
 public:
  void add(long key, double value);
  const std::map<long, Accumulator>& groups() const { return groups_; }

 private:
  std::map<long, Accumulator> groups_;
};

/// Exact percentile over a retained sample (used for figure summaries).
/// Sorts its copy of the sample — for several percentiles of one sample,
/// use quantiles(), which sorts once.
double percentile(std::vector<double> values, double p);

/// Multi-quantile: the percentiles `ps` (each in [0, 100], any order) of
/// one sample, sorting the sample exactly once. Returns one value per
/// entry of `ps`, aligned with it. Linear interpolation between order
/// statistics, matching percentile().
std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& ps);

}  // namespace pipesched
