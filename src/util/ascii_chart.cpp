#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace pipesched {

namespace {

struct Range {
  double lo = 0;
  double hi = 1;

  double clamp01(double v) const {
    if (hi <= lo) return 0.5;
    return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  }
};

Range find_range(const std::vector<double>& values) {
  Range r{std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  for (double v : values) {
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  if (!std::isfinite(r.lo)) return {0, 1};
  if (r.hi == r.lo) r.hi = r.lo + 1;
  return r;
}

double to_log(double y, double floor_value) {
  return std::log10(std::max(y, floor_value));
}

std::string format_tick(double v, bool log_scale) {
  std::ostringstream oss;
  if (log_scale) {
    oss << "1e" << std::setprecision(2) << v;
  } else if (std::abs(v) >= 1000 || (v != 0 && std::abs(v) < 0.01)) {
    oss << std::scientific << std::setprecision(1) << v;
  } else {
    oss << std::fixed << std::setprecision(std::abs(v) < 10 ? 2 : 1) << v;
  }
  return oss.str();
}

class Canvas {
 public:
  Canvas(const ChartOptions& options) : opt_(options) {
    grid_.assign(static_cast<std::size_t>(opt_.height),
                 std::string(static_cast<std::size_t>(opt_.width), ' '));
    hits_.assign(static_cast<std::size_t>(opt_.height),
                 std::vector<int>(static_cast<std::size_t>(opt_.width), 0));
  }

  void plot(double xf, double yf, char glyph) {
    const int col = std::clamp(
        static_cast<int>(xf * (opt_.width - 1) + 0.5), 0, opt_.width - 1);
    const int row = std::clamp(
        static_cast<int>((1.0 - yf) * (opt_.height - 1) + 0.5), 0,
        opt_.height - 1);
    auto& cell = grid_[static_cast<std::size_t>(row)]
                      [static_cast<std::size_t>(col)];
    int& hit = hits_[static_cast<std::size_t>(row)]
                    [static_cast<std::size_t>(col)];
    ++hit;
    if (glyph != '\0') {
      cell = glyph;
    } else {
      cell = hit >= 10 ? '#' : hit >= 4 ? '*' : hit >= 2 ? ':' : '.';
    }
  }

  std::string render(const Range& xr, const Range& yr, bool log_y) const {
    std::ostringstream out;
    if (!opt_.title.empty()) out << opt_.title << '\n';
    if (!opt_.y_label.empty())
      out << opt_.y_label << (log_y ? " (log scale)" : "") << '\n';
    for (int row = 0; row < opt_.height; ++row) {
      const double frac = 1.0 - static_cast<double>(row) / (opt_.height - 1);
      const double yv = yr.lo + frac * (yr.hi - yr.lo);
      const bool tick = row == 0 || row == opt_.height - 1 ||
                        row == opt_.height / 2;
      out << std::setw(10) << (tick ? format_tick(yv, log_y) : "") << " |"
          << grid_[static_cast<std::size_t>(row)] << '\n';
    }
    out << std::string(10, ' ') << " +"
        << std::string(static_cast<std::size_t>(opt_.width), '-') << '\n';
    out << std::string(10, ' ') << "  " << format_tick(xr.lo, false)
        << std::string(
               std::max<std::size_t>(
                   1, static_cast<std::size_t>(opt_.width) -
                          format_tick(xr.lo, false).size() -
                          format_tick(xr.hi, false).size()),
               ' ')
        << format_tick(xr.hi, false);
    if (!opt_.x_label.empty()) out << "   " << opt_.x_label;
    out << '\n';
    return out.str();
  }

 private:
  ChartOptions opt_;
  std::vector<std::string> grid_;
  std::vector<std::vector<int>> hits_;
};

// Shared implementation for scatter/line/multi-line charts.
std::string render_points(
    const std::vector<std::pair<char, std::vector<ChartPoint>>>& layers,
    const ChartOptions& options, std::string legend) {
  std::vector<double> xs;
  std::vector<double> ys;
  const double log_floor = 0.5;  // zero counts sit on the axis floor
  for (const auto& [glyph, pts] : layers) {
    for (const auto& p : pts) {
      xs.push_back(p.x);
      ys.push_back(options.log_y ? to_log(p.y, log_floor) : p.y);
    }
  }
  if (xs.empty()) return options.title + "\n(no data)\n";
  const Range xr = find_range(xs);
  Range yr = find_range(ys);
  if (!options.log_y) yr.lo = std::min(yr.lo, 0.0);

  Canvas canvas(options);
  for (const auto& [glyph, pts] : layers) {
    for (const auto& p : pts) {
      const double yv = options.log_y ? to_log(p.y, log_floor) : p.y;
      canvas.plot(xr.clamp01(p.x), yr.clamp01(yv), glyph);
    }
  }
  std::string out = canvas.render(xr, yr, options.log_y);
  if (!legend.empty()) out += legend + '\n';
  return out;
}

std::vector<ChartPoint> series_means(const GroupedStats& series) {
  std::vector<ChartPoint> pts;
  for (const auto& [key, acc] : series.groups()) {
    pts.push_back({static_cast<double>(key), acc.mean()});
  }
  return pts;
}

}  // namespace

std::string render_scatter(const std::vector<ChartPoint>& points,
                           const ChartOptions& options) {
  return render_points({{'\0', points}}, options, "");
}

std::string render_line(const GroupedStats& series,
                        const ChartOptions& options) {
  return render_points({{'*', series_means(series)}}, options, "");
}

std::string render_lines(
    const std::vector<std::pair<std::string, GroupedStats>>& series,
    const ChartOptions& options) {
  static const char kGlyphs[] = {'*', 'o', '+', 'x', '@', '%'};
  std::vector<std::pair<char, std::vector<ChartPoint>>> layers;
  std::string legend = "  legend:";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const char glyph = kGlyphs[i % sizeof(kGlyphs)];
    layers.emplace_back(glyph, series_means(series[i].second));
    legend += std::string("  ") + glyph + " = " + series[i].first;
  }
  return render_points(layers, options, legend);
}

std::string render_histogram(const Histogram& hist,
                             const ChartOptions& options) {
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (hist.bins().empty()) {
    out << "(no data)\n";
    return out.str();
  }
  double max_bin = 0;
  for (const auto& [key, v] : hist.bins()) max_bin = std::max(max_bin, v);
  PS_ASSERT(max_bin > 0);
  for (const auto& [key, v] : hist.bins()) {
    const int bar = static_cast<int>(v / max_bin * options.width + 0.5);
    out << std::setw(8) << key << " |"
        << std::string(static_cast<std::size_t>(bar), '#') << ' '
        << v << '\n';
  }
  if (!options.x_label.empty()) out << "  (rows: " << options.x_label << ")\n";
  return out.str();
}

}  // namespace pipesched
