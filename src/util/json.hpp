// Minimal JSON reader for the tooling layer.
//
// The repo's exporters (JsonlWriter, trace_write_json,
// write_corpus_bench_json, metrics JSON snapshots) only ever *write* JSON;
// the bench regression gate and the test suite also need to *read* it back
// — without adding an external dependency. This is a small, strict,
// recursive-descent parser over the full JSON grammar (RFC 8259): objects
// preserve key order, \uXXXX escapes decode to UTF-8 (surrogate pairs
// included). Malformed input throws pipesched::Error with a byte offset,
// never yields a half-parsed value.
//
// Numbers: integer-syntax tokens (no '.', no exponent) that fit int64 are
// kept EXACTLY (is_integer()/as_int64()) instead of being routed through a
// double — u64-scale counters like omega-call totals exceed 2^53 on long
// uptimes, and a silently rounded value would make bench_diff's exact
// comparisons pass (or fail) on the wrong number. Everything else parses
// as a double, and as_number() still works for both shapes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pipesched {

/// One parsed JSON value. A tagged union kept deliberately simple:
/// accessors check the kind (throwing Error on mismatch) so consumers can
/// chain lookups without defensive branching.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// True for numbers carrying an exact int64 (integer-syntax token in
  /// range, or make_integer). as_number() works on these too, with the
  /// usual precision loss above 2^53.
  bool is_integer() const { return kind_ == Kind::Number && integer_; }

  /// Checked accessors: throw pipesched::Error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;

  /// Exact integer value; throws unless is_integer().
  std::int64_t as_int64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup (first match); null when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Nested lookup: find("a")->find("b") without the null checks; null as
  /// soon as any step is absent.
  const JsonValue* find_path(const std::vector<std::string>& keys) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_integer(std::int64_t n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  bool integer_ = false;     ///< number carries an exact int64 in int_
  double number_ = 0;
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
JsonValue parse_json(const std::string& text);

/// Parse the JSON document stored at `path`; throws Error on I/O failure.
JsonValue parse_json_file(const std::string& path);

/// Parse a JSON-lines file: one document per non-empty line.
std::vector<JsonValue> parse_jsonl_file(const std::string& path);

}  // namespace pipesched
