// Process-wide metrics registry: typed instruments (monotonic counters,
// gauges, log2-bucketed histograms) with static labels, exported as a
// point-in-time Snapshot in Prometheus text exposition format or JSON.
//
// This is the fleet-telemetry counterpart to the trace collector
// (trace.hpp): traces answer "what did THIS run do, microsecond by
// microsecond"; metrics answer "what has the process done so far" in a
// form scrapers, dashboards, and the bench regression gate can consume.
//
// Design constraints, in order (mirroring the trace collector):
//   1. Disabled cost ~0. Metrics are off by default; an inactive add() or
//      observe() is one relaxed atomic load and a predictable branch — no
//      clock read, no lock, no allocation. The <2% corpus overhead budget
//      is measured in EXPERIMENTS.md.
//   2. No locks on the hot path when enabled. Counters and histograms
//      accumulate into per-thread cells: the first touch from a thread
//      registers a cell under the registry mutex, every later update is a
//      wait-free relaxed atomic add on thread-local state. Gauges are a
//      single relaxed atomic (their writers — e.g. the thread-pool queue
//      depth — are already serialized by the owner's own lock).
//   3. Reads never stop writers. value()/metrics_snapshot() sum the cells
//      with relaxed loads concurrent with updates: each cell is exact,
//      the cross-cell sum is a point-in-time value that may trail
//      in-flight increments by a few — fine for telemetry, and the test
//      suite only asserts exact totals at quiescence.
//
// Identity and lifetime: an instrument is (name, sorted label set). The
// factories return the SAME instrument for a duplicate registration, and
// throw pipesched::Error when the name is reused with a different type or
// violates the Prometheus naming grammar. Instruments live for the
// process lifetime (references never dangle; threads may die freely —
// their cells stay owned by the instrument).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pipesched {

/// Static labels, e.g. {{"rule", "alpha_beta"}}. Sorted by key at
/// registration so {a=1,b=2} and {b=2,a=1} name the same series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace metrics_detail {

extern std::atomic<bool> g_enabled;

/// One thread's accumulation cell, cache-line-aligned so two threads'
/// cells never share a line. `sum` uses a CAS loop (single writer, so it
/// succeeds first try) because atomic<double>::fetch_add is not portable.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0};
};

inline void atomic_add_double(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

}  // namespace metrics_detail

/// Is the registry recording? Inline so the disabled fast path is one
/// relaxed load + branch at every instrumentation site.
inline bool metrics_enabled() {
  return metrics_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Start recording. Unlike trace_enable() this does NOT clear existing
/// values: metrics are cumulative process totals. Call metrics_reset()
/// for a fresh window (tests do).
void metrics_enable();
void metrics_disable();

/// Zero every registered instrument (registrations are kept).
void metrics_reset();

class MetricsRegistry;

/// Monotonic counter. add() is wait-free per thread after the thread's
/// first touch; value() is the relaxed sum over all threads' cells.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled() || n == 0) return;
    cell().count.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t id) : id_(id) {}
  metrics_detail::Cell& cell();

  const std::uint32_t id_;
  mutable std::mutex mutex_;  ///< guards cells_ growth only
  std::vector<std::unique_ptr<metrics_detail::Cell>> cells_;
};

/// Last-write-wins gauge (doubles as an up/down counter via add()).
/// A single relaxed atomic: gauge writers are rare and typically already
/// serialized (queue depth is set under the pool mutex), so per-thread
/// sharding would only blur "current value" semantics.
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (!metrics_enabled()) return;
    metrics_detail::atomic_add_double(value_, d);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0};
};

/// Log2-bucketed histogram over positive doubles (seconds in practice).
/// Bucket k covers (2^(k-1), 2^k]: upper bounds run 2^kMinExp .. 2^kMaxExp
/// (≈0.95us to ~1.1h when observing seconds) plus a +Inf overflow bucket;
/// values <= 2^kMinExp land in the first bucket. Exact boundary values
/// belong to the bucket they bound (le semantics, like Prometheus).
class LogHistogram {
 public:
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 12;
  /// Finite buckets + the +Inf overflow bucket.
  static constexpr int kBuckets = kMaxExp - kMinExp + 2;

  void observe(double value);

  /// Upper bound of bucket `index` (+infinity for the last).
  static double bucket_le(int index);

  /// Index of the bucket `value` falls into.
  static int bucket_index(double value);

  /// Point-in-time totals (non-cumulative per-bucket counts).
  struct Totals {
    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    double sum = 0;
  };
  Totals totals() const;

 private:
  friend class MetricsRegistry;
  explicit LogHistogram(std::uint32_t id) : id_(id) {}

  struct alignas(64) HistoCell {
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0};
  };
  HistoCell& cell();

  const std::uint32_t id_;
  mutable std::mutex mutex_;  ///< guards cells_ growth only
  std::vector<std::unique_ptr<HistoCell>> cells_;
};

/// Find-or-create factories on the process-wide registry. Thread-safe;
/// intended for one-time registration cached in a static reference:
///   static Counter& c = metrics_counter("ps_foo_total", {}, "what it is");
/// Throws pipesched::Error on an invalid name/label or when `name` is
/// already registered as a different instrument type.
Counter& metrics_counter(const std::string& name,
                         const MetricLabels& labels = {},
                         const std::string& help = "");
Gauge& metrics_gauge(const std::string& name, const MetricLabels& labels = {},
                     const std::string& help = "");
LogHistogram& metrics_histogram(const std::string& name,
                                const MetricLabels& labels = {},
                                const std::string& help = "");

/// Point-in-time export of every registered series, sorted by
/// (name, labels) so successive snapshots diff cleanly.
struct MetricsSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  struct Series {
    std::string name;
    MetricLabels labels;
    std::string help;
    Kind kind = Kind::Counter;
    double value = 0;  ///< counter (exact integer) or gauge reading
    /// Histogram payload (kind == Histogram only); buckets are CUMULATIVE
    /// counts aligned with LogHistogram::bucket_le(i).
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0;
  };
  std::vector<Series> series;

  /// First series matching (name, labels); null when absent.
  const Series* find(const std::string& name,
                     const MetricLabels& labels = {}) const;

  /// Convenience: counter/gauge value of (name, labels), or 0 when absent.
  double value_or_zero(const std::string& name,
                       const MetricLabels& labels = {}) const;

  /// Prometheus text exposition format (text/plain; version 0.0.4): one
  /// # HELP / # TYPE pair per family, histogram series expanded into
  /// _bucket{le=...}/_sum/_count.
  void write_prometheus(std::ostream& out) const;

  /// JSON: {"counters": [...], "gauges": [...], "histograms": [...]}.
  void write_json(std::ostream& out) const;
};

MetricsSnapshot metrics_snapshot();

/// Prometheus-style quantile estimate from a snapshot histogram series:
/// find the bucket where the q-th observation lands and interpolate
/// linearly within it (log2 buckets, so the estimate is within a factor
/// of 2 of exact — the same accuracy contract Prometheus gives).
/// `q` in [0, 1]; returns NaN for a non-histogram series or zero count,
/// and the largest finite bucket bound when the quantile falls in the
/// +Inf overflow bucket.
double histogram_quantile(const MetricsSnapshot::Series& series, double q);

/// Write a snapshot to `path`, format chosen by extension: ".prom" (or
/// ".txt") = Prometheus text, ".json" = JSON. Throws Error on an unknown
/// extension or write failure.
void metrics_write(const std::string& path);

/// One human line for --stats / corpus summaries, e.g.
/// "metrics: 21 series (14 counters, 2 gauges, 5 histograms)".
std::string metrics_summary_line();

/// RAII stage timer: observes the elapsed seconds into `histogram` at
/// scope exit. Reads the clock only while metrics are enabled, so an
/// inactive timer costs one branch per end of scope.
class MetricTimer {
 public:
  explicit MetricTimer(LogHistogram& histogram)
      : histogram_(metrics_enabled() ? &histogram : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~MetricTimer() {
    if (histogram_ != nullptr) {
      histogram_->observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  MetricTimer(const MetricTimer&) = delete;
  MetricTimer& operator=(const MetricTimer&) = delete;

 private:
  LogHistogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace pipesched
