// Terminal renderings of the paper's figures.
//
// The bench binaries must stand alone (print the same series the paper
// plots), so each figure is rendered as an ASCII scatter/line/bar chart in
// addition to the CSV dump.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace pipesched {

/// One (x, y) sample.
struct ChartPoint {
  double x = 0;
  double y = 0;
};

/// Options shared by the chart renderers.
struct ChartOptions {
  int width = 72;        ///< plot-area columns
  int height = 20;       ///< plot-area rows
  bool log_y = false;    ///< log10 y axis (zeros clamped to the axis floor)
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Scatter plot; density shown as . : * # for 1, 2-3, 4-9, 10+ hits/cell.
std::string render_scatter(const std::vector<ChartPoint>& points,
                           const ChartOptions& options);

/// Line chart of per-group means (key = x, mean = y).
std::string render_line(const GroupedStats& series, const ChartOptions& options);

/// Several labelled mean-series on one set of axes, distinct glyph each.
std::string render_lines(
    const std::vector<std::pair<std::string, GroupedStats>>& series,
    const ChartOptions& options);

/// Horizontal bar chart of a histogram.
std::string render_histogram(const Histogram& hist, const ChartOptions& options);

}  // namespace pipesched
