#include "util/csv.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace pipesched {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  PS_CHECK(out_.good(), "cannot open CSV output file: " << path);
}

CsvWriter::~CsvWriter() {
  if (closed_) return;
  out_.flush();
  if (!out_.good()) {
    std::fprintf(stderr, "pipesched: warning: write failure on %s\n",
                 path_.c_str());
  }
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  PS_CHECK(!closed_, "CSV writer already closed: " << path_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote(cells[i]);
  }
  out_ << '\n';
  PS_CHECK(out_.good(), "write failure on CSV output file: " << path_);
}

void CsvWriter::flush() {
  out_.flush();
  PS_CHECK(out_.good(), "write failure on CSV output file: " << path_);
}

void CsvWriter::close() {
  flush();
  out_.close();
  closed_ = true;
  PS_CHECK(!out_.fail(), "close failure on CSV output file: " << path_);
}

std::string CsvWriter::quote(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonlWriter::JsonlWriter(const std::string& path) : path_(path), out_(path) {
  PS_CHECK(out_.good(), "cannot open JSONL output file: " << path);
}

JsonlWriter::~JsonlWriter() {
  if (closed_) return;
  out_.flush();
  if (!out_.good()) {
    std::fprintf(stderr, "pipesched: warning: write failure on %s\n",
                 path_.c_str());
  }
}

void JsonlWriter::begin() {
  PS_CHECK(!closed_, "JSONL writer already closed: " << path_);
  PS_ASSERT(!in_object_);
  out_ << '{';
  in_object_ = true;
  first_field_ = true;
}

void JsonlWriter::field_raw(const std::string& key,
                            const std::string& rendered) {
  PS_ASSERT(in_object_);
  if (!first_field_) out_ << ',';
  first_field_ = false;
  out_ << json_quote(key) << ':' << rendered;
}

void JsonlWriter::field(const std::string& key, const std::string& value) {
  field_raw(key, json_quote(value));
}

void JsonlWriter::field(const std::string& key, const char* value) {
  field_raw(key, json_quote(value));
}

void JsonlWriter::field(const std::string& key, bool value) {
  field_raw(key, value ? "true" : "false");
}

void JsonlWriter::field(const std::string& key, double value) {
  std::ostringstream oss;
  oss << value;
  field_raw(key, oss.str());
}

void JsonlWriter::field(const std::string& key, std::int64_t value) {
  field_raw(key, std::to_string(value));
}

void JsonlWriter::field(const std::string& key, std::uint64_t value) {
  field_raw(key, std::to_string(value));
}

void JsonlWriter::field(const std::string& key, int value) {
  field_raw(key, std::to_string(value));
}

void JsonlWriter::end() {
  PS_ASSERT(in_object_);
  out_ << "}\n";
  in_object_ = false;
  PS_CHECK(out_.good(), "write failure on JSONL output file: " << path_);
}

void JsonlWriter::flush() {
  out_.flush();
  PS_CHECK(out_.good(), "write failure on JSONL output file: " << path_);
}

void JsonlWriter::close() {
  flush();
  out_.close();
  closed_ = true;
  PS_CHECK(!out_.fail(), "close failure on JSONL output file: " << path_);
}

}  // namespace pipesched
