#include "util/csv.hpp"

#include "util/check.hpp"

namespace pipesched {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  PS_CHECK(out_.good(), "cannot open CSV output file: " << path);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::quote(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace pipesched
