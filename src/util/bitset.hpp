// Fixed-capacity dynamic bitset used for dependence sets.
//
// Basic blocks rarely exceed a few dozen instructions, so dependence and
// transitive-closure sets fit in one or two 64-bit words; DynBitset keeps
// the storage inline-friendly (a small std::vector) and provides only the
// operations the schedulers need, all branch-light.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pipesched {

/// Set of instruction indices in [0, size()).
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }

  bool test(std::size_t i) const {
    PS_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    PS_ASSERT(i < nbits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    PS_ASSERT(i < nbits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// *this |= other. Sizes must match.
  void merge(const DynBitset& other) {
    PS_ASSERT(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// True when every bit of *this is also set in `super`.
  bool is_subset_of(const DynBitset& super) const {
    PS_ASSERT(nbits_ == super.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~super.words_[i]) return false;
    }
    return true;
  }

  /// True when no bit is set in both.
  bool is_disjoint_from(const DynBitset& other) const {
    PS_ASSERT(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return false;
    }
    return true;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool any() const {
    for (auto w : words_) {
      if (w) return true;
    }
    return false;
  }

  bool operator==(const DynBitset& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

  /// Invoke fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pipesched
