#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace pipesched {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == delim) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string with_commas(unsigned long long n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string compact_double(double v, int digits) {
  std::ostringstream oss;
  if (v != 0 && (std::abs(v) >= 1e7 || std::abs(v) < 1e-3)) {
    oss << std::scientific << std::setprecision(digits - 1) << v;
  } else {
    oss << std::fixed
        << std::setprecision(std::abs(v) >= 100 ? 1 : digits - 1) << v;
  }
  return oss.str();
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace pipesched
