// In-process sampling profiler with phase attribution, plus a stall
// watchdog and a post-mortem flight recorder.
//
// This is the third leg of the observability stack: traces (trace.hpp)
// answer "what did THIS run do, microsecond by microsecond", metrics
// (metrics.hpp) answer "what has the process done so far", and the
// profiler answers "where does the time actually GO" — the phase-share
// evidence a hot-path rework needs before touching anything.
//
// Design constraints, in order (mirroring the trace/metrics collectors):
//   1. Disabled cost ~0. Profiling is off by default; an inactive
//      PS_PROF_PHASE is one relaxed atomic load and a predictable branch —
//      no clock read, no lock, no allocation. The <2% corpus overhead
//      budget is measured in EXPERIMENTS.md.
//   2. No locks on the hot path when enabled. Each worker thread owns a
//      fixed-depth *phase stack* (registered once under a mutex on the
//      thread's first marker, then written only by that thread): a push
//      is one relaxed frame store plus one release depth store, a pop is
//      one release depth store. No sampling work happens on the worker.
//   3. The sampler never stops workers. A dedicated sampler thread wakes
//      at a configurable rate (default 997 Hz — co-prime with the
//      1,024-expansion deadline/heartbeat tick, so the sampler cannot
//      alias against the search's own periodic work) and reads every
//      registered stack with acquire/relaxed loads. Reads racing a
//      push/pop are race-benign: the sample lands in the caller phase or
//      the callee phase, both of which are true attributions within one
//      frame of the instant sampled (soundness argument in DESIGN.md
//      section 3.8).
//
// Phase names MUST be string literals (or otherwise immortal): the stack
// stores the pointer and the sampler dereferences it asynchronously.
//
// On top of the same background thread sit two post-mortem primitives:
//
//   * Flight recorder: every live search registers a SearchMonitor and
//     pushes a heartbeat snapshot (nodes, incumbent, depth, cache-hit
//     delta) into the monitor's ring buffer on the existing
//     1,024-expansion tick — UNCONDITIONALLY, tracing on or off, so the
//     last N heartbeats of any search are always available post mortem.
//   * Stall watchdog: when armed (watchdog_enable), the background
//     thread checks every live monitor; a search whose nodes-expanded
//     counter has not advanced for the configured window gets its ring
//     buffer, every thread's phase stack, and a metrics snapshot dumped
//     to stderr and (optionally) a JSON file — the post-mortem evidence
//     the pscd daemon will serve per request.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pipesched {

/// Fixed phase-stack depth. Deeper nesting is counted (pushes/pops stay
/// balanced) but attributed to the deepest recorded frame; the annotation
/// sites nest at most four deep in practice.
inline constexpr int kProfilerMaxDepth = 8;

namespace prof_detail {

extern std::atomic<bool> g_enabled;

/// One thread's phase stack. Written only by the owning thread; read
/// asynchronously by the sampler. All fields are atomics so the
/// cross-thread reads are defined (and TSan-clean); the ordering contract
/// is documented on push()/pop().
struct PhaseStack {
  std::atomic<std::uint32_t> depth{0};
  std::atomic<const char*> frames[kProfilerMaxDepth] = {};
  std::uint32_t tid = 0;  ///< 1-based registration order (stable)
};

PhaseStack& local_stack();

}  // namespace prof_detail

/// Is the profiler recording? Inline so the disabled fast path is one
/// relaxed load + branch at every annotation site.
inline bool profiler_enabled() {
  return prof_detail::g_enabled.load(std::memory_order_relaxed);
}

/// RAII phase marker: the enclosing scope is attributed to `name` (a
/// string literal) in every sample taken while the scope is live. Nests:
/// an inner marker's samples collapse as "outer;inner". Inactive markers
/// cost one branch in the constructor and destructor each.
class ProfPhase {
 public:
  explicit ProfPhase(const char* name) {
    if (!profiler_enabled()) return;
    stack_ = &prof_detail::local_stack();
    const std::uint32_t d = stack_->depth.load(std::memory_order_relaxed);
    if (d < kProfilerMaxDepth) {
      stack_->frames[d].store(name, std::memory_order_relaxed);
    }
    // Release: the sampler's acquire read of depth observes the frame
    // store above before it trusts frames[d].
    stack_->depth.store(d + 1, std::memory_order_release);
  }
  ~ProfPhase() {
    if (stack_ == nullptr) return;  // profiler was off at entry
    const std::uint32_t d = stack_->depth.load(std::memory_order_relaxed);
    stack_->depth.store(d - 1, std::memory_order_release);
  }
  ProfPhase(const ProfPhase&) = delete;
  ProfPhase& operator=(const ProfPhase&) = delete;

 private:
  prof_detail::PhaseStack* stack_ = nullptr;
};

// Scope-named phase helper: PS_PROF_PHASE("omega") attributes the
// enclosing scope. Two-level concat so __LINE__ expands.
#define PS_PROF_CONCAT_INNER(a, b) a##b
#define PS_PROF_CONCAT(a, b) PS_PROF_CONCAT_INNER(a, b)
#define PS_PROF_PHASE(name) \
  ::pipesched::ProfPhase PS_PROF_CONCAT(ps_prof_phase_, __LINE__)(name)

/// The calling thread's phase stack if profiling is on, else nullptr.
/// Hot-loop helper: capture this ONCE per search/solve on the owning
/// thread, then open PS_PROF_PHASE_AT markers against the captured
/// pointer — each costs a test of an ordinary local/member pointer the
/// compiler can keep in a register, instead of a fresh atomic load of
/// the global enable flag per marker. (A search that straddles an
/// enable/disable simply keeps its capture-time behavior: markers
/// against a stale non-null stack stay balanced and merely go
/// unsampled; a null capture attributes the whole search to the
/// enclosing phase.)
inline prof_detail::PhaseStack* profiler_active_stack() {
  return profiler_enabled() ? &prof_detail::local_stack() : nullptr;
}

/// ProfPhase against a pre-captured stack (see profiler_active_stack).
/// Must be constructed and destroyed on the stack's owning thread.
class ProfPhaseAt {
 public:
  ProfPhaseAt(prof_detail::PhaseStack* stack, const char* name)
      : stack_(stack) {
    if (stack_ == nullptr) return;
    const std::uint32_t d = stack_->depth.load(std::memory_order_relaxed);
    if (d < kProfilerMaxDepth) {
      stack_->frames[d].store(name, std::memory_order_relaxed);
    }
    stack_->depth.store(d + 1, std::memory_order_release);
  }
  ~ProfPhaseAt() {
    if (stack_ == nullptr) return;
    const std::uint32_t d = stack_->depth.load(std::memory_order_relaxed);
    stack_->depth.store(d - 1, std::memory_order_release);
  }
  ProfPhaseAt(const ProfPhaseAt&) = delete;
  ProfPhaseAt& operator=(const ProfPhaseAt&) = delete;

 private:
  prof_detail::PhaseStack* stack_;
};

#define PS_PROF_PHASE_AT(stack, name) \
  ::pipesched::ProfPhaseAt PS_PROF_CONCAT(ps_prof_phase_, __LINE__)(stack, \
                                                                    name)

/// Start the sampler thread and begin recording. Resets accumulated
/// samples so one enable..disable session maps to one profile. `hz` is
/// the sampling rate (clamped to [1, 10000]); the 997 Hz default is
/// co-prime with the searches' 1,024-expansion periodic tick.
void profiler_enable(double hz = 997.0);

/// Stop recording and join the sampler thread (no-op when off). Also
/// flushes ps_profile_samples_total{phase=...} counters — one per
/// TOP-LEVEL phase — into the metrics registry when metrics are enabled,
/// so a scraper sees where process time went without parsing files.
void profiler_disable();

/// Drop accumulated samples (thread registrations are kept).
void profiler_clear();

/// One accumulated (thread, phase-path) sample count.
struct ProfileSample {
  std::uint32_t tid = 0;     ///< phase-stack registration id
  std::string path;          ///< "phase;subphase;..." (collapsed form)
  std::uint64_t count = 0;   ///< samples attributed to exactly this path
};

/// Point-in-time copy of the accumulated samples, sorted by (path, tid).
/// Safe to call while the sampler runs (it shares the accumulator lock).
std::vector<ProfileSample> profiler_samples();

/// Total samples attributed to any phase so far this session.
std::uint64_t profiler_total_samples();

/// Sampling period of the current/last session, in seconds (1/hz).
/// Multiply a sample count by this for the estimated wall seconds spent
/// in a phase. 0 before the first enable.
double profiler_sample_period_seconds();

/// Write the accumulated samples in collapsed-stack format — one
/// "phase;subphase count" line per distinct path, counts summed across
/// threads, sorted by path — directly consumable by flamegraph.pl,
/// inferno, or speedscope.
void profiler_write_collapsed(std::ostream& out);

/// File overload; throws pipesched::Error on open/write failure.
void profiler_write_collapsed(const std::string& path);

/// Human phase-share table for `psc --stats` / bench logs: one row per
/// distinct path with sample count, estimated seconds, and percentage of
/// all attributed samples (rows sum to 100%). Empty string when no
/// samples were taken.
std::string profiler_phase_table();

// ---------------------------------------------------------------------
// Flight recorder + stall watchdog
// ---------------------------------------------------------------------

/// One heartbeat snapshot, pushed by the search on its periodic tick.
struct HeartbeatSnapshot {
  std::uint64_t t_us = 0;        ///< microseconds since monitor creation
  std::uint64_t nodes = 0;       ///< nodes expanded so far (this ledger)
  int incumbent_nops = -1;       ///< current incumbent cost (-1 = none)
  std::uint32_t depth = 0;       ///< current search depth
  double cache_hit_pct = 0;      ///< dominance-cache hit % since previous
};

/// Per-search flight recorder: a ring buffer of the last N heartbeat
/// snapshots plus the progress state the watchdog reads. Registered with
/// the global monitor registry for its whole lifetime (RAII), so the
/// watchdog only ever sees live searches. heartbeat() is called from the
/// search's amortized 1,024-expansion tick — a short mutex push, which is
/// uncontended unless the watchdog is reading at that instant.
class SearchMonitor {
 public:
  static constexpr std::size_t kRingCapacity = 64;

  /// Opaque state; lives in the monitor registry (profiler.cpp).
  struct Impl;

  /// `label` names the search in stall dumps ("bnb", "cp", ...); must
  /// outlive the monitor (string literals in practice).
  explicit SearchMonitor(const char* label);
  ~SearchMonitor();
  SearchMonitor(const SearchMonitor&) = delete;
  SearchMonitor& operator=(const SearchMonitor&) = delete;

  /// Record one heartbeat. Unconditional (tracing off included): this is
  /// the flight-recorder feed, and it is cheap enough to always run.
  void heartbeat(std::uint64_t nodes, int incumbent_nops, std::uint32_t depth,
                 double cache_hit_pct);

  /// Last N snapshots, oldest first (test/diagnostic view).
  std::vector<HeartbeatSnapshot> ring() const;

  const char* label() const;

 private:
  Impl* impl_;  ///< owned; unregistered and freed in ~SearchMonitor
};

/// Point-in-time view of one live search's flight recorder, as served by
/// the obs HTTP server's /status endpoint.
struct MonitorStatus {
  std::string label;           ///< "bnb", "cp", ... (see SearchMonitor)
  std::uint64_t monitor_id = 0;
  std::vector<HeartbeatSnapshot> ring;  ///< oldest first
};

/// Snapshot every live SearchMonitor (label, id, heartbeat ring), oldest
/// registration first. Lock order is registry -> monitor, identical to
/// the watchdog's stall scan, so a /status read can never deadlock
/// against a concurrent stall dump (DESIGN.md section 3.9).
std::vector<MonitorStatus> search_monitor_statuses();

/// Point-in-time view of one registered thread's phase stack. `path` is
/// the collapsed "a;b;c" form; empty = idle. Stacks only carry frames
/// while the profiler is enabled (markers are enable-gated), so an
/// unprofiled process reports every registered thread as idle.
struct PhaseStackSnapshot {
  std::uint32_t tid = 0;
  std::string path;
};

/// Snapshot every registered thread's phase stack (registration order).
/// Race-benign against concurrent push/pop, like the sampler's reads.
std::vector<PhaseStackSnapshot> profiler_phase_stacks();

/// Arm the stall watchdog: the background monitor thread (shared with the
/// sampler; started on demand) checks every live SearchMonitor, and any
/// search whose nodes-expanded counter has not advanced for `seconds`
/// gets a one-shot stall dump — its heartbeat ring, every registered
/// thread's phase stack, and a metrics snapshot — to stderr and, when
/// `stall_json_path` is non-empty, to that file as JSON.
void watchdog_enable(double seconds, const std::string& stall_json_path = "");

/// Disarm the watchdog (joins the background thread unless the sampler
/// still needs it). Live monitors keep recording heartbeats regardless.
void watchdog_disable();

/// Is the watchdog armed?
bool watchdog_enabled();

/// Number of stall dumps emitted since process start (test hook).
std::uint64_t watchdog_stall_count();

}  // namespace pipesched
