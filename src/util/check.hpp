// Error-handling primitives used across the library.
//
// PS_CHECK is for user-facing precondition violations (bad configs,
// malformed inputs): it throws pipesched::Error with a formatted message.
// PS_ASSERT is for internal invariants: it aborts in all build types so a
// broken invariant can never silently corrupt a schedule.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pipesched {

/// Exception thrown on violated preconditions and malformed inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "pipesched internal invariant violated: %s at %s:%d\n",
               expr, file, line);
  std::abort();
}

}  // namespace detail

}  // namespace pipesched

#define PS_CHECK(cond, msg)                              \
  do {                                                   \
    if (!(cond)) {                                       \
      std::ostringstream ps_check_oss_;                  \
      ps_check_oss_ << msg;                              \
      throw ::pipesched::Error(ps_check_oss_.str());     \
    }                                                    \
  } while (0)

#define PS_ASSERT(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::pipesched::detail::assert_fail(#cond, __FILE__, __LINE__);   \
    }                                                                \
  } while (0)
