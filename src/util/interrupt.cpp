#include "util/interrupt.hpp"

#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

namespace pipesched {

namespace {

std::atomic<bool> g_interrupted{false};

struct InterruptState {
  std::mutex mutex;
  std::function<void(int)> cleanup;
  bool installed = false;
};

InterruptState& state() {
  static InterruptState* s = new InterruptState;  // outlives the watcher
  return *s;
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGINT:
      return "SIGINT";
    case SIGTERM:
      return "SIGTERM";
    default:
      return "signal";
  }
}

void watcher_loop() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  int sig = 0;
  while (sigwait(&set, &sig) != 0) {
  }
  g_interrupted.store(true, std::memory_order_relaxed);
  std::cerr << "\ninterrupted (" << signal_name(sig)
            << "): flushing observability outputs before exit\n";
  std::function<void(int)> cleanup;
  {
    InterruptState& s = state();
    std::lock_guard lock(s.mutex);
    cleanup = s.cleanup;
  }
  if (cleanup) {
    try {
      cleanup(sig);
    } catch (const std::exception& e) {
      std::cerr << "interrupt cleanup failed: " << e.what() << "\n";
    } catch (...) {
      std::cerr << "interrupt cleanup failed\n";
    }
  }
  std::cerr.flush();
  std::cout.flush();
  // Skip static destructors: worker threads are still running and their
  // shared state must stay alive under them until the kernel reaps us.
  std::_Exit(128 + sig);
}

}  // namespace

void install_graceful_interrupt(std::function<void(int)> cleanup) {
  InterruptState& s = state();
  std::lock_guard lock(s.mutex);
  s.cleanup = std::move(cleanup);
  if (s.installed) return;
  s.installed = true;
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  // Block in the installing thread; every thread spawned afterwards
  // inherits the mask, leaving the watcher as the sole receiver.
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  std::thread(watcher_loop).detach();
}

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

}  // namespace pipesched
