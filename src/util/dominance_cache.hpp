// State-dominance (transposition) cache for tree searches.
//
// The branch-and-bound schedule search re-derives the same *scheduler
// state* — set of placed instructions plus residual pipeline timing
// relative to the current cycle — along factorially many permutations of
// the decisions that built it. Any two partial schedules reaching the same
// state admit exactly the same set of completions at exactly the same
// incremental cost, so only the cheapest visit needs its subtree explored:
// a branch arriving at a cached state with equal-or-worse partial cost is
// dominated and can be pruned without discarding any strictly better
// completion (see DESIGN.md for the soundness argument relative to the
// paper's pruning rules [5a]-[5c]/[6]).
//
// This header provides the two generic pieces:
//
//   * ZobristKeys / hash64 — 64-bit incremental hashing material. Each
//     element id gets one fixed random word; a set hashes to the XOR of
//     its members' words, so membership updates are O(1) on push/pop.
//     hash64() folds auxiliary small integers (relative timing residues)
//     into the key order-independently.
//
//   * DominanceCache — a fixed-budget open-addressing hash table mapping
//     (key, depth) -> best partial cost seen. Bounded linear probing with
//     a keep-the-shallowest replacement policy (shallow states guard the
//     largest subtrees); the table starts small and doubles up to the
//     byte budget so tiny searches pay near-zero setup cost. All traffic
//     is counted (probes/hits/misses/inserts/evictions/superseded/
//     verified_rejects) for telemetry.
//
// Soundness note: a match on the 64-bit key alone is NOT proof that two
// scheduler states are equal — two distinct states colliding on the full
// word would be treated as transpositions of each other, and the cache
// would prune a subtree that is not actually dominated (possibly the only
// one holding the optimum). Every entry therefore also stores a second
// 64-bit verification word computed from an independent hash family
// (hash64_alt over a second Zobrist table); a probe only counts as a
// match when key, depth, AND verification word all agree. A surviving
// 128-bit collision is astronomically unlikely, and a mismatch merely
// degrades to a miss — never an unsound prune.
//
// The cache is deliberately ignorant of schedules: callers define what a
// "state key" means. DominanceCache is not thread-safe (the sequential
// search owns one instance); ShardedDominanceCache wraps an array of
// mutex-guarded shards for the parallel frontier-split search, where every
// worker probes and publishes into one table so transpositions reached
// from different subtrees dedupe across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace pipesched {

/// Fixed pseudo-random 64-bit word per element id, for XOR set hashing.
class ZobristKeys {
 public:
  explicit ZobristKeys(std::size_t elements,
                       std::uint64_t seed = 0x5eed0fca11ab1e5ull);

  std::uint64_t key(std::size_t id) const { return keys_[id]; }
  std::size_t size() const { return keys_.size(); }

 private:
  std::vector<std::uint64_t> keys_;
};

/// Scramble a word through a splitmix64-style finalizer: distinct inputs
/// map to effectively independent words, so XOR-combining hash64() of
/// several (tag, value) packs builds an order-independent set hash.
inline std::uint64_t hash64(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

/// Second, independent finalizer (Murmur3 fmix64 constants) for the
/// verification word: an input pair colliding under hash64 has no
/// structural reason to also collide here, so (hash64, hash64_alt)
/// behaves as a 128-bit identity.
inline std::uint64_t hash64_alt(std::uint64_t v) {
  v ^= 0x2545f4914f6cdd1dull;
  v = (v ^ (v >> 33)) * 0xff51afd7ed558ccdull;
  v = (v ^ (v >> 33)) * 0xc4ceb9fe1a85ec53ull;
  return v ^ (v >> 33);
}

/// Traffic counters. Invariants (checked by the test suite):
/// hits + misses == probes; inserts <= misses; superseded <= misses.
/// verified_rejects is not part of the hit/miss partition: a rejected
/// probe still resolves to a miss (the colliding entry is simply not
/// treated as a match).
struct DominanceCacheStats {
  std::uint64_t probes = 0;      ///< probe_and_update calls
  std::uint64_t hits = 0;        ///< dominated: cached cost <= offered cost
  std::uint64_t misses = 0;      ///< state unknown or strictly improved
  std::uint64_t inserts = 0;     ///< new entries created
  std::uint64_t evictions = 0;   ///< entries displaced by replacement
  std::uint64_t superseded = 0;  ///< cached cost improved in place
  std::uint64_t verified_rejects = 0;  ///< key matched, verify word did not
};

class DominanceCache {
 public:
  /// `max_bytes` bounds the table; entries are 24 bytes each (key,
  /// verification word, cost, depth). The table starts at a small power
  /// of two and doubles on demand up to the budget, so per-search
  /// construction cost stays proportional to use.
  explicit DominanceCache(std::size_t max_bytes = kDefaultBytes);

  /// Publishes the cache's lifetime traffic (occupancy, inserts,
  /// evictions, supersedes) to the metrics registry when metrics are
  /// enabled and the cache saw any probes. Caches are per-search, so the
  /// registry accumulates substrate totals across searches.
  ~DominanceCache();

  /// One combined lookup/store at `depth` with partial cost `cost`:
  /// returns true when a cached visit of the same (key, verify, depth)
  /// had equal-or-lower cost — the caller's branch is dominated and
  /// should be pruned. Otherwise records (or improves) the entry and
  /// returns false. `verify` must come from an independent hash family
  /// over the same state (see hash64_alt); a key match with a verify
  /// mismatch is counted as a verified reject and never treated as a hit.
  bool probe_and_update(std::uint64_t key, std::uint64_t verify, int depth,
                        int cost);

  const DominanceCacheStats& stats() const { return stats_; }
  std::size_t capacity() const { return entries_.size(); }
  std::size_t max_capacity() const { return max_entries_; }

  static constexpr std::size_t kDefaultBytes = std::size_t{1} << 20;

 private:
  struct Entry {
    std::uint64_t key = 0;     ///< 0 = empty slot (real keys are remapped)
    std::uint64_t verify = 0;  ///< independent-family word; must also match
    std::int32_t cost = 0;
    std::uint16_t depth = 0;
    std::uint16_t pad = 0;
  };
  static_assert(sizeof(Entry) == 24);

  static constexpr std::size_t kProbeWindow = 8;

  void maybe_grow();
  static bool place(std::vector<Entry>& table, const Entry& e);

  std::vector<Entry> entries_;
  std::size_t max_entries_;
  std::size_t used_ = 0;
  DominanceCacheStats stats_;
};

/// Concurrent dominance cache for the parallel search: the key space is
/// partitioned across `shards` independent DominanceCache tables, each
/// guarded by its own mutex, so workers probing different shards never
/// contend and workers probing the same shard serialize briefly. Shard
/// selection uses the key's high bits (the per-shard table indexes with
/// the low bits), and every shard keeps the sequential cache's full
/// replacement policy — keep-the-shallowest eviction and cost-aware
/// in-place supersede — so the dominance semantics are identical to the
/// single-threaded cache, just safely shared.
///
/// Probes report their traffic into a CALLER-OWNED stats ledger instead
/// of a global one: each search worker passes its own DominanceCacheStats,
/// which makes the per-worker counters exact (no cross-thread smearing)
/// and lets the merged SearchStats equal the summed worker ledgers — an
/// invariant the test suite asserts.
class ShardedDominanceCache {
 public:
  /// `max_bytes` is the TOTAL budget, divided evenly across shards.
  /// `shards` is rounded up to a power of two (minimum 1). Each shard
  /// still enforces DominanceCache's own minimum table size, so very
  /// small budgets simply saturate at shards × 16 KiB.
  explicit ShardedDominanceCache(std::size_t max_bytes = DominanceCache::kDefaultBytes,
                                 std::size_t shards = 16);

  /// Thread-safe probe_and_update: returns true when the branch is
  /// dominated (see DominanceCache::probe_and_update). The shard's stats
  /// delta for this probe is accumulated into `local`.
  bool probe_and_update(std::uint64_t key, std::uint64_t verify, int depth,
                        int cost, DominanceCacheStats& local);

  /// Aggregate traffic across all shards (locks each shard briefly; call
  /// at quiescence for exact totals).
  DominanceCacheStats stats() const;

  std::size_t shard_count() const { return shards_.size(); }

  /// Total slot capacity across shards (for telemetry/tests).
  std::size_t capacity() const;

 private:
  struct Shard {
    std::mutex mutex;
    DominanceCache cache;
    explicit Shard(std::size_t max_bytes) : cache(max_bytes) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
};

}  // namespace pipesched
