#include "util/build_info.hpp"

#include "util/metrics.hpp"

#ifndef PS_GIT_SHA
#define PS_GIT_SHA "unknown"
#endif
#ifndef PS_BUILD_TYPE
#define PS_BUILD_TYPE "unknown"
#endif

namespace pipesched {

const char* build_version() { return "0.9.0"; }

const char* build_git_sha() { return PS_GIT_SHA; }

const char* build_type() { return PS_BUILD_TYPE; }

std::string build_info_line() {
  return std::string("pipesched ") + build_version() + " (git " +
         build_git_sha() + ", " + build_type() + ")";
}

void register_build_info_metric() {
  static Gauge& info = metrics_gauge(
      "ps_build_info",
      {{"version", build_version()},
       {"git_sha", build_git_sha()},
       {"build_type", build_type()}},
      "Build identity; constant 1 (info-style gauge)");
  info.set(1);
}

}  // namespace pipesched
