// Deterministic pseudo-random number generation.
//
// All randomized components of the library (synthetic block generation,
// property-test sweeps) draw from Rng so that every experiment is exactly
// reproducible from a 64-bit seed, independent of the standard library's
// distribution implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace pipesched {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Index drawn from a discrete distribution given non-negative weights.
  /// At least one weight must be positive.
  std::size_t next_weighted(const std::vector<double>& weights);

  /// Derive an independent stream for stream index `i` (parallel workers).
  Rng split(std::uint64_t i) const;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

}  // namespace pipesched
