// Build identity: version, git revision, build type.
//
// Every /metrics scrape and metrics export carries a
// ps_build_info{version=,git_sha=,build_type=} gauge (value 1, the
// Prometheus convention for info-style metrics) so roll-ups and
// dashboards can always tell WHICH binary produced a number — the first
// question every perf regression hunt asks. psc --version prints the
// same triple.
//
// git_sha and build_type are burned in at CMake configure time
// (PS_GIT_SHA / PS_BUILD_TYPE compile definitions); a build from an
// exported tarball reports "unknown".
#pragma once

#include <string>

namespace pipesched {

/// Semantic version of the pipesched library/tools.
const char* build_version();

/// Short git revision at configure time ("unknown" outside a checkout).
const char* build_git_sha();

/// CMake build type at configure time (Release, Debug, ...).
const char* build_type();

/// One human line: "pipesched <version> (git <sha>, <build_type>)".
std::string build_info_line();

/// Register (or refresh) the ps_build_info gauge at value 1. Idempotent;
/// called from metrics_enable()/metrics_reset() so every live registry
/// carries the identity series without any caller wiring.
void register_build_info_metric();

}  // namespace pipesched
