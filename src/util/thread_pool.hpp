// Work-sharing thread pool.
//
// Blocks are scheduled independently of each other, so the corpus
// experiments are embarrassingly parallel: parallel_for_each splits the
// index space into chunks and runs them across a fixed set of workers.
// Results must be written into pre-sized per-index slots so the outcome is
// deterministic regardless of interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace pipesched {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  /// `name_prefix` labels the workers in traces ("<prefix><index>"), so
  /// corpus workers ("pool-worker-N") and intra-search workers
  /// ("search-worker-N") land on distinguishable tracks.
  explicit ThreadPool(std::size_t threads = 0,
                      const std::string& name_prefix = "pool-worker-");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw (an escaping exception
  /// terminates); parallel_for_each wraps its chunks so user callbacks
  /// may throw safely.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run fn(i) for every i in [0, count), chunked across `pool`.
/// fn must only touch per-index state (or synchronize internally).
/// If fn throws, the first exception (by completion order) is rethrown on
/// the calling thread after all in-flight work drains; chunks not yet
/// started are abandoned. The pool itself stays usable afterwards.
void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& fn);

}  // namespace pipesched
