// Structured tracing: a thread-safe, low-overhead trace collector that
// exports Chrome trace-event JSON (loadable in chrome://tracing or
// https://ui.perfetto.dev) so a compile, a search, or a whole corpus run
// can be inspected phase by phase on a timeline.
//
// Design constraints, in order:
//   1. Disabled cost ~0. Tracing is off by default; an inactive
//      PS_TRACE_SPAN or trace_counter() call is one relaxed atomic load
//      and one predictable branch — no allocation, no clock read, no
//      lock. The <2% corpus overhead bound is measured in EXPERIMENTS.md.
//   2. No locks on the hot path when enabled. Each thread appends to its
//      own event buffer (registered once per thread under a mutex, then
//      owned exclusively by that thread). Buffers are merged at flush.
//   3. Trivially consumable output. Events are the standard trace-event
//      phases: "X" (complete span), "C" (counter), "i" (instant), plus
//      "M" thread-name metadata, with microsecond timestamps relative to
//      the trace epoch.
//
// Threading contract: recording is wait-free per thread, but
// trace_enable()/trace_clear()/trace_write_json()/trace_snapshot() must
// not run concurrently with recording threads (call them before workers
// start or after the pool has drained — the harnesses trace whole corpus
// runs, so flush naturally happens at quiescence). Thread buffers live
// for the process lifetime, so threads that outlive a trace session
// never dangle.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pipesched {

/// One recorded event (merged, test-visible form).
struct TraceEvent {
  enum class Phase : char {
    Complete,  ///< "X": span with ts + dur
    Counter,   ///< "C": named series sample
    Instant,   ///< "i": point marker
  };
  std::string name;
  Phase phase = Phase::Instant;
  std::uint64_t ts_us = 0;   ///< microseconds since the trace epoch
  std::uint64_t dur_us = 0;  ///< Complete spans only
  double value = 0;          ///< Counter samples only
  std::uint32_t tid = 0;     ///< per-thread track id (assigned 1, 2, ...)
};

namespace trace_detail {
extern std::atomic<bool> g_enabled;
std::uint64_t now_us();
void record(TraceEvent::Phase phase, const char* name, std::uint64_t ts_us,
            std::uint64_t dur_us, double value);
}  // namespace trace_detail

/// Is the collector recording? Inline so the disabled fast path is one
/// relaxed load + branch at every instrumentation site.
inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Start recording. Resets the event buffers and the trace epoch, so a
/// written file always covers one enable..disable session. No-op when
/// already enabled.
void trace_enable();

/// Stop recording; buffered events are kept until the next enable/clear.
void trace_disable();

/// Drop all buffered events (buffers themselves are reused).
void trace_clear();

/// Record one sample of a named counter series ("C" event). The series
/// renders as its own counter track in the viewer.
inline void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  trace_detail::record(TraceEvent::Phase::Counter, name,
                       trace_detail::now_us(), 0, value);
}

/// Record a point marker ("i" event) on the calling thread's track.
inline void trace_instant(const char* name) {
  if (!trace_enabled()) return;
  trace_detail::record(TraceEvent::Phase::Instant, name,
                       trace_detail::now_us(), 0, 0);
}

/// Name the calling thread's track in the viewer (emitted as an "M"
/// thread_name metadata event at flush). No-op while tracing is off.
void trace_set_thread_name(const std::string& name);

/// RAII complete-event span: records [construction, destruction) as one
/// "X" event on the calling thread's track. `name` must outlive the span
/// (string literals in practice). Inactive spans cost one branch each in
/// the constructor and destructor.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      start_us_ = trace_detail::now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      trace_detail::record(TraceEvent::Phase::Complete, name_, start_us_,
                           trace_detail::now_us() - start_us_, 0);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null = tracing was off at entry
  std::uint64_t start_us_ = 0;
};

// Scope-named span helper: PS_TRACE_SPAN("parse") traces the enclosing
// scope. Two-level concat so __LINE__ expands.
#define PS_TRACE_CONCAT_INNER(a, b) a##b
#define PS_TRACE_CONCAT(a, b) PS_TRACE_CONCAT_INNER(a, b)
#define PS_TRACE_SPAN(name) \
  ::pipesched::TraceSpan PS_TRACE_CONCAT(ps_trace_span_, __LINE__)(name)

/// Merge every thread's buffer into one timestamp-sorted event list
/// (quiescence contract above; intended for tests and custom exporters).
std::vector<TraceEvent> trace_snapshot();

/// Write the buffered events as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}) — loadable in chrome://tracing and Perfetto.
/// Includes "M" thread-name metadata for every named track.
void trace_write_json(std::ostream& out);

/// File overload; throws pipesched::Error on open/write failure.
void trace_write_json(const std::string& path);

}  // namespace pipesched
