#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "util/build_info.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/progress.hpp"

namespace pipesched {
namespace {

/// Whole request head (request line + headers) must fit in this budget;
/// anything longer is rejected with 431 before we buffer more.
constexpr std::size_t kMaxRequestBytes = 8192;

/// Accepted-but-unserved connections queue up to this depth; beyond it
/// the accept loop sheds (closes) new connections so a scrape storm
/// degrades to refused scrapes instead of unbounded memory.
constexpr std::size_t kMaxQueuedConnections = 128;

/// Per-connection socket timeout: bounds a worker's exposure to a peer
/// that connects and then goes silent mid-request or mid-response.
constexpr int kSocketTimeoutSeconds = 5;

/// Process-global: at most one /profile window at a time, and never
/// concurrently with a CLI-owned --profile session.
std::mutex g_profile_mutex;

struct Response {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  bool allow_get_header = false;  ///< 405 carries "Allow: GET"
};

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

/// The fixed endpoint set; anything else is labeled "other" so unknown
/// paths cannot mint unbounded metric series.
const char* canonical_endpoint(const std::string& path) {
  static const char* const kKnown[] = {
      "/",        "/metrics", "/metrics.json", "/healthz",
      "/readyz",  "/status",  "/profile",      "/stacks",
  };
  for (const char* p : kKnown) {
    if (path == p) return p;
  }
  return "other";
}

void append_json_double(std::string& out, double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  out += ss.str();
}

std::string status_json(double uptime_seconds, bool ready) {
  std::string out = "{\n  \"build\": {\"version\": ";
  out += json_quote(build_version());
  out += ", \"git_sha\": ";
  out += json_quote(build_git_sha());
  out += ", \"build_type\": ";
  out += json_quote(build_type());
  out += "},\n  \"uptime_seconds\": ";
  append_json_double(out, uptime_seconds);
  out += ",\n  \"ready\": ";
  out += ready ? "true" : "false";

  ProgressSnapshot prog;
  const bool live = current_progress(&prog);
  out += ",\n  \"progress\": {\"live\": ";
  out += live ? "true" : "false";
  out += ", \"done\": " + std::to_string(prog.done);
  out += ", \"total\": " + std::to_string(prog.total);
  out += ", \"errors\": " + std::to_string(prog.errors);
  out += ", \"elapsed_seconds\": ";
  append_json_double(out, prog.elapsed_seconds);
  out += ", \"rate_per_second\": ";
  append_json_double(out, prog.rate_per_second);
  out += ", \"eta_seconds\": ";
  append_json_double(out, prog.eta_seconds);
  out += ", \"finished\": ";
  out += prog.finished ? "true" : "false";
  out += "}";

  out += ",\n  \"monitors\": [";
  bool first_mon = true;
  for (const MonitorStatus& m : search_monitor_statuses()) {
    if (!first_mon) out += ",";
    first_mon = false;
    out += "\n    {\"label\": " + json_quote(m.label);
    out += ", \"id\": " + std::to_string(m.monitor_id);
    out += ", \"heartbeats\": [";
    bool first_hb = true;
    for (const HeartbeatSnapshot& h : m.ring) {
      if (!first_hb) out += ", ";
      first_hb = false;
      out += "{\"t_us\": " + std::to_string(h.t_us);
      out += ", \"nodes\": " + std::to_string(h.nodes);
      out += ", \"incumbent_nops\": " + std::to_string(h.incumbent_nops);
      out += ", \"depth\": " + std::to_string(h.depth);
      out += ", \"cache_hit_pct\": ";
      append_json_double(out, h.cache_hit_pct);
      out += "}";
    }
    out += "]}";
  }
  out += first_mon ? "]" : "\n  ]";

  out += ",\n  \"stacks\": [";
  bool first_stack = true;
  for (const PhaseStackSnapshot& s : profiler_phase_stacks()) {
    if (!first_stack) out += ",";
    first_stack = false;
    out += "\n    {\"tid\": " + std::to_string(s.tid);
    out += ", \"path\": " + json_quote(s.path) + "}";
  }
  out += first_stack ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

std::string stacks_text() {
  std::string out;
  for (const PhaseStackSnapshot& s : profiler_phase_stacks()) {
    out += "tid " + std::to_string(s.tid) + ": ";
    out += s.path.empty() ? "(idle)" : s.path;
    out += "\n";
  }
  if (out.empty()) out = "(no registered phase stacks)\n";
  return out;
}

/// Parse "seconds=N" from a /profile query string. Returns false (400)
/// on any other shape; an empty query selects the 1-second default.
bool parse_profile_seconds(const std::string& query, double* seconds) {
  *seconds = 1.0;
  if (query.empty()) return true;
  const std::string key = "seconds=";
  if (query.compare(0, key.size(), key) != 0) return false;
  const std::string value = query.substr(key.size());
  if (value.empty()) return false;
  std::size_t used = 0;
  double parsed = 0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    return false;
  }
  if (used != value.size() || !(parsed > 0)) return false;
  *seconds = parsed;
  return true;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct HttpExporter::Impl {
  HttpExporterOptions options;
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::chrono::steady_clock::time_point started_at;

  std::atomic<bool> ready{false};
  std::atomic<bool> stopping{false};

  std::mutex mutex;                 ///< guards queue + stopped
  std::condition_variable cv;       ///< queue arrivals and stop
  std::deque<int> queue;            ///< accepted, unserved connection fds
  bool stopped = false;             ///< stop() already ran to completion

  std::thread accept_thread;
  std::vector<std::thread> workers;

  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  Response route(const std::string& path, const std::string& query);
  Response profile_endpoint(const std::string& query);
};

HttpExporter::HttpExporter(const HttpExporterOptions& options)
    : impl_(new Impl) {
  impl_->options = options;
  impl_->options.worker_threads =
      std::max(1, std::min(16, options.worker_threads));
  impl_->started_at = std::chrono::steady_clock::now();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(std::string("http exporter: socket(): ") +
                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw Error("http exporter: cannot bind 127.0.0.1:" +
                std::to_string(options.port) + ": " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error(std::string("http exporter: listen(): ") +
                std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw Error(std::string("http exporter: getsockname(): ") +
                std::strerror(err));
  }
  impl_->listen_fd = fd;
  impl_->port = ntohs(bound.sin_port);

  // A live exporter with a dead registry would serve empty scrapes.
  metrics_enable();

  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  for (int i = 0; i < impl_->options.worker_threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
  }
  impl_->stopping.store(true, std::memory_order_release);
  impl_->cv.notify_all();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  for (std::thread& t : impl_->workers) {
    if (t.joinable()) t.join();
  }
  impl_->workers.clear();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (int fd : impl_->queue) ::close(fd);
    impl_->queue.clear();
  }
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
}

std::uint16_t HttpExporter::port() const { return impl_->port; }

std::string HttpExporter::base_url() const {
  return "http://127.0.0.1:" + std::to_string(impl_->port);
}

void HttpExporter::set_ready(bool ready) {
  impl_->ready.store(ready, std::memory_order_release);
}

bool HttpExporter::ready() const {
  return impl_->ready.load(std::memory_order_acquire);
}

void HttpExporter::Impl::accept_loop() {
  // Poll with a short timeout instead of blocking in accept(): stop()
  // only has to flip the flag — no cross-thread close of a fd the
  // accept call is using, which would race against fd-number reuse.
  while (!stopping.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    timeval tv{};
    tv.tv_sec = kSocketTimeoutSeconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (queue.size() >= kMaxQueuedConnections) {
        ::close(fd);  // shed: a scrape storm cannot grow memory
        continue;
      }
      queue.push_back(fd);
    }
    cv.notify_one();
  }
}

void HttpExporter::Impl::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this] {
        return !queue.empty() || stopping.load(std::memory_order_acquire);
      });
      if (queue.empty()) return;  // stopping and drained
      fd = queue.front();
      queue.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpExporter::Impl::handle_connection(int fd) {
  const auto t0 = std::chrono::steady_clock::now();

  // Read until the end of the header block or the size cap.
  std::string request;
  bool complete = false;
  bool oversized = false;
  char buf[2048];
  while (!complete && !oversized) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or timed out mid-request
    request.append(buf, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) complete = true;
    if (request.size() > kMaxRequestBytes) oversized = true;
  }
  if (request.empty()) return;  // connect-and-close probe: nothing to answer

  Response resp;
  std::string endpoint = "invalid";
  if (oversized) {
    resp.code = 431;
    resp.body = "request header block exceeds " +
                std::to_string(kMaxRequestBytes) + " bytes\n";
  } else if (!complete) {
    resp.code = 400;
    resp.body = "malformed request: header block never terminated\n";
  } else {
    // Request line: METHOD SP TARGET SP VERSION, single spaces.
    const std::size_t line_end = request.find("\r\n");
    const std::string line = request.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
        sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
        line.find(' ', sp2 + 1) != std::string::npos) {
      resp.code = 400;
      resp.body = "malformed request line\n";
    } else {
      const std::string method = line.substr(0, sp1);
      const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = line.substr(sp2 + 1);
      const std::size_t qmark = target.find('?');
      const std::string path = target.substr(0, qmark);
      const std::string query =
          qmark == std::string::npos ? "" : target.substr(qmark + 1);
      endpoint = canonical_endpoint(path);
      if (version.compare(0, 5, "HTTP/") != 0) {
        resp.code = 400;
        resp.body = "malformed request version\n";
        endpoint = "invalid";
      } else if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        resp.code = 505;
        resp.body = "only HTTP/1.0 and HTTP/1.1 are supported\n";
      } else if (method != "GET") {
        resp.code = 405;
        resp.allow_get_header = true;
        resp.body = "method " + method + " not allowed; only GET\n";
      } else {
        resp = route(path, query);
      }
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(resp.code) + " " +
                     reason_phrase(resp.code) + "\r\n";
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  if (resp.allow_get_header) head += "Allow: GET\r\n";
  head += "Connection: close\r\n\r\n";

  const bool written = send_all(fd, head.data(), head.size()) &&
                       send_all(fd, resp.body.data(), resp.body.size());

  // Self-observation: only fully written responses count, so a test can
  // reconcile ps_http_requests_total exactly against client receipts.
  // Recorded BEFORE the FIN below: a client that has seen end-of-stream
  // may rely on the counter already covering its response, so the update
  // must happen-before the shutdown that releases the client.
  if (written) {
    metrics_counter("ps_http_requests_total",
                    {{"endpoint", endpoint},
                     {"code", std::to_string(resp.code)}},
                    "HTTP responses served by the obs exporter")
        .increment();
    metrics_histogram("ps_http_request_seconds", {{"endpoint", endpoint}},
                      "Wall seconds from request receipt to response write")
        .observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  ::shutdown(fd, SHUT_WR);
}

Response HttpExporter::Impl::route(const std::string& path,
                                   const std::string& query) {
  Response resp;
  if (path == "/") {
    resp.body =
        "pipesched observability endpoints:\n"
        "  /metrics            Prometheus text exposition 0.0.4\n"
        "  /metrics.json       the same snapshot as JSON\n"
        "  /healthz            liveness\n"
        "  /readyz             readiness (503 until setup completes)\n"
        "  /status             live run status as JSON\n"
        "  /stacks             current phase stacks as text\n"
        "  /profile?seconds=N  on-demand collapsed-stack profile\n";
  } else if (path == "/metrics") {
    std::ostringstream ss;
    metrics_snapshot().write_prometheus(ss);
    resp.body = ss.str();
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/metrics.json") {
    std::ostringstream ss;
    metrics_snapshot().write_json(ss);
    resp.body = ss.str();
    resp.content_type = "application/json";
  } else if (path == "/healthz") {
    resp.body = "ok\n";
  } else if (path == "/readyz") {
    if (ready.load(std::memory_order_acquire)) {
      resp.body = "ready\n";
    } else {
      resp.code = 503;
      resp.body = "not ready\n";
    }
  } else if (path == "/status") {
    resp.body = status_json(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at)
            .count(),
        ready.load(std::memory_order_acquire));
    resp.content_type = "application/json";
  } else if (path == "/stacks") {
    resp.body = stacks_text();
  } else if (path == "/profile") {
    resp = profile_endpoint(query);
  } else {
    resp.code = 404;
    resp.body = "unknown path: " + path + "\n";
  }
  return resp;
}

Response HttpExporter::Impl::profile_endpoint(const std::string& query) {
  Response resp;
  double seconds = 0;
  if (!parse_profile_seconds(query, &seconds)) {
    resp.code = 400;
    resp.body = "bad query: expected /profile?seconds=N with N > 0\n";
    return resp;
  }
  seconds = std::min(seconds, options.max_profile_seconds);

  // One profile session at a time, process-wide: a second /profile — or
  // a run started with --profile, which owns the sampler for its whole
  // duration — gets 409 instead of having its samples stolen.
  std::unique_lock<std::mutex> profile_lock(g_profile_mutex,
                                            std::try_to_lock);
  if (!profile_lock.owns_lock() || profiler_enabled()) {
    resp.code = 409;
    resp.body = "a profile session is already active\n";
    return resp;
  }

  profiler_enable();
  {
    // Interruptible window: stop() cuts the profile short rather than
    // waiting out the full N seconds.
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::duration<double>(seconds), [this] {
      return stopping.load(std::memory_order_acquire);
    });
  }
  std::ostringstream ss;
  profiler_write_collapsed(ss);
  profiler_disable();
  resp.body = ss.str();
  if (resp.body.empty()) {
    resp.body = "# no samples attributed (no profiled phase was live)\n";
  }
  return resp;
}

}  // namespace pipesched
