// Embedded observability HTTP server: live /metrics, health, search
// status, and on-demand profiles for any in-flight run.
//
// Until this existed every observability export (trace JSON, metrics
// snapshots, collapsed profiles, flight-recorder dumps) was file-based
// and post-mortem — nothing could be asked of a corpus run or a long
// search WHILE it was running. The exporter closes that gap and is the
// networking layer the pscd scheduling-as-a-service daemon (ROADMAP)
// will reuse wholesale: Prometheus scrapes, load-balancer health checks,
// and speedscope profiles all hit the same embedded endpoints production
// schedulers expose.
//
// Design constraints, in order:
//   1. Dependency-free. POSIX sockets only — no third-party HTTP stack
//      to vendor, audit, or version. The server speaks exactly the
//      subset scrapers need: GET, HTTP/1.0-1.1, Connection: close.
//   2. Strict. Anything that is not a well-formed GET is rejected with
//      the correct status code (400 malformed, 405 non-GET with an
//      Allow header, 404 unknown path, 431 oversized header block, 505
//      unsupported version) — a scraper mis-pointed at the port learns
//      so immediately instead of hanging.
//   3. Bounded. One accept thread plus a fixed worker pool handle
//      clients; accepted connections queue up to a fixed depth and are
//      shed beyond it (the socket is closed — a stalled scraper cannot
//      wedge the run being observed). Per-connection socket timeouts
//      bound each worker's exposure to a dead peer.
//   4. Observable itself. Every response increments
//      ps_http_requests_total{endpoint=,code=} and feeds the
//      ps_http_request_seconds{endpoint=} latency histogram, so a
//      dashboard can watch its own scrape path.
//
// Endpoints:
//   GET /             tiny text index of the endpoints below
//   GET /metrics      Prometheus text exposition 0.0.4 of the registry
//   GET /metrics.json the same snapshot as JSON
//   GET /healthz      liveness: 200 "ok" whenever the server breathes
//   GET /readyz       readiness: 503 until the host run calls
//                     set_ready(true) once compile/corpus setup is done
//   GET /status       strict JSON: build identity, uptime, live corpus
//                     progress (done/total/errors/rate/ETA), every live
//                     SearchMonitor's heartbeat ring, and each
//                     registered thread's current phase stack
//   GET /stacks       the phase stacks alone, as plain text
//   GET /profile?seconds=N  enable the sampling profiler for a clamped
//                     window (409 if a profile session is already live,
//                     e.g. the run was started with --profile) and
//                     return collapsed-stack text for flamegraph.pl /
//                     speedscope
//
// Lifecycle: constructing the exporter binds + listens (throwing
// pipesched::Error on failure, e.g. port in use) and starts the threads;
// stop() (idempotent, also run by the destructor) closes the listen
// socket, drains the queue, and joins every thread. Binds loopback only:
// observability is for the operator on the box, not the open network.
// Starting the server turns the metrics registry on (a live exporter
// with a dead registry would serve empty scrapes).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace pipesched {

struct HttpExporterOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() — psc/bench print it so scripts can scrape).
  std::uint16_t port = 0;
  /// Worker threads answering requests (clamped to [1, 16]). Keep >= 2
  /// so scrapes stay served while a /profile window sleeps.
  int worker_threads = 4;
  /// Upper clamp for /profile?seconds=N windows.
  double max_profile_seconds = 30.0;
};

class HttpExporter {
 public:
  /// Bind, listen, and start serving. Throws pipesched::Error with the
  /// OS reason when the socket cannot be bound (port in use, ...).
  explicit HttpExporter(const HttpExporterOptions& options = {});

  /// stop() then join (idempotent).
  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Stop accepting, shed queued connections, join every thread. Safe
  /// to call from any thread (the graceful-interrupt cleanup does) and
  /// more than once. A /profile window in flight is cut short, not
  /// waited out.
  void stop();

  /// The bound port (the ephemeral one when options.port was 0).
  std::uint16_t port() const;

  /// "http://127.0.0.1:<port>".
  std::string base_url() const;

  /// Flip /readyz. Hosts mark ready once compile/corpus setup is done.
  void set_ready(bool ready);
  bool ready() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pipesched
