// Parser for the textual tuple notation printed by BasicBlock::to_string().
//
// Grammar (one tuple per line, '#'-to-end-of-line comments via ';'):
//   <n>: <Opcode> [<operand> [, <operand>]]
//   operand := #<var-name> | <tuple-number> | "<integer>"
// Tuple numbers are 1-based as in the paper's Figure 3.
#pragma once

#include <string>

#include "ir/block.hpp"

namespace pipesched {

/// Parse a block from text. Throws pipesched::Error with a line number on
/// malformed input. Round-trips with BasicBlock::to_string().
BasicBlock parse_block(const std::string& text, std::string label = "");

}  // namespace pipesched
