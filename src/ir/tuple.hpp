// The tuple form <i, O, alpha, beta> of paper Section 3.1 (Figure 3).
//
// A tuple's reference number `i` is its index within its basic block;
// operands refer to other tuples by that index, so a schedule is simply a
// permutation of indices and never rewrites operands.
#pragma once

#include <cstdint>
#include <string>

#include "ir/opcode.hpp"

namespace pipesched {

/// Index of a tuple within its basic block.
using TupleIndex = std::int32_t;

/// Interned variable identifier within a basic block.
using VarId = std::int32_t;

/// One operand slot: nothing, a variable, another tuple's result, or an
/// immediate constant.
struct Operand {
  enum class Kind : std::uint8_t { None, Var, Ref, Imm };

  Kind kind = Kind::None;
  TupleIndex ref = -1;      ///< valid when kind == Ref
  VarId var = -1;           ///< valid when kind == Var
  std::int64_t imm = 0;     ///< valid when kind == Imm

  static Operand none() { return {}; }
  static Operand of_var(VarId v) {
    Operand o;
    o.kind = Kind::Var;
    o.var = v;
    return o;
  }
  static Operand of_ref(TupleIndex t) {
    Operand o;
    o.kind = Kind::Ref;
    o.ref = t;
    return o;
  }
  static Operand of_imm(std::int64_t v) {
    Operand o;
    o.kind = Kind::Imm;
    o.imm = v;
    return o;
  }

  bool is_none() const { return kind == Kind::None; }
  bool is_var() const { return kind == Kind::Var; }
  bool is_ref() const { return kind == Kind::Ref; }
  bool is_imm() const { return kind == Kind::Imm; }

  bool operator==(const Operand& other) const;
};

/// One instruction in tuple form.
struct Tuple {
  Opcode op = Opcode::Const;
  Operand a;
  Operand b;

  bool operator==(const Tuple& other) const {
    return op == other.op && a == other.a && b == other.b;
  }
};

}  // namespace pipesched
