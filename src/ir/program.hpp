// Whole-program IR: a control-flow graph of basic blocks.
//
// The paper schedules each basic block independently (Section 2.3) and
// leaves "arbitrary control flow" to future work (Section 6); this module
// supplies the surrounding structure. A Program is a list of blocks in
// layout order, each ending in a terminator:
//
//   FallThrough          continue to the next block in layout order
//   Jump     target      unconditional transfer
//   Branch   cond_var,   transfer to `target` when the named variable is
//            target      non-zero, else fall through to the next block
//   Return               leave the program
//
// Branch conditions are read from memory (a compiler temporary stored by
// the block), so schedulers and optimizer passes never see terminators —
// reordering or DCE inside a block cannot invalidate one (the condition
// store is the variable's last store, hence always observable/live).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/block.hpp"

namespace pipesched {

/// Index of a block within its program.
using BlockId = int;

struct Terminator {
  enum class Kind { FallThrough, Jump, Branch, Return };

  Kind kind = Kind::FallThrough;
  BlockId target = -1;        ///< Jump/Branch destination
  std::string cond_var;       ///< Branch: variable read from memory
  bool when_zero = false;     ///< Branch taken when cond == 0 (beqz style)

  static Terminator fall_through() { return {}; }
  static Terminator jump(BlockId target);
  static Terminator branch(std::string cond_var, BlockId target,
                           bool when_zero = false);
  static Terminator ret();
};

struct ProgramBlock {
  BasicBlock block;
  Terminator term;
};

class Program {
 public:
  /// Append a block; returns its id. Blocks may be appended empty and
  /// filled in afterwards (the CFG builder allocates ids up front).
  BlockId add_block(std::string label = "");

  std::size_t size() const { return blocks_.size(); }
  const ProgramBlock& block(BlockId id) const;
  ProgramBlock& block_mut(BlockId id);

  /// Number of predecessors of each block (FallThrough/Branch fall-through
  /// edges from the previous block plus explicit targets). Used by the
  /// boundary-mode logic: chaining pipeline state into a block is only
  /// safe when its sole predecessor is the layout-preceding block.
  std::vector<int> predecessor_counts() const;

  /// True when `id`'s only incoming edge is a fall-through from id-1.
  bool only_fallthrough_predecessor(BlockId id) const;

  /// Validate every block and terminator target. Throws Error.
  void validate() const;

  /// Listing: each block's tuples plus its terminator.
  std::string to_string() const;

 private:
  std::vector<ProgramBlock> blocks_;
};

/// Program execution state: memory keyed by variable NAME (variables are
/// interned per block, so cross-block identity is by name).
using ProgramEnv = std::unordered_map<std::string, std::int64_t>;

struct ProgramExecResult {
  ProgramEnv final_vars;
  std::size_t blocks_executed = 0;
  bool terminated = true;  ///< false when the step limit was hit
};

/// Reference interpreter for programs. `max_block_steps` bounds loop
/// execution (returns terminated = false when exceeded).
ProgramExecResult interpret_program(const Program& program,
                                    const ProgramEnv& initial = {},
                                    std::size_t max_block_steps = 100000);

}  // namespace pipesched
