// Dependence DAG over a basic block (paper Sections 3.1 and 4.2.1).
//
// Edges capture every ordering constraint a legal schedule must respect:
//   Flow    — value flows through a tuple reference (rho in the paper);
//   MemFlow — Load after the Store that produced the variable's value;
//   Anti    — Store after earlier Loads of the same variable;
//   Output  — Store after an earlier Store to the same variable.
// Variables are assumed unambiguous and mutually exclusive (Section 3.1),
// so memory dependences are exact per-variable chains.
//
// Beyond adjacency, the graph precomputes everything the search needs in
// O(1): immediate predecessor bitsets for the readiness test [5b],
// transitive closures for earliest()/latest() (Definitions 6-7 backing the
// quick window check [5a]), and unit-weight heights for the list scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/block.hpp"
#include "util/bitset.hpp"

namespace pipesched {

enum class DepKind : std::uint8_t { Flow, MemFlow, Anti, Output };

const char* dep_kind_name(DepKind kind);

struct DepEdge {
  TupleIndex from = -1;
  TupleIndex to = -1;
  DepKind kind = DepKind::Flow;
};

class DepGraph {
 public:
  explicit DepGraph(const BasicBlock& block);

  /// Construct with additional ordering constraints beyond the block's own
  /// dependences (each pair {from, to} forces from before to; from < to).
  /// Used by the register-allocation ablation, which injects the anti
  /// dependences a pre-scheduling allocator would impose via register
  /// reuse (paper Section 1, difference #1).
  DepGraph(const BasicBlock& block,
           const std::vector<std::pair<TupleIndex, TupleIndex>>& extra_edges);

  std::size_t size() const { return preds_.size(); }
  const BasicBlock& block() const { return *block_; }

  /// Immediate predecessors rho(i) / successors (unordered).
  const std::vector<TupleIndex>& preds(TupleIndex i) const;
  const std::vector<TupleIndex>& succs(TupleIndex i) const;

  /// Immediate predecessor set as a bitset (readiness test [5b]).
  const DynBitset& pred_set(TupleIndex i) const;

  /// Transitive predecessors / successors (excluding i itself).
  const DynBitset& ancestors(TupleIndex i) const;
  const DynBitset& descendants(TupleIndex i) const;

  /// Definition 6: minimum 1-based schedule position of i
  /// (= |ancestors| + 1).
  int earliest_position(TupleIndex i) const;

  /// Definition 7: maximum 1-based schedule position of i
  /// (= n - |descendants|).
  int latest_position(TupleIndex i) const;

  /// Unit-weight longest path from i to a sink / from a source to i.
  int height(TupleIndex i) const;
  int depth(TupleIndex i) const;

  /// Longest chain in the DAG, in instructions.
  int critical_path_length() const;

  const std::vector<DepEdge>& edges() const { return edges_; }

  /// True when `order` is a permutation respecting every edge.
  bool is_legal_order(const std::vector<TupleIndex>& order) const;

  /// Graphviz dot rendering (debugging / docs).
  std::string to_dot() const;

 private:
  void add_edge(TupleIndex from, TupleIndex to, DepKind kind);
  void compute_closures();

  const BasicBlock* block_;
  std::vector<std::vector<TupleIndex>> preds_;
  std::vector<std::vector<TupleIndex>> succs_;
  std::vector<DynBitset> pred_sets_;
  std::vector<DynBitset> ancestors_;
  std::vector<DynBitset> descendants_;
  std::vector<int> height_;
  std::vector<int> depth_;
  std::vector<DepEdge> edges_;
};

/// Number of legal topological orders of `dag`, counted by backtracking and
/// clamped at `cap` (the paper reports the n=22 row of Table 1 as
/// ">9,999,000" for exactly this reason). Returns cap when the count
/// reaches it.
std::uint64_t count_topological_orders(const DepGraph& dag,
                                       std::uint64_t cap);

/// n! as a double (overflows uint64 past 20!).
double factorial_double(int n);

/// Exact n! with thousands separators, e.g. "1,307,674,368,000".
std::string factorial_pretty(int n);

}  // namespace pipesched
