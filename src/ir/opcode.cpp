#include "ir/opcode.hpp"

#include "util/check.hpp"

namespace pipesched {

namespace {

struct OpcodeInfo {
  const char* name;
  int arity;
  bool has_result;
  bool commutative;
};

// Indexed by the Opcode enumerator value.
constexpr OpcodeInfo kInfo[kOpcodeCount] = {
    {"Const", 1, true, false},  // Opcode::Const
    {"Load", 1, true, false},   // Opcode::Load
    {"Store", 2, false, false}, // Opcode::Store
    {"Mov", 1, true, false},    // Opcode::Mov
    {"Neg", 1, true, false},    // Opcode::Neg
    {"Add", 2, true, true},     // Opcode::Add
    {"Sub", 2, true, false},    // Opcode::Sub
    {"Mul", 2, true, true},     // Opcode::Mul
    {"Div", 2, true, false},    // Opcode::Div
};

const OpcodeInfo& info(Opcode op) {
  const auto index = static_cast<std::size_t>(op);
  PS_ASSERT(index < kOpcodeCount);
  return kInfo[index];
}

}  // namespace

const char* opcode_name(Opcode op) { return info(op).name; }

std::optional<Opcode> opcode_from_name(const std::string& name) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    if (name == kInfo[i].name) return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

int opcode_arity(Opcode op) { return info(op).arity; }

bool opcode_has_result(Opcode op) { return info(op).has_result; }

bool opcode_is_commutative(Opcode op) { return info(op).commutative; }

bool opcode_is_binary_arith(Opcode op) {
  return op == Opcode::Add || op == Opcode::Sub || op == Opcode::Mul ||
         op == Opcode::Div;
}

}  // namespace pipesched
