#include "ir/block.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pipesched {

VarId BasicBlock::var_id(const std::string& name) {
  PS_CHECK(!name.empty(), "variable name may not be empty");
  auto [it, inserted] =
      var_ids_.try_emplace(name, static_cast<VarId>(var_names_.size()));
  if (inserted) var_names_.push_back(name);
  return it->second;
}

VarId BasicBlock::find_var(const std::string& name) const {
  auto it = var_ids_.find(name);
  return it == var_ids_.end() ? -1 : it->second;
}

const std::string& BasicBlock::var_name(VarId id) const {
  PS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < var_names_.size());
  return var_names_[static_cast<std::size_t>(id)];
}

TupleIndex BasicBlock::append(const Tuple& t) {
  const auto index = static_cast<TupleIndex>(tuples_.size());
  validate_tuple(index, t);
  tuples_.push_back(t);
  return index;
}

const Tuple& BasicBlock::tuple(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < tuples_.size());
  return tuples_[static_cast<std::size_t>(i)];
}

Tuple& BasicBlock::tuple_mut(TupleIndex i) {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < tuples_.size());
  return tuples_[static_cast<std::size_t>(i)];
}

void BasicBlock::replace_tuples(std::vector<Tuple> tuples) {
  tuples_ = std::move(tuples);
  validate();
}

void BasicBlock::validate() const {
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    validate_tuple(static_cast<TupleIndex>(i), tuples_[i]);
  }
}

void BasicBlock::validate_tuple(TupleIndex i, const Tuple& t) const {
  const int arity = opcode_arity(t.op);
  PS_CHECK(arity >= 1 || t.a.is_none(),
           "tuple " << i << ": unexpected operand a");
  PS_CHECK(arity >= 2 || t.b.is_none(),
           "tuple " << i << ": unexpected operand b");

  auto check_operand = [&](const Operand& o, const char* slot) {
    if (o.is_ref()) {
      PS_CHECK(o.ref >= 0 && o.ref < i,
               "tuple " << i << ": operand " << slot
                        << " must reference an earlier tuple, got " << o.ref);
      PS_CHECK(opcode_has_result(tuples_[static_cast<std::size_t>(o.ref)].op),
               "tuple " << i << ": operand " << slot
                        << " references a value-less tuple " << o.ref);
    }
    if (o.is_var()) {
      PS_CHECK(o.var >= 0 &&
                   static_cast<std::size_t>(o.var) < var_names_.size(),
               "tuple " << i << ": operand " << slot
                        << " names an unknown variable id " << o.var);
    }
  };
  check_operand(t.a, "a");
  check_operand(t.b, "b");

  switch (t.op) {
    case Opcode::Const:
      PS_CHECK(t.a.is_imm(), "tuple " << i << ": Const needs an immediate");
      break;
    case Opcode::Load:
      PS_CHECK(t.a.is_var(), "tuple " << i << ": Load needs a variable");
      break;
    case Opcode::Store:
      PS_CHECK(t.a.is_var(),
               "tuple " << i << ": Store destination must be a variable");
      PS_CHECK(t.b.is_ref() || t.b.is_imm(),
               "tuple " << i << ": Store value must be a ref or immediate");
      break;
    case Opcode::Mov:
    case Opcode::Neg:
      PS_CHECK(t.a.is_ref() || t.a.is_imm(),
               "tuple " << i << ": unary operand must be a ref or immediate");
      break;
    default:
      PS_CHECK(opcode_is_binary_arith(t.op), "tuple " << i << ": bad opcode");
      PS_CHECK(t.a.is_ref() || t.a.is_imm(),
               "tuple " << i << ": left operand must be a ref or immediate");
      PS_CHECK(t.b.is_ref() || t.b.is_imm(),
               "tuple " << i << ": right operand must be a ref or immediate");
      break;
  }
}

std::string BasicBlock::operand_to_string(const Operand& o) const {
  switch (o.kind) {
    case Operand::Kind::None:
      return "_";
    case Operand::Kind::Var:
      return "#" + var_name(o.var);
    case Operand::Kind::Ref:
      return std::to_string(o.ref + 1);  // 1-based, as in the paper
    case Operand::Kind::Imm:
      return "\"" + std::to_string(o.imm) + "\"";
  }
  return "?";
}

std::string BasicBlock::to_string() const {
  std::ostringstream oss;
  if (!label_.empty()) oss << label_ << ":\n";
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    oss << (i + 1) << ": " << opcode_name(t.op);
    const int arity = opcode_arity(t.op);
    if (arity >= 1) oss << ' ' << operand_to_string(t.a);
    if (arity >= 2) oss << ", " << operand_to_string(t.b);
    oss << '\n';
  }
  return oss.str();
}

bool Operand::operator==(const Operand& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::None:
      return true;
    case Kind::Var:
      return var == other.var;
    case Kind::Ref:
      return ref == other.ref;
    case Kind::Imm:
      return imm == other.imm;
  }
  return false;
}

}  // namespace pipesched
