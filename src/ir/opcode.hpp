// Operation taxonomy for the tuple intermediate form (paper Section 3.1).
//
// Each tuple corresponds directly to one target-machine instruction
// (Section 3.4), so the opcode set is deliberately small: memory access,
// constant materialization, copies, and the arithmetic ops whose statement
// frequencies drive the synthetic benchmarks (Section 5.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pipesched {

enum class Opcode : std::uint8_t {
  Const,  ///< materialize an immediate; operand a = Imm
  Load,   ///< read a variable;          operand a = Var
  Store,  ///< write a variable;         a = Var (dest), b = value
  Mov,    ///< copy a value;             a = value
  Neg,    ///< arithmetic negation;      a = value
  Add,    ///< a + b
  Sub,    ///< a - b
  Mul,    ///< a * b
  Div,    ///< a / b (integer; division by zero yields 0 by convention)
};

inline constexpr int kOpcodeCount = 9;

/// Printable mnemonic ("Const", "Load", ...).
const char* opcode_name(Opcode op);

/// Parse a mnemonic; empty when unknown.
std::optional<Opcode> opcode_from_name(const std::string& name);

/// Number of operand slots the opcode consumes (0, 1 or 2).
int opcode_arity(Opcode op);

/// True for opcodes producing a value other tuples may reference.
/// Store is the only value-less opcode.
bool opcode_has_result(Opcode op);

/// True when operand order does not matter (Add, Mul).
bool opcode_is_commutative(Opcode op);

/// True for binary arithmetic (Add..Div).
bool opcode_is_binary_arith(Opcode op);

}  // namespace pipesched
