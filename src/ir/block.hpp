// BasicBlock: a straight-line sequence of tuples plus a variable name table.
//
// Tuples are stored in original (pre-scheduling) order. Instruction
// identities are stable TupleIndex values into this vector; schedulers
// produce permutations of those indices and the block itself is immutable
// during scheduling.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/tuple.hpp"

namespace pipesched {

class BasicBlock {
 public:
  BasicBlock() = default;
  explicit BasicBlock(std::string label) : label_(std::move(label)) {}

  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  // --- variables -----------------------------------------------------------

  /// Intern a variable name, returning its stable id.
  VarId var_id(const std::string& name);

  /// Lookup without interning; -1 when unknown.
  VarId find_var(const std::string& name) const;

  const std::string& var_name(VarId id) const;
  std::size_t var_count() const { return var_names_.size(); }

  // --- tuples --------------------------------------------------------------

  /// Append a tuple; returns its index. Operands must reference earlier
  /// tuples only (checked).
  TupleIndex append(const Tuple& t);

  TupleIndex append(Opcode op, Operand a = Operand::none(),
                    Operand b = Operand::none()) {
    return append(Tuple{op, a, b});
  }

  const Tuple& tuple(TupleIndex i) const;
  Tuple& tuple_mut(TupleIndex i);

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Replace the tuple sequence wholesale (optimizer passes rebuild blocks).
  /// Re-validates reference ordering.
  void replace_tuples(std::vector<Tuple> tuples);

  /// Check structural invariants (operand kinds match opcode expectations,
  /// references point backward to value-producing tuples). Throws Error on
  /// violation.
  void validate() const;

  /// Human-readable listing in the paper's notation, e.g.
  ///   1: Const "15"
  ///   2: Store #b, 1
  std::string to_string() const;

 private:
  void validate_tuple(TupleIndex i, const Tuple& t) const;
  std::string operand_to_string(const Operand& o) const;

  std::string label_;
  std::vector<Tuple> tuples_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_ids_;
};

}  // namespace pipesched
