#include "ir/interp.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace pipesched {

namespace {

std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

}  // namespace

std::int64_t eval_op(Opcode op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case Opcode::Mov:
      return a;
    case Opcode::Neg:
      return wrap_add(~a, 1);
    case Opcode::Add:
      return wrap_add(a, b);
    case Opcode::Sub:
      return wrap_add(a, wrap_add(~b, 1));
    case Opcode::Mul:
      return wrap_mul(a, b);
    case Opcode::Div:
      if (b == 0) return 0;
      // INT64_MIN / -1 overflows in C++; wrap to INT64_MIN as hardware does.
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
      return a / b;
    default:
      PS_ASSERT(false && "eval_op on non-arithmetic opcode");
      return 0;
  }
}

ExecResult interpret(const BasicBlock& block, const VarEnv& initial) {
  std::vector<TupleIndex> order(block.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TupleIndex>(i);
  }
  return interpret_in_order(block, initial, order);
}

ExecResult interpret_in_order(const BasicBlock& block, const VarEnv& initial,
                              const std::vector<TupleIndex>& order) {
  PS_CHECK(order.size() == block.size(),
           "order size " << order.size() << " != block size " << block.size());
  std::vector<bool> seen(block.size(), false);
  for (TupleIndex i : order) {
    PS_CHECK(i >= 0 && static_cast<std::size_t>(i) < block.size() &&
                 !seen[static_cast<std::size_t>(i)],
             "order is not a permutation of tuple indices");
    seen[static_cast<std::size_t>(i)] = true;
  }

  ExecResult result;
  result.tuple_values.assign(block.size(), 0);
  result.final_vars = initial;
  std::vector<bool> computed(block.size(), false);

  auto operand_value = [&](const Operand& o) -> std::int64_t {
    if (o.is_imm()) return o.imm;
    PS_ASSERT(o.is_ref());
    PS_CHECK(computed[static_cast<std::size_t>(o.ref)],
             "order evaluates tuple before its operand " << o.ref + 1);
    return result.tuple_values[static_cast<std::size_t>(o.ref)];
  };

  for (TupleIndex index : order) {
    const Tuple& t = block.tuple(index);
    std::int64_t value = 0;
    switch (t.op) {
      case Opcode::Const:
        value = t.a.imm;
        break;
      case Opcode::Load: {
        auto it = result.final_vars.find(t.a.var);
        value = it == result.final_vars.end() ? 0 : it->second;
        break;
      }
      case Opcode::Store:
        result.final_vars[t.a.var] = operand_value(t.b);
        break;
      default:
        value = opcode_arity(t.op) == 1
                    ? eval_op(t.op, operand_value(t.a), 0)
                    : eval_op(t.op, operand_value(t.a), operand_value(t.b));
        break;
    }
    result.tuple_values[static_cast<std::size_t>(index)] = value;
    computed[static_cast<std::size_t>(index)] = true;
  }
  return result;
}

}  // namespace pipesched
