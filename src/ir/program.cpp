#include "ir/program.hpp"

#include <sstream>

#include "ir/interp.hpp"
#include "util/check.hpp"

namespace pipesched {

Terminator Terminator::jump(BlockId target) {
  Terminator t;
  t.kind = Kind::Jump;
  t.target = target;
  return t;
}

Terminator Terminator::branch(std::string cond_var, BlockId target,
                               bool when_zero) {
  PS_ASSERT(!cond_var.empty());
  Terminator t;
  t.kind = Kind::Branch;
  t.cond_var = std::move(cond_var);
  t.target = target;
  t.when_zero = when_zero;
  return t;
}

Terminator Terminator::ret() {
  Terminator t;
  t.kind = Kind::Return;
  return t;
}

BlockId Program::add_block(std::string label) {
  blocks_.push_back({BasicBlock(std::move(label)), Terminator{}});
  return static_cast<BlockId>(blocks_.size() - 1);
}

const ProgramBlock& Program::block(BlockId id) const {
  PS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < blocks_.size());
  return blocks_[static_cast<std::size_t>(id)];
}

ProgramBlock& Program::block_mut(BlockId id) {
  PS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < blocks_.size());
  return blocks_[static_cast<std::size_t>(id)];
}

std::vector<int> Program::predecessor_counts() const {
  std::vector<int> counts(blocks_.size(), 0);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Terminator& term = blocks_[i].term;
    const bool falls_through = term.kind == Terminator::Kind::FallThrough ||
                               term.kind == Terminator::Kind::Branch;
    if (falls_through && i + 1 < blocks_.size()) {
      ++counts[i + 1];
    }
    if ((term.kind == Terminator::Kind::Jump ||
         term.kind == Terminator::Kind::Branch) &&
        term.target >= 0) {
      ++counts[static_cast<std::size_t>(term.target)];
    }
  }
  return counts;
}

bool Program::only_fallthrough_predecessor(BlockId id) const {
  if (id <= 0) return false;  // entry block: no chaining
  const std::vector<int> counts = predecessor_counts();
  if (counts[static_cast<std::size_t>(id)] != 1) return false;
  const Terminator& prev =
      blocks_[static_cast<std::size_t>(id) - 1].term;
  return prev.kind == Terminator::Kind::FallThrough ||
         (prev.kind == Terminator::Kind::Branch &&
          prev.target != id);
}

void Program::validate() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i].block.validate();
    const Terminator& term = blocks_[i].term;
    if (term.kind == Terminator::Kind::Jump ||
        term.kind == Terminator::Kind::Branch) {
      PS_CHECK(term.target >= 0 &&
                   static_cast<std::size_t>(term.target) < blocks_.size(),
               "block " << i << ": terminator targets unknown block "
                        << term.target);
    }
    if (term.kind == Terminator::Kind::Branch) {
      PS_CHECK(!term.cond_var.empty(),
               "block " << i << ": branch without a condition variable");
    }
    const bool falls_off_end =
        (term.kind == Terminator::Kind::FallThrough ||
         term.kind == Terminator::Kind::Branch) &&
        i + 1 >= blocks_.size();
    PS_CHECK(!falls_off_end,
             "block " << i << ": falls through past the last block");
  }
}

std::string Program::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const ProgramBlock& pb = blocks_[i];
    oss << "block " << i;
    if (!pb.block.label().empty()) oss << " (" << pb.block.label() << ")";
    oss << ":\n";
    std::istringstream lines(pb.block.to_string());
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      // Skip the label line BasicBlock::to_string already prints.
      if (first && !pb.block.label().empty()) {
        first = false;
        continue;
      }
      first = false;
      oss << "  " << line << "\n";
    }
    switch (pb.term.kind) {
      case Terminator::Kind::FallThrough:
        oss << "  -> fall through\n";
        break;
      case Terminator::Kind::Jump:
        oss << "  -> jump block " << pb.term.target << "\n";
        break;
      case Terminator::Kind::Branch:
        oss << "  -> if " << pb.term.cond_var
            << (pb.term.when_zero ? " == 0" : " != 0") << " goto block "
            << pb.term.target << ", else fall through\n";
        break;
      case Terminator::Kind::Return:
        oss << "  -> return\n";
        break;
    }
  }
  return oss.str();
}

ProgramExecResult interpret_program(const Program& program,
                                    const ProgramEnv& initial,
                                    std::size_t max_block_steps) {
  program.validate();
  ProgramExecResult result;
  result.final_vars = initial;
  if (program.size() == 0) return result;

  BlockId current = 0;
  while (result.blocks_executed < max_block_steps) {
    const ProgramBlock& pb = program.block(current);
    // Marshal program memory (by name) into the block's VarId space.
    VarEnv env;
    for (std::size_t v = 0; v < pb.block.var_count(); ++v) {
      const auto it =
          result.final_vars.find(pb.block.var_name(static_cast<VarId>(v)));
      if (it != result.final_vars.end()) {
        env[static_cast<VarId>(v)] = it->second;
      }
    }
    const ExecResult exec = interpret(pb.block, env);
    for (const auto& [var, value] : exec.final_vars) {
      result.final_vars[pb.block.var_name(var)] = value;
    }
    ++result.blocks_executed;

    switch (pb.term.kind) {
      case Terminator::Kind::Return:
        return result;
      case Terminator::Kind::Jump:
        current = pb.term.target;
        break;
      case Terminator::Kind::Branch: {
        const auto it = result.final_vars.find(pb.term.cond_var);
        const std::int64_t cond =
            it == result.final_vars.end() ? 0 : it->second;
        const bool taken = pb.term.when_zero ? cond == 0 : cond != 0;
        current = taken ? pb.term.target : current + 1;
        break;
      }
      case Terminator::Kind::FallThrough:
        ++current;
        break;
    }
    PS_ASSERT(current >= 0 &&
              static_cast<std::size_t>(current) < program.size());
  }
  result.terminated = false;
  return result;
}

}  // namespace pipesched
