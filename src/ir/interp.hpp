// Reference interpreter for tuple code.
//
// Defines the semantics every transformation must preserve: the optimizer
// correctness tests compare final variable states before/after each pass,
// and the scheduler legality tests check that any legal reordering leaves
// the interpreter's outcome unchanged.
//
// Arithmetic is two's-complement int64; Div by zero yields 0 (a total
// function keeps randomized semantic testing trivial — documented
// convention, honoured identically by the constant folder).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/block.hpp"

namespace pipesched {

/// Variable state keyed by VarId.
using VarEnv = std::unordered_map<VarId, std::int64_t>;

/// Outcome of running a block.
struct ExecResult {
  std::vector<std::int64_t> tuple_values;  ///< result of each tuple (0 for Store)
  VarEnv final_vars;                       ///< memory after the block
};

/// Execute the block in original order. Variables not present in `initial`
/// start at 0.
ExecResult interpret(const BasicBlock& block, const VarEnv& initial = {});

/// Execute the block visiting tuples in the given order (a permutation of
/// [0, block.size())). Used to check that legal schedules preserve
/// semantics. Throws Error if `order` is not a permutation.
ExecResult interpret_in_order(const BasicBlock& block, const VarEnv& initial,
                              const std::vector<TupleIndex>& order);

/// Two's-complement evaluation of a binary/unary arithmetic op; shared with
/// the constant folder so folded code cannot diverge from the interpreter.
std::int64_t eval_op(Opcode op, std::int64_t a, std::int64_t b);

}  // namespace pipesched
