// Machine-readable text format for whole programs (CFGs), round-trippable
// through program_to_text() / parse_program_text(). Complements the
// per-block Figure 3 notation of ir/block_parser.hpp.
//
// Format (';'-to-end-of-line comments, as in the block notation —
// '#' introduces variable operands and is never a comment):
//
//   program
//   block entry
//     1: Const "0"
//     2: Store #acc, 1
//     fallthrough
//   block head
//     1: Load #n
//     2: Store #.c0, 1
//     beqz .c0 exit
//   block body
//     ...
//     jump head
//   block exit
//     ...
//     ret
//
// Each `block <label>` opens a block; its tuple lines follow the block
// notation; the block ends with exactly one terminator line:
//   fallthrough | jump <label> | bnez <var> <label> | beqz <var> <label> |
//   ret
// Branch/jump targets are labels, resolved after the whole file is read.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace pipesched {

/// Parse the program text format. Throws Error with line numbers.
Program parse_program_text(const std::string& text);

/// Render `program` in the parse_program_text() format (round-trips).
/// Unlabeled blocks are assigned labels "b<i>".
std::string program_to_text(const Program& program);

}  // namespace pipesched
