#include "ir/block_parser.hpp"

#include <cctype>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace pipesched {

namespace {

/// Cursor over one line of tuple text.
class LineCursor {
 public:
  LineCursor(const std::string& line, int line_no)
      : line_(line), line_no_(line_no) {}

  void skip_ws() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= line_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }

  void expect(char c) {
    PS_CHECK(peek() == c, "line " << line_no_ << ": expected '" << c
                                  << "' near column " << pos_);
    ++pos_;
  }

  std::string word() {
    skip_ws();
    std::size_t begin = pos_;
    // '.' is legal in variable names: the compiler's own temporaries
    // (".c0" branch conditions, ".s0" spill slots) must round-trip.
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
            line_[pos_] == '_' || line_[pos_] == '.')) {
      ++pos_;
    }
    PS_CHECK(pos_ > begin, "line " << line_no_ << ": expected identifier");
    return line_.substr(begin, pos_ - begin);
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t begin = pos_;
    if (pos_ < line_.size() && (line_[pos_] == '-' || line_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    PS_CHECK(pos_ > begin && std::isdigit(static_cast<unsigned char>(
                                 line_[pos_ - 1])),
             "line " << line_no_ << ": expected integer");
    return std::stoll(line_.substr(begin, pos_ - begin));
  }

  int line_no() const { return line_no_; }

 private:
  const std::string& line_;
  int line_no_;
  std::size_t pos_ = 0;
};

Operand parse_operand(LineCursor& cur, BasicBlock& block) {
  const char c = cur.peek();
  if (c == '#') {
    cur.expect('#');
    return Operand::of_var(block.var_id(cur.word()));
  }
  if (c == '"') {
    cur.expect('"');
    const std::int64_t value = cur.integer();
    cur.expect('"');
    return Operand::of_imm(value);
  }
  if (c == '_') {
    cur.expect('_');
    return Operand::none();
  }
  const std::int64_t ref = cur.integer();
  PS_CHECK(ref >= 1, "line " << cur.line_no()
                             << ": tuple references are 1-based, got " << ref);
  return Operand::of_ref(static_cast<TupleIndex>(ref - 1));
}

}  // namespace

BasicBlock parse_block(const std::string& text, std::string label) {
  BasicBlock block(std::move(label));
  int line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    if (auto comment = line.find(';'); comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    line = trim(line);
    if (line.empty()) continue;
    // A bare "name:" line (no opcode after it) sets the block label.
    if (line.back() == ':') {
      block.set_label(line.substr(0, line.size() - 1));
      continue;
    }

    LineCursor cur(line, line_no);
    const std::int64_t number = cur.integer();
    cur.expect(':');
    PS_CHECK(number == static_cast<std::int64_t>(block.size()) + 1,
             "line " << line_no << ": tuples must be numbered sequentially; "
                     << "expected " << block.size() + 1 << " got " << number);

    const std::string mnemonic = cur.word();
    const auto op = opcode_from_name(mnemonic);
    PS_CHECK(op.has_value(),
             "line " << line_no << ": unknown opcode '" << mnemonic << "'");

    Tuple t;
    t.op = *op;
    const int arity = opcode_arity(t.op);
    if (arity >= 1) t.a = parse_operand(cur, block);
    if (arity >= 2) {
      cur.expect(',');
      t.b = parse_operand(cur, block);
    }
    PS_CHECK(cur.at_end(),
             "line " << line_no << ": trailing characters after tuple");
    block.append(t);
  }
  return block;
}

}  // namespace pipesched
