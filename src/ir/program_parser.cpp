#include "ir/program_parser.hpp"

#include <sstream>
#include <unordered_map>

#include "ir/block_parser.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace pipesched {

namespace {

struct PendingBlock {
  std::string label;
  std::string tuple_text;      // accumulated block-notation lines
  Terminator term;             // target stored as -1, patched by label
  std::string target_label;    // for jump/branch
  bool has_terminator = false;
  int declared_line = 0;
};

std::vector<std::string> words_of(const std::string& line) {
  std::vector<std::string> out;
  for (const std::string& w : split(line, ' ')) {
    const std::string t = trim(w);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

}  // namespace

Program parse_program_text(const std::string& text) {
  std::vector<PendingBlock> pending;
  int line_no = 0;

  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    // ';' comments, as in the per-block notation ('#' marks variables).
    if (auto comment = line.find(';'); comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed == "program") continue;

    const std::vector<std::string> words = words_of(trimmed);
    if (words[0] == "block") {
      PS_CHECK(words.size() == 2,
               "line " << line_no << ": block <label>");
      for (const PendingBlock& b : pending) {
        PS_CHECK(b.label != words[1],
                 "line " << line_no << ": duplicate block label '"
                         << words[1] << "'");
      }
      PS_CHECK(pending.empty() || pending.back().has_terminator,
               "line " << line_no << ": previous block '"
                       << pending.back().label
                       << "' is missing its terminator");
      PendingBlock block;
      block.label = words[1];
      block.declared_line = line_no;
      pending.push_back(std::move(block));
      continue;
    }

    PS_CHECK(!pending.empty(),
             "line " << line_no << ": content before the first block");
    PendingBlock& current = pending.back();
    PS_CHECK(!current.has_terminator,
             "line " << line_no << ": content after block '"
                     << current.label << "' terminator");

    if (words[0] == "fallthrough" || words[0] == "ret" ||
        words[0] == "jump" || words[0] == "bnez" || words[0] == "beqz") {
      if (words[0] == "fallthrough") {
        PS_CHECK(words.size() == 1, "line " << line_no << ": fallthrough");
        current.term = Terminator::fall_through();
      } else if (words[0] == "ret") {
        PS_CHECK(words.size() == 1, "line " << line_no << ": ret");
        current.term = Terminator::ret();
      } else if (words[0] == "jump") {
        PS_CHECK(words.size() == 2, "line " << line_no << ": jump <label>");
        current.term = Terminator::jump(0);
        current.target_label = words[1];
      } else {
        PS_CHECK(words.size() == 3,
                 "line " << line_no << ": " << words[0] << " <var> <label>");
        current.term =
            Terminator::branch(words[1], 0, /*when_zero=*/words[0] == "beqz");
        current.target_label = words[2];
      }
      current.has_terminator = true;
      continue;
    }

    current.tuple_text += trimmed;
    current.tuple_text += '\n';
  }

  PS_CHECK(!pending.empty(), "no blocks found");
  PS_CHECK(pending.back().has_terminator,
           "final block '" << pending.back().label
                           << "' is missing its terminator");

  // Resolve labels and build the program.
  std::unordered_map<std::string, BlockId> id_of;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    id_of[pending[i].label] = static_cast<BlockId>(i);
  }
  Program program;
  for (PendingBlock& b : pending) {
    const BlockId id = program.add_block();
    program.block_mut(id).block = parse_block(b.tuple_text, b.label);
    if (!b.target_label.empty()) {
      const auto it = id_of.find(b.target_label);
      PS_CHECK(it != id_of.end(),
               "block '" << b.label << "' (line " << b.declared_line
                         << "): unknown target label '" << b.target_label
                         << "'");
      b.term.target = it->second;
    }
    program.block_mut(id).term = std::move(b.term);
  }
  program.validate();
  return program;
}

std::string program_to_text(const Program& program) {
  // Labels: keep existing ones, assign b<i> where empty; disambiguate is
  // the caller's job (duplicate non-empty labels would not round-trip).
  std::vector<std::string> labels(program.size());
  for (std::size_t i = 0; i < program.size(); ++i) {
    const std::string& label =
        program.block(static_cast<BlockId>(i)).block.label();
    labels[i] = label.empty() ? "b" + std::to_string(i) : label;
  }

  std::ostringstream oss;
  oss << "program\n";
  for (std::size_t i = 0; i < program.size(); ++i) {
    const ProgramBlock& pb = program.block(static_cast<BlockId>(i));
    oss << "block " << labels[i] << "\n";
    // Tuple lines, indented; skip the label line to_string() prepends.
    std::istringstream lines(pb.block.to_string());
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      if (first && !pb.block.label().empty()) {
        first = false;
        continue;
      }
      first = false;
      if (!trim(line).empty()) oss << "  " << trim(line) << "\n";
    }
    switch (pb.term.kind) {
      case Terminator::Kind::FallThrough:
        oss << "  fallthrough\n";
        break;
      case Terminator::Kind::Jump:
        oss << "  jump " << labels[static_cast<std::size_t>(pb.term.target)]
            << "\n";
        break;
      case Terminator::Kind::Branch:
        oss << "  " << (pb.term.when_zero ? "beqz " : "bnez ")
            << pb.term.cond_var << " "
            << labels[static_cast<std::size_t>(pb.term.target)] << "\n";
        break;
      case Terminator::Kind::Return:
        oss << "  ret\n";
        break;
    }
  }
  return oss.str();
}

}  // namespace pipesched
