#include "ir/dag.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace pipesched {

const char* dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::Flow:
      return "flow";
    case DepKind::MemFlow:
      return "memflow";
    case DepKind::Anti:
      return "anti";
    case DepKind::Output:
      return "output";
  }
  return "?";
}

DepGraph::DepGraph(const BasicBlock& block) : DepGraph(block, {}) {}

DepGraph::DepGraph(
    const BasicBlock& block,
    const std::vector<std::pair<TupleIndex, TupleIndex>>& extra_edges)
    : block_(&block) {
  const std::size_t n = block.size();
  preds_.resize(n);
  succs_.resize(n);
  pred_sets_.assign(n, DynBitset(n));
  ancestors_.assign(n, DynBitset(n));
  descendants_.assign(n, DynBitset(n));
  height_.assign(n, 0);
  depth_.assign(n, 0);

  // Per-variable memory-dependence state.
  std::unordered_map<VarId, TupleIndex> last_store;
  std::unordered_map<VarId, std::vector<TupleIndex>> loads_since_store;

  for (std::size_t i = 0; i < n; ++i) {
    const auto index = static_cast<TupleIndex>(i);
    const Tuple& t = block.tuple(index);

    for (const Operand* o : {&t.a, &t.b}) {
      if (o->is_ref()) add_edge(o->ref, index, DepKind::Flow);
    }

    if (t.op == Opcode::Load) {
      if (auto it = last_store.find(t.a.var); it != last_store.end()) {
        add_edge(it->second, index, DepKind::MemFlow);
      }
      loads_since_store[t.a.var].push_back(index);
    } else if (t.op == Opcode::Store) {
      auto& loads = loads_since_store[t.a.var];
      for (TupleIndex load : loads) add_edge(load, index, DepKind::Anti);
      loads.clear();
      if (auto it = last_store.find(t.a.var); it != last_store.end()) {
        add_edge(it->second, index, DepKind::Output);
      }
      last_store[t.a.var] = index;
    }
  }

  for (const auto& [from, to] : extra_edges) {
    PS_CHECK(from >= 0 && to >= 0 && from < to &&
                 static_cast<std::size_t>(to) < n,
             "extra edge must order an earlier tuple before a later one");
    add_edge(from, to, DepKind::Anti);
  }

  compute_closures();
}

void DepGraph::add_edge(TupleIndex from, TupleIndex to, DepKind kind) {
  PS_ASSERT(from >= 0 && to >= 0 && from < to &&
            static_cast<std::size_t>(to) < preds_.size());
  // De-duplicate parallel edges (e.g. a Store whose value is a Load of the
  // same variable carries both Flow and Anti constraints — one edge is
  // enough, and the first recorded kind wins).
  if (pred_sets_[static_cast<std::size_t>(to)].test(
          static_cast<std::size_t>(from))) {
    return;
  }
  pred_sets_[static_cast<std::size_t>(to)].set(static_cast<std::size_t>(from));
  preds_[static_cast<std::size_t>(to)].push_back(from);
  succs_[static_cast<std::size_t>(from)].push_back(to);
  edges_.push_back({from, to, kind});
}

void DepGraph::compute_closures() {
  const std::size_t n = preds_.size();
  // Tuple indices are already topologically sorted (references point
  // backward), so one forward and one backward sweep suffice.
  for (std::size_t i = 0; i < n; ++i) {
    for (TupleIndex p : preds_[i]) {
      ancestors_[i].merge(ancestors_[static_cast<std::size_t>(p)]);
      ancestors_[i].set(static_cast<std::size_t>(p));
      depth_[i] = std::max(depth_[i], depth_[static_cast<std::size_t>(p)] + 1);
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    for (TupleIndex s : succs_[ri]) {
      descendants_[ri].merge(descendants_[static_cast<std::size_t>(s)]);
      descendants_[ri].set(static_cast<std::size_t>(s));
      height_[ri] =
          std::max(height_[ri], height_[static_cast<std::size_t>(s)] + 1);
    }
  }
}

const std::vector<TupleIndex>& DepGraph::preds(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < preds_.size());
  return preds_[static_cast<std::size_t>(i)];
}

const std::vector<TupleIndex>& DepGraph::succs(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < succs_.size());
  return succs_[static_cast<std::size_t>(i)];
}

const DynBitset& DepGraph::pred_set(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < pred_sets_.size());
  return pred_sets_[static_cast<std::size_t>(i)];
}

const DynBitset& DepGraph::ancestors(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < ancestors_.size());
  return ancestors_[static_cast<std::size_t>(i)];
}

const DynBitset& DepGraph::descendants(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < descendants_.size());
  return descendants_[static_cast<std::size_t>(i)];
}

int DepGraph::earliest_position(TupleIndex i) const {
  return static_cast<int>(ancestors(i).count()) + 1;
}

int DepGraph::latest_position(TupleIndex i) const {
  return static_cast<int>(size() - descendants(i).count());
}

int DepGraph::height(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < height_.size());
  return height_[static_cast<std::size_t>(i)];
}

int DepGraph::depth(TupleIndex i) const {
  PS_ASSERT(i >= 0 && static_cast<std::size_t>(i) < depth_.size());
  return depth_[static_cast<std::size_t>(i)];
}

int DepGraph::critical_path_length() const {
  int best = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    best = std::max(best, height_[i] + 1);
  }
  return size() ? best : 0;
}

bool DepGraph::is_legal_order(const std::vector<TupleIndex>& order) const {
  if (order.size() != size()) return false;
  DynBitset placed(size());
  for (TupleIndex i : order) {
    if (i < 0 || static_cast<std::size_t>(i) >= size()) return false;
    if (placed.test(static_cast<std::size_t>(i))) return false;
    if (!pred_set(i).is_subset_of(placed)) return false;
    placed.set(static_cast<std::size_t>(i));
  }
  return true;
}

std::string DepGraph::to_dot() const {
  std::ostringstream oss;
  oss << "digraph block {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < size(); ++i) {
    const Tuple& t = block_->tuple(static_cast<TupleIndex>(i));
    oss << "  n" << i + 1 << " [label=\"" << i + 1 << ": "
        << opcode_name(t.op) << "\"];\n";
  }
  for (const DepEdge& e : edges_) {
    oss << "  n" << e.from + 1 << " -> n" << e.to + 1 << " [label=\""
        << dep_kind_name(e.kind) << "\"];\n";
  }
  oss << "}\n";
  return oss.str();
}

namespace {

std::uint64_t count_orders_recursive(const DepGraph& dag, DynBitset& placed,
                                     std::vector<int>& unplaced_preds,
                                     std::size_t placed_count,
                                     std::uint64_t budget) {
  const std::size_t n = dag.size();
  if (placed_count == n) return 1;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n && budget > 0; ++i) {
    if (placed.test(i) || unplaced_preds[i] != 0) continue;
    placed.set(i);
    for (TupleIndex s : dag.succs(static_cast<TupleIndex>(i))) {
      --unplaced_preds[static_cast<std::size_t>(s)];
    }
    const std::uint64_t found = count_orders_recursive(
        dag, placed, unplaced_preds, placed_count + 1, budget);
    total += found;
    budget -= found;
    placed.reset(i);
    for (TupleIndex s : dag.succs(static_cast<TupleIndex>(i))) {
      ++unplaced_preds[static_cast<std::size_t>(s)];
    }
  }
  return total;
}

}  // namespace

std::uint64_t count_topological_orders(const DepGraph& dag,
                                       std::uint64_t cap) {
  PS_CHECK(cap > 0, "cap must be positive");
  DynBitset placed(dag.size());
  std::vector<int> unplaced_preds(dag.size());
  for (std::size_t i = 0; i < dag.size(); ++i) {
    unplaced_preds[i] =
        static_cast<int>(dag.preds(static_cast<TupleIndex>(i)).size());
  }
  return count_orders_recursive(dag, placed, unplaced_preds, 0, cap);
}

double factorial_double(int n) {
  PS_CHECK(n >= 0, "factorial of negative value");
  double f = 1;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}

std::string factorial_pretty(int n) {
  PS_CHECK(n >= 0 && n <= 40, "factorial_pretty supports 0..40, got " << n);
  // Exact product over base-1e9 limbs, little-endian.
  std::vector<std::uint64_t> limbs{1};
  constexpr std::uint64_t kBase = 1'000'000'000;
  for (int i = 2; i <= n; ++i) {
    std::uint64_t carry = 0;
    for (auto& limb : limbs) {
      const std::uint64_t value = limb * static_cast<std::uint64_t>(i) + carry;
      limb = value % kBase;
      carry = value / kBase;
    }
    while (carry) {
      limbs.push_back(carry % kBase);
      carry /= kBase;
    }
  }
  std::string digits = std::to_string(limbs.back());
  for (std::size_t i = limbs.size() - 1; i-- > 0;) {
    std::string part = std::to_string(limbs[i]);
    digits += std::string(9 - part.size(), '0') + part;
  }
  // Insert thousands separators.
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace pipesched
