#include "core/compiler.hpp"

#include "frontend/codegen.hpp"
#include "frontend/opt/passes.hpp"
#include "frontend/parser.hpp"
#include "regalloc/spill.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace pipesched {

LogHistogram& compile_stage_histogram(const char* stage) {
  return metrics_histogram("ps_compile_stage_seconds", {{"stage", stage}},
                           "Wall-clock seconds per compile stage");
}

Schedule run_scheduler(SchedulerKind kind, const Machine& machine,
                       const DepGraph& dag, const SearchConfig& search,
                       SearchStats* stats, const PipelineState& initial) {
  // Named after the scheduler so the timeline distinguishes e.g. the
  // list-schedule seed pass from the optimal search. Every policy fills
  // its full stats ledger itself (Scheduler-interface contract).
  TraceSpan trace_span(scheduler_kind_name(kind));
  // The optimal policy goes through run_optimal_backend so the persistent
  // result cache (SearchConfig::result_cache_path) covers plain compiles,
  // not just the register-limited and corpus paths.
  ScheduleResult result =
      kind == SchedulerKind::Optimal
          ? run_optimal_backend(machine, dag, search, initial)
          : make_scheduler(kind, search)->run(machine, dag, initial);
  if (stats) *stats = result.stats;
  return std::move(result.schedule);
}

namespace {

BasicBlock prepare_block(const BasicBlock& block,
                         const CompileOptions& options) {
  BasicBlock prepared =
      options.optimize ? run_standard_pipeline(block) : block;
  if (options.reassociate) {
    prepared = reassociation(prepared).block;
    prepared = dead_code_elimination(prepared).block;
  }
  return prepared;
}

}  // namespace

CompileResult compile_block(const BasicBlock& block,
                            const CompileOptions& options) {
  // The Figure 2 pipeline as nested trace spans: optimize -> DAG build
  // -> schedule -> regalloc -> emit, all under one compile_block parent.
  PS_TRACE_SPAN("compile_block");
  CompileResult result;
  {
    PS_TRACE_SPAN("optimize");
    static LogHistogram& h = compile_stage_histogram("optimize");
    MetricTimer timer(h);
    result.block = prepare_block(block, options);
    result.block.validate();
  }

  const DepGraph dag = [&] {
    PS_TRACE_SPAN("dag_build");
    static LogHistogram& h = compile_stage_histogram("dag_build");
    MetricTimer timer(h);
    return DepGraph(result.block);
  }();
  {
    PS_TRACE_SPAN("schedule");
    static LogHistogram& h = compile_stage_histogram("schedule");
    MetricTimer timer(h);
    result.schedule = run_scheduler(options.scheduler, options.machine, dag,
                                    options.search, &result.stats);
  }
  {
    PS_TRACE_SPAN("regalloc");
    static LogHistogram& h = compile_stage_histogram("regalloc");
    MetricTimer timer(h);
    result.allocation =
        linear_scan(result.block, result.schedule.order, options.registers);
  }
  {
    PS_TRACE_SPAN("emit");
    static LogHistogram& h = compile_stage_histogram("emit");
    MetricTimer timer(h);
    result.assembly = emit_assembly(result.block, options.machine,
                                    result.schedule, result.allocation,
                                    options.emit);
  }
  return result;
}

CompileResult compile_source(const std::string& source,
                             const CompileOptions& options) {
  BasicBlock tuples;
  {
    PS_TRACE_SPAN("parse");
    static LogHistogram& h = compile_stage_histogram("parse");
    MetricTimer timer(h);
    const SourceProgram program = parse_source(source);
    tuples = generate_tuples(program);
  }
  return compile_block(tuples, options);
}

RegisterLimitedResult compile_with_register_limit(const BasicBlock& block,
                                                  CompileOptions options) {
  PS_CHECK(options.registers >= 3,
           "register-limited compilation needs at least 3 registers");
  RegisterLimitedResult result;
  CompileResult& out = result.compiled;

  PS_TRACE_SPAN("compile_register_limited");
  {
    PS_TRACE_SPAN("optimize");
    out.block = prepare_block(block, options);
  }

  // Step 2: spill until the (safe) original order fits the file.
  if (block_max_live(out.block) > options.registers) {
    PS_TRACE_SPAN("spill");
    SpillResult spilled = insert_spill_code(out.block, options.registers);
    out.block = std::move(spilled.block);
    result.values_spilled = spilled.values_spilled;
  }

  // Step 3: pressure-constrained search.
  const DepGraph dag = [&] {
    PS_TRACE_SPAN("dag_build");
    return DepGraph(out.block);
  }();
  SearchConfig search = options.search;
  search.max_live_registers = options.registers;
  const ScheduleResult searched = [&] {
    PS_TRACE_SPAN("schedule");
    return run_optimal_backend(options.machine, dag, search);
  }();
  result.scheduler_feasible = searched.stats.feasible;
  out.stats = searched.stats;
  if (searched.stats.feasible) {
    out.schedule = searched.schedule;
  } else {
    // The post-spill original order is feasible by construction.
    std::vector<TupleIndex> order(out.block.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<TupleIndex>(i);
    }
    out.schedule = evaluate_order(options.machine, dag, order);
    out.stats.best_nops = out.schedule.total_nops();
  }

  {
    PS_TRACE_SPAN("regalloc");
    out.allocation =
        linear_scan(out.block, out.schedule.order, options.registers);
  }
  PS_ASSERT(out.allocation.registers_used <= options.registers);
  {
    PS_TRACE_SPAN("emit");
    out.assembly = emit_assembly(out.block, options.machine, out.schedule,
                                 out.allocation, options.emit);
  }
  return result;
}

}  // namespace pipesched
