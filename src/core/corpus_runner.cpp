#include "core/corpus_runner.hpp"

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>

#include "ir/dag.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace pipesched {

void fill_run_record(RunRecord& record, const SearchStats& stats) {
  record.initial_nops = stats.initial_nops;
  record.final_nops = stats.best_nops;
  record.omega_calls = stats.omega_calls;
  record.schedules_examined = stats.schedules_examined;
  record.nodes_expanded = stats.nodes_expanded;
  record.cache_probes = stats.cache_probes;
  record.cache_hits = stats.cache_hits;
  record.cache_evictions = stats.cache_evictions;
  record.cache_superseded = stats.cache_superseded;
  record.result_cache_hit = stats.result_cache_hit;
  record.completed = stats.completed;
  record.curtail_reason = stats.curtail_reason;
  record.feasible = stats.feasible;
  record.portfolio_winner = stats.portfolio_winner;
  record.pruned_window = stats.pruned_window;
  record.pruned_readiness = stats.pruned_readiness;
  record.pruned_equivalence = stats.pruned_equivalence;
  record.pruned_alpha_beta = stats.pruned_alpha_beta;
  record.pruned_lower_bound = stats.pruned_lower_bound;
  record.pruned_dominance = stats.pruned_dominance;
  record.pruned_pressure = stats.pruned_pressure;
  record.seconds = stats.seconds;
}

namespace {

std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

/// Dump a failed block in `psc --tuples` replay form; returns the path,
/// or "" when the dump itself failed (best effort — the record's error
/// field already carries the primary failure).
std::string dump_reproducer(const std::string& prefix, std::size_t index,
                            const BasicBlock& block,
                            const std::string& error) {
  const std::string path = prefix + std::to_string(index) + ".tuples";
  std::ofstream out(path);
  if (!out.good()) return "";
  out << "; corpus block " << index << " failed: " << one_line(error)
      << "\n; replay: psc --tuples " << path << "\n"
      << block.to_string();
  out.flush();
  return out.good() ? path : "";
}

}  // namespace

std::vector<RunRecord> run_corpus(const std::vector<GeneratorParams>& params,
                                  const CorpusRunOptions& options) {
  std::vector<RunRecord> records(params.size());
  ThreadPool pool(options.threads);

  // Always keep a live ProgressReporter: when the caller did not pass
  // one, a silent (snapshot-only) reporter still feeds the obs HTTP
  // server's /status endpoint with done/total/errors/rate for this run.
  std::unique_ptr<ProgressReporter> silent_progress;
  ProgressReporter* progress = options.progress;
  if (progress == nullptr) {
    silent_progress = std::make_unique<ProgressReporter>(params.size());
    progress = silent_progress.get();
  }

  // Nested-parallelism policy: a corpus with many blocks already keeps
  // every pool worker busy, so intra-search threads would only multiply
  // oversubscription (threads x search_threads runnable threads fighting
  // over the same cores). Across-block parallelism wins whenever it can
  // saturate the pool; per-block search threads are honored only when the
  // block count is too small to do so — the "few hard blocks" regime the
  // parallel search exists for.
  SearchConfig search = options.search;
  if (search.search_threads != 1 &&
      params.size() >= pool.thread_count() * 4) {
    search.search_threads = 1;
  }

  std::atomic<std::uint64_t> blocks_done{0};
  static Counter& blocks_ok = metrics_counter(
      "ps_corpus_blocks_total", {{"status", "ok"}},
      "Corpus blocks processed, by outcome");
  static Counter& blocks_errored = metrics_counter(
      "ps_corpus_blocks_total", {{"status", "error"}},
      "Corpus blocks processed, by outcome");
  static LogHistogram& block_seconds = metrics_histogram(
      "ps_corpus_block_seconds", {},
      "Wall-clock seconds per corpus block (generate + schedule)");
  parallel_for_each(pool, params.size(), [&](std::size_t i) {
    // Per-block span on the worker's own track: the timeline shows which
    // worker ran which block and how the pool's load balanced.
    PS_TRACE_SPAN("corpus_block");
    PS_PROF_PHASE("corpus_block");
    MetricTimer block_timer(block_seconds);
    RunRecord& record = records[i];
    BasicBlock block;
    try {
      {
        PS_PROF_PHASE("generate");
        block = generate_block(params[i]);
      }
      record.block_size = static_cast<int>(block.size());
      if (block.empty()) {
        // Fully optimized away; trivially optimal.
      } else {
        if (options.fault_hook) options.fault_hook(i, block);
        const DepGraph dag(block);
        const ScheduleResult result =
            run_optimal_backend(options.machine, dag, search);
        fill_run_record(record, result.stats);
      }
    } catch (const std::exception& e) {
      // One bad block must not destroy the batch: record the failure and
      // keep scheduling the rest of the corpus.
      record.error = e.what()[0] ? e.what() : "unknown exception";
      record.completed = false;
      if (!options.reproducer_prefix.empty() && !block.empty()) {
        record.reproducer = dump_reproducer(options.reproducer_prefix, i,
                                            block, record.error);
      }
    }
    if (trace_enabled()) {
      trace_counter("corpus/blocks_done",
                    static_cast<double>(
                        blocks_done.fetch_add(1, std::memory_order_relaxed) +
                        1));
    }
    (record.error.empty() ? blocks_ok : blocks_errored).increment();
    progress->add(!record.error.empty());
  });
  progress->finish();
  return records;
}

namespace {

void fill_column(CorpusSummary::Column& col, std::size_t total_runs,
                 const std::vector<const RunRecord*>& records) {
  col.runs = records.size();
  col.percent = total_runs
                    ? 100.0 * static_cast<double>(records.size()) /
                          static_cast<double>(total_runs)
                    : 0.0;
  if (records.empty()) return;
  double insns = 0;
  double initial = 0;
  double final_nops = 0;
  double omega = 0;
  double nodes = 0;
  double probes = 0;
  double hits = 0;
  double secs = 0;
  double pr_window = 0, pr_ready = 0, pr_equiv = 0, pr_ab = 0, pr_lb = 0,
         pr_dom = 0, pr_pressure = 0;
  std::vector<double> block_seconds;  // retained for the quantile rows
  block_seconds.reserve(records.size());
  std::size_t clean = 0;     // non-error records: the averaging population
  std::size_t feasible = 0;  // population for the final-NOPs average
  for (const RunRecord* r : records) {
    if (!r->error.empty()) {
      ++col.errors;
      continue;
    }
    ++clean;
    block_seconds.push_back(r->seconds);
    if (r->feasible) {
      ++feasible;
      final_nops += r->final_nops;
    } else {
      ++col.infeasible;
    }
    if (r->result_cache_hit) ++col.result_cache_hits;
    if (r->curtail_reason == CurtailReason::Lambda) ++col.curtailed_lambda;
    if (r->curtail_reason == CurtailReason::Deadline) {
      ++col.curtailed_deadline;
    }
    insns += r->block_size;
    initial += r->initial_nops;
    omega += static_cast<double>(r->omega_calls);
    nodes += static_cast<double>(r->nodes_expanded);
    probes += static_cast<double>(r->cache_probes);
    hits += static_cast<double>(r->cache_hits);
    secs += r->seconds;
    pr_window += static_cast<double>(r->pruned_window);
    pr_ready += static_cast<double>(r->pruned_readiness);
    pr_equiv += static_cast<double>(r->pruned_equivalence);
    pr_ab += static_cast<double>(r->pruned_alpha_beta);
    pr_lb += static_cast<double>(r->pruned_lower_bound);
    pr_dom += static_cast<double>(r->pruned_dominance);
    pr_pressure += static_cast<double>(r->pruned_pressure);
  }
  if (clean == 0) return;
  const auto n = static_cast<double>(clean);
  col.avg_instructions = insns / n;
  col.avg_initial_nops = initial / n;
  col.avg_final_nops =
      feasible ? final_nops / static_cast<double>(feasible) : 0.0;
  col.avg_omega_calls = omega / n;
  col.avg_nodes_expanded = nodes / n;
  col.cache_hit_percent = probes > 0 ? 100.0 * hits / probes : 0.0;
  col.result_cache_hit_percent =
      100.0 * static_cast<double>(col.result_cache_hits) / n;
  col.avg_seconds = secs / n;
  // One sort for all three quantiles (the old pattern — percentile() per
  // row — re-sorted the whole sample each time).
  const std::vector<double> qs =
      quantiles(std::move(block_seconds), {50.0, 90.0, 99.0});
  col.p50_seconds = qs[0];
  col.p90_seconds = qs[1];
  col.p99_seconds = qs[2];
  col.avg_pruned_window = pr_window / n;
  col.avg_pruned_readiness = pr_ready / n;
  col.avg_pruned_equivalence = pr_equiv / n;
  col.avg_pruned_alpha_beta = pr_ab / n;
  col.avg_pruned_lower_bound = pr_lb / n;
  col.avg_pruned_dominance = pr_dom / n;
  col.avg_pruned_pressure = pr_pressure / n;
}

}  // namespace

CorpusSummary summarize_corpus(const std::vector<RunRecord>& records) {
  std::vector<const RunRecord*> completed;
  std::vector<const RunRecord*> truncated;
  std::vector<const RunRecord*> all;
  for (const RunRecord& r : records) {
    all.push_back(&r);
    if (!r.error.empty()) continue;  // counted via Column::errors on totals
    (r.completed ? completed : truncated).push_back(&r);
  }
  CorpusSummary summary;
  fill_column(summary.completed, records.size(), completed);
  fill_column(summary.truncated, records.size(), truncated);
  fill_column(summary.total, records.size(), all);
  return summary;
}

std::string render_corpus_summary(const CorpusSummary& summary) {
  std::ostringstream oss;
  auto row = [&](const std::string& label, auto get) {
    oss << pad_right(label, 30) << pad_left(get(summary.completed), 14)
        << pad_left(get(summary.truncated), 14)
        << pad_left(get(summary.total), 14) << "\n";
  };
  oss << pad_right("", 30) << pad_left("Completed", 14)
      << pad_left("Truncated", 14) << pad_left("Totals", 14) << "\n";
  oss << pad_right("", 30) << pad_left("(Optimal)", 14)
      << pad_left("(Suboptimal?)", 14) << pad_left("", 14) << "\n";
  row("Number of Runs", [](const CorpusSummary::Column& c) {
    return std::to_string(c.runs);
  });
  row("Percentage of Runs", [](const CorpusSummary::Column& c) {
    return compact_double(c.percent, 4) + "%";
  });
  row("Avg. Instructions/Block", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_instructions, 4);
  });
  row("Avg. Initial NOPs", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_initial_nops, 3);
  });
  row("Avg. Final NOPs", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_final_nops, 3);
  });
  row("Avg. Omega Calls", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_omega_calls, 4);
  });
  row("Avg. Nodes Expanded", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_nodes_expanded, 4);
  });
  row("Cache Hit Rate", [](const CorpusSummary::Column& c) {
    return compact_double(c.cache_hit_percent, 4) + "%";
  });
  row("Result Cache Hit Rate", [](const CorpusSummary::Column& c) {
    return compact_double(c.result_cache_hit_percent, 4) + "%";
  });
  row("Avg. Search Time", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_seconds * 1e6, 3) + "us";
  });
  row("p50 Search Time", [](const CorpusSummary::Column& c) {
    return compact_double(c.p50_seconds * 1e6, 3) + "us";
  });
  row("p90 Search Time", [](const CorpusSummary::Column& c) {
    return compact_double(c.p90_seconds * 1e6, 3) + "us";
  });
  row("p99 Search Time", [](const CorpusSummary::Column& c) {
    return compact_double(c.p99_seconds * 1e6, 3) + "us";
  });
  row("Curtailed (lambda)", [](const CorpusSummary::Column& c) {
    return std::to_string(c.curtailed_lambda);
  });
  row("Curtailed (deadline)", [](const CorpusSummary::Column& c) {
    return std::to_string(c.curtailed_deadline);
  });
  row("Infeasible Blocks", [](const CorpusSummary::Column& c) {
    return std::to_string(c.infeasible);
  });
  row("Errored Blocks", [](const CorpusSummary::Column& c) {
    return std::to_string(c.errors);
  });
  row("Avg. Window Prunes [5a]", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_pruned_window, 4);
  });
  row("Avg. Readiness Prunes [5b]", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_pruned_readiness, 4);
  });
  row("Avg. Equivalence Prunes [5c]", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_pruned_equivalence, 4);
  });
  row("Avg. Alpha-Beta Prunes [6]", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_pruned_alpha_beta, 4);
  });
  row("Avg. Lower-Bound Prunes", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_pruned_lower_bound, 4);
  });
  row("Avg. Dominance Prunes", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_pruned_dominance, 4);
  });
  row("Avg. Pressure Prunes", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_pruned_pressure, 4);
  });
  if (metrics_enabled()) {
    // Registry cross-check: process-wide totals accumulated by the
    // instrumentation layers during this (and any earlier) corpus run.
    const MetricsSnapshot snapshot = metrics_snapshot();
    oss << "\nmetrics-derived totals: "
        << static_cast<std::uint64_t>(snapshot.value_or_zero(
               "ps_corpus_blocks_total", {{"status", "ok"}}))
        << " blocks ok, "
        << static_cast<std::uint64_t>(snapshot.value_or_zero(
               "ps_corpus_blocks_total", {{"status", "error"}}))
        << " errored, "
        << static_cast<std::uint64_t>(
               snapshot.value_or_zero("ps_search_runs_total"))
        << " searches, "
        << static_cast<std::uint64_t>(
               snapshot.value_or_zero("ps_search_nodes_expanded_total"))
        << " nodes expanded\n"
        << metrics_summary_line() << "\n";
  }
  return oss.str();
}

namespace {

/// One definition of the export layout so the CSV and JSONL files can
/// never drift apart.
template <typename Emit>
void emit_record_fields(const RunRecord& r, std::size_t index, Emit&& emit) {
  emit("index", std::to_string(index), true);
  emit("block_size", std::to_string(r.block_size), true);
  emit("initial_nops", std::to_string(r.initial_nops), true);
  emit("final_nops", std::to_string(r.final_nops), true);
  emit("omega_calls", std::to_string(r.omega_calls), true);
  emit("schedules_examined", std::to_string(r.schedules_examined), true);
  emit("nodes_expanded", std::to_string(r.nodes_expanded), true);
  emit("cache_probes", std::to_string(r.cache_probes), true);
  emit("cache_hits", std::to_string(r.cache_hits), true);
  emit("cache_evictions", std::to_string(r.cache_evictions), true);
  emit("cache_superseded", std::to_string(r.cache_superseded), true);
  emit("result_cache_hit", r.result_cache_hit ? "true" : "false", true);
  emit("completed", r.completed ? "true" : "false", true);
  emit("curtail_reason", curtail_reason_name(r.curtail_reason), false);
  emit("feasible", r.feasible ? "true" : "false", true);
  emit("portfolio_winner", portfolio_winner_name(r.portfolio_winner), false);
  emit("pruned_window", std::to_string(r.pruned_window), true);
  emit("pruned_readiness", std::to_string(r.pruned_readiness), true);
  emit("pruned_equivalence", std::to_string(r.pruned_equivalence), true);
  emit("pruned_alpha_beta", std::to_string(r.pruned_alpha_beta), true);
  emit("pruned_lower_bound", std::to_string(r.pruned_lower_bound), true);
  emit("pruned_dominance", std::to_string(r.pruned_dominance), true);
  emit("pruned_pressure", std::to_string(r.pruned_pressure), true);
  {
    std::ostringstream oss;
    oss << r.seconds;
    emit("seconds", oss.str(), true);
  }
  emit("error", r.error, false);
  emit("reproducer", r.reproducer, false);
}

}  // namespace

void write_corpus_csv(const std::vector<RunRecord>& records,
                      const std::string& path) {
  CsvWriter csv(path);
  std::vector<std::string> header;
  if (!records.empty()) {
    emit_record_fields(records.front(), 0,
                       [&](const char* key, const std::string&, bool) {
                         header.push_back(key);
                       });
  } else {
    RunRecord dummy;
    emit_record_fields(dummy, 0,
                       [&](const char* key, const std::string&, bool) {
                         header.push_back(key);
                       });
  }
  csv.row(header);
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::vector<std::string> cells;
    emit_record_fields(records[i], i,
                       [&](const char*, const std::string& value, bool) {
                         cells.push_back(value);
                       });
    csv.row(cells);
  }
  csv.close();
}

void write_corpus_jsonl(const std::vector<RunRecord>& records,
                        const std::string& path) {
  JsonlWriter out(path);
  for (std::size_t i = 0; i < records.size(); ++i) {
    out.begin();
    emit_record_fields(
        records[i], i,
        [&](const char* key, const std::string& value, bool numeric) {
          // Numeric/bool cells are already valid JSON values; strings
          // need quoting.
          if (numeric) {
            out.field_raw(key, value);
          } else {
            out.field(key, value);
          }
        });
    out.end();
  }
  out.close();
}

namespace {

void write_bench_column(std::ostream& out, const char* name,
                        const CorpusSummary::Column& c, const char* indent) {
  out << indent << json_quote(name) << ": {\n";
  const std::string inner = std::string(indent) + "  ";
  auto field = [&](const char* key, const std::string& value, bool last) {
    out << inner << json_quote(key) << ": " << value << (last ? "\n" : ",\n");
  };
  auto num = [](double v) {
    std::ostringstream oss;
    oss << v;
    return oss.str();
  };
  field("runs", std::to_string(c.runs), false);
  field("percent", num(c.percent), false);
  field("avg_instructions", num(c.avg_instructions), false);
  field("avg_initial_nops", num(c.avg_initial_nops), false);
  field("avg_final_nops", num(c.avg_final_nops), false);
  field("avg_omega_calls", num(c.avg_omega_calls), false);
  field("avg_nodes_expanded", num(c.avg_nodes_expanded), false);
  field("cache_hit_percent", num(c.cache_hit_percent), false);
  field("result_cache_hits", std::to_string(c.result_cache_hits), false);
  field("result_cache_hit_percent", num(c.result_cache_hit_percent), false);
  field("avg_seconds", num(c.avg_seconds), false);
  field("p50_seconds", num(c.p50_seconds), false);
  field("p90_seconds", num(c.p90_seconds), false);
  field("p99_seconds", num(c.p99_seconds), false);
  field("errors", std::to_string(c.errors), false);
  field("infeasible", std::to_string(c.infeasible), false);
  field("curtailed_lambda", std::to_string(c.curtailed_lambda), false);
  field("curtailed_deadline", std::to_string(c.curtailed_deadline), false);
  field("avg_pruned_window", num(c.avg_pruned_window), false);
  field("avg_pruned_readiness", num(c.avg_pruned_readiness), false);
  field("avg_pruned_equivalence", num(c.avg_pruned_equivalence), false);
  field("avg_pruned_alpha_beta", num(c.avg_pruned_alpha_beta), false);
  field("avg_pruned_lower_bound", num(c.avg_pruned_lower_bound), false);
  field("avg_pruned_dominance", num(c.avg_pruned_dominance), false);
  field("avg_pruned_pressure", num(c.avg_pruned_pressure), true);
  out << indent << "}";
}

}  // namespace

namespace {

/// The exact-integer roll-up: deterministic for a fixed corpus seed, so
/// bench_diff can compare these fields bit-for-bit where the summary
/// averages would drift through floating-point formatting.
void write_bench_metrics(std::ostream& out,
                         const std::vector<RunRecord>& records,
                         const char* indent) {
  std::uint64_t initial_nops = 0, final_nops = 0, omega = 0, nodes = 0,
                examined = 0, probes = 0, hits = 0;
  std::size_t errors = 0, infeasible = 0, optimal = 0, curtailed_lambda = 0,
              curtailed_deadline = 0, wins_bnb = 0, wins_cp = 0,
              result_cache_hits = 0;
  for (const RunRecord& r : records) {
    if (!r.error.empty()) {
      ++errors;
      continue;
    }
    if (r.result_cache_hit) ++result_cache_hits;
    if (r.portfolio_winner == PortfolioWinner::Bnb) ++wins_bnb;
    if (r.portfolio_winner == PortfolioWinner::Cp) ++wins_cp;
    if (r.feasible) {
      initial_nops += static_cast<std::uint64_t>(r.initial_nops);
      final_nops += static_cast<std::uint64_t>(r.final_nops);
    } else {
      ++infeasible;
    }
    if (r.completed) ++optimal;
    if (r.curtail_reason == CurtailReason::Lambda) ++curtailed_lambda;
    if (r.curtail_reason == CurtailReason::Deadline) ++curtailed_deadline;
    omega += r.omega_calls;
    nodes += r.nodes_expanded;
    examined += r.schedules_examined;
    probes += r.cache_probes;
    hits += r.cache_hits;
  }
  out << indent << json_quote("metrics") << ": {\n";
  const std::string inner = std::string(indent) + "  ";
  auto field = [&](const char* key, std::uint64_t value, bool last) {
    out << inner << json_quote(key) << ": " << value
        << (last ? "\n" : ",\n");
  };
  field("blocks", records.size(), false);
  field("errors", errors, false);
  field("optimal_blocks", optimal, false);
  field("infeasible_blocks", infeasible, false);
  field("curtailed_lambda_blocks", curtailed_lambda, false);
  field("curtailed_deadline_blocks", curtailed_deadline, false);
  // Always emitted (zero for the single-backend runs) so the bench file
  // shape does not depend on --backend.
  field("portfolio_wins_bnb", wins_bnb, false);
  field("portfolio_wins_cp", wins_cp, false);
  field("total_initial_nops", initial_nops, false);
  field("total_final_nops", final_nops, false);
  field("total_omega_calls", omega, false);
  field("total_nodes_expanded", nodes, false);
  field("total_schedules_examined", examined, false);
  field("total_cache_probes", probes, false);
  field("total_cache_hits", hits, false);
  field("total_result_cache_hits", result_cache_hits, true);
  out << indent << "}";
}

}  // namespace

void write_corpus_bench_json(const CorpusSummary& summary,
                             const std::vector<RunRecord>& records,
                             const CorpusBenchMeta& meta,
                             const std::string& path) {
  std::ofstream out(path);
  PS_CHECK(out.good(), "cannot open bench roll-up file: " << path);
  out << "{\n";
  out << "  " << json_quote("machine") << ": " << json_quote(meta.machine)
      << ",\n";
  out << "  " << json_quote("backend") << ": " << json_quote(meta.backend)
      << ",\n";
  out << "  " << json_quote("curtail_lambda") << ": " << meta.curtail_lambda
      << ",\n";
  out << "  " << json_quote("deadline_seconds") << ": "
      << meta.deadline_seconds << ",\n";
  out << "  " << json_quote("total_wall_seconds") << ": "
      << meta.total_wall_seconds << ",\n";
  write_bench_metrics(out, records, "  ");
  out << ",\n";
  write_bench_column(out, "completed", summary.completed, "  ");
  out << ",\n";
  write_bench_column(out, "truncated", summary.truncated, "  ");
  out << ",\n";
  write_bench_column(out, "total", summary.total, "  ");
  out << "\n}\n";
  out.flush();
  PS_CHECK(out.good(), "write failure on bench roll-up file: " << path);
}

}  // namespace pipesched
