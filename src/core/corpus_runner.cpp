#include "core/corpus_runner.hpp"

#include <sstream>

#include "ir/dag.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace pipesched {

std::vector<RunRecord> run_corpus(const std::vector<GeneratorParams>& params,
                                  const CorpusRunOptions& options) {
  std::vector<RunRecord> records(params.size());
  ThreadPool pool(options.threads);
  parallel_for_each(pool, params.size(), [&](std::size_t i) {
    const BasicBlock block = generate_block(params[i]);
    RunRecord& record = records[i];
    record.block_size = static_cast<int>(block.size());
    if (block.empty()) return;  // fully optimized away; trivially optimal
    const DepGraph dag(block);
    const OptimalResult result =
        optimal_schedule(options.machine, dag, options.search);
    record.initial_nops = result.stats.initial_nops;
    record.final_nops = result.stats.best_nops;
    record.omega_calls = result.stats.omega_calls;
    record.schedules_examined = result.stats.schedules_examined;
    record.nodes_expanded = result.stats.nodes_expanded;
    record.cache_probes = result.stats.cache_probes;
    record.cache_hits = result.stats.cache_hits;
    record.cache_evictions = result.stats.cache_evictions;
    record.cache_superseded = result.stats.cache_superseded;
    record.completed = result.stats.completed;
    record.seconds = result.stats.seconds;
  });
  return records;
}

namespace {

void fill_column(CorpusSummary::Column& col, std::size_t total_runs,
                 const std::vector<const RunRecord*>& records) {
  col.runs = records.size();
  col.percent = total_runs
                    ? 100.0 * static_cast<double>(records.size()) /
                          static_cast<double>(total_runs)
                    : 0.0;
  if (records.empty()) return;
  double insns = 0;
  double initial = 0;
  double final_nops = 0;
  double omega = 0;
  double nodes = 0;
  double probes = 0;
  double hits = 0;
  double secs = 0;
  for (const RunRecord* r : records) {
    insns += r->block_size;
    initial += r->initial_nops;
    final_nops += r->final_nops;
    omega += static_cast<double>(r->omega_calls);
    nodes += static_cast<double>(r->nodes_expanded);
    probes += static_cast<double>(r->cache_probes);
    hits += static_cast<double>(r->cache_hits);
    secs += r->seconds;
  }
  const auto n = static_cast<double>(records.size());
  col.avg_instructions = insns / n;
  col.avg_initial_nops = initial / n;
  col.avg_final_nops = final_nops / n;
  col.avg_omega_calls = omega / n;
  col.avg_nodes_expanded = nodes / n;
  col.cache_hit_percent = probes > 0 ? 100.0 * hits / probes : 0.0;
  col.avg_seconds = secs / n;
}

}  // namespace

CorpusSummary summarize_corpus(const std::vector<RunRecord>& records) {
  std::vector<const RunRecord*> completed;
  std::vector<const RunRecord*> truncated;
  std::vector<const RunRecord*> all;
  for (const RunRecord& r : records) {
    all.push_back(&r);
    (r.completed ? completed : truncated).push_back(&r);
  }
  CorpusSummary summary;
  fill_column(summary.completed, records.size(), completed);
  fill_column(summary.truncated, records.size(), truncated);
  fill_column(summary.total, records.size(), all);
  return summary;
}

std::string render_corpus_summary(const CorpusSummary& summary) {
  std::ostringstream oss;
  auto row = [&](const std::string& label, auto get) {
    oss << pad_right(label, 30) << pad_left(get(summary.completed), 14)
        << pad_left(get(summary.truncated), 14)
        << pad_left(get(summary.total), 14) << "\n";
  };
  oss << pad_right("", 30) << pad_left("Completed", 14)
      << pad_left("Truncated", 14) << pad_left("Totals", 14) << "\n";
  oss << pad_right("", 30) << pad_left("(Optimal)", 14)
      << pad_left("(Suboptimal?)", 14) << pad_left("", 14) << "\n";
  row("Number of Runs", [](const CorpusSummary::Column& c) {
    return std::to_string(c.runs);
  });
  row("Percentage of Runs", [](const CorpusSummary::Column& c) {
    return compact_double(c.percent, 4) + "%";
  });
  row("Avg. Instructions/Block", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_instructions, 4);
  });
  row("Avg. Initial NOPs", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_initial_nops, 3);
  });
  row("Avg. Final NOPs", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_final_nops, 3);
  });
  row("Avg. Omega Calls", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_omega_calls, 4);
  });
  row("Avg. Nodes Expanded", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_nodes_expanded, 4);
  });
  row("Cache Hit Rate", [](const CorpusSummary::Column& c) {
    return compact_double(c.cache_hit_percent, 4) + "%";
  });
  row("Avg. Search Time", [](const CorpusSummary::Column& c) {
    return compact_double(c.avg_seconds * 1e6, 3) + "us";
  });
  return oss.str();
}

}  // namespace pipesched
