#include "core/superblock.hpp"

#include "util/check.hpp"

namespace pipesched {

BasicBlock concatenate_blocks(const BasicBlock& a, const BasicBlock& b) {
  BasicBlock out(a.label());
  for (std::size_t v = 0; v < a.var_count(); ++v) {
    out.var_id(a.var_name(static_cast<VarId>(v)));
  }
  for (const Tuple& t : a.tuples()) out.append(t);

  const auto offset = static_cast<TupleIndex>(a.size());
  std::vector<VarId> var_map(b.var_count());
  for (std::size_t v = 0; v < b.var_count(); ++v) {
    var_map[v] = out.var_id(b.var_name(static_cast<VarId>(v)));
  }
  for (const Tuple& t : b.tuples()) {
    Tuple moved = t;
    for (Operand* o : {&moved.a, &moved.b}) {
      if (o->is_ref()) {
        *o = Operand::of_ref(o->ref + offset);
      } else if (o->is_var()) {
        *o = Operand::of_var(var_map[static_cast<std::size_t>(o->var)]);
      }
    }
    out.append(moved);
  }
  out.validate();
  return out;
}

SuperblockResult merge_linear_chains(const Program& program) {
  program.validate();
  SuperblockResult result;
  const std::vector<int> preds = program.predecessor_counts();
  const auto n = static_cast<BlockId>(program.size());

  // An edge from block i to i+1 collapses when it is unconditional
  // (fall-through, or a jump straight to the next block) and i+1 has no
  // other predecessor.
  auto collapses_into_next = [&](BlockId i) {
    if (i + 1 >= n) return false;
    const Terminator& term = program.block(i).term;
    const bool unconditional =
        term.kind == Terminator::Kind::FallThrough ||
        (term.kind == Terminator::Kind::Jump && term.target == i + 1);
    return unconditional && preds[static_cast<std::size_t>(i) + 1] == 1;
  };

  // Chain heads and the id mapping old -> new.
  std::vector<BlockId> new_id(program.size(), -1);
  for (BlockId i = 0; i < n;) {
    BasicBlock merged = program.block(i).block;
    new_id[static_cast<std::size_t>(i)] =
        static_cast<BlockId>(result.program.size());
    BlockId j = i;
    while (collapses_into_next(j)) {
      merged = concatenate_blocks(merged, program.block(j + 1).block);
      ++j;
      ++result.merges;
      new_id[static_cast<std::size_t>(j)] =
          static_cast<BlockId>(result.program.size());
    }
    const BlockId id = result.program.add_block();
    result.program.block_mut(id).block = std::move(merged);
    result.program.block_mut(id).term = program.block(j).term;
    i = j + 1;
  }

  // Remap surviving terminator targets.
  for (std::size_t i = 0; i < result.program.size(); ++i) {
    Terminator& term = result.program.block_mut(static_cast<BlockId>(i)).term;
    if (term.kind == Terminator::Kind::Jump ||
        term.kind == Terminator::Kind::Branch) {
      term.target = new_id[static_cast<std::size_t>(term.target)];
      PS_ASSERT(term.target >= 0);
    }
  }
  result.program.validate();
  return result;
}

}  // namespace pipesched
