// Corpus experiment harness: run a scheduling policy over thousands of
// generated blocks (in parallel — blocks are independent) and aggregate
// the statistics the paper's Table 7 and Figures 1/4/5/6/7 report.
#pragma once

#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/corpus.hpp"

namespace pipesched {

/// Per-block outcome of one corpus run.
struct RunRecord {
  int block_size = 0;       ///< instructions after optimization
  int initial_nops = 0;     ///< NOPs of the list (seed) schedule
  int final_nops = 0;       ///< NOPs of the best schedule found
  std::uint64_t omega_calls = 0;
  std::uint64_t schedules_examined = 0;
  std::uint64_t nodes_expanded = 0;   ///< search-tree descents
  std::uint64_t cache_probes = 0;     ///< dominance-cache traffic
  std::uint64_t cache_hits = 0;       ///< subtrees pruned as dominated
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_superseded = 0;
  bool completed = true;    ///< condition [1] (provably optimal)
  double seconds = 0.0;
};

struct CorpusRunOptions {
  Machine machine = Machine::paper_simulation();
  SearchConfig search;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

/// Generate each parameter set's block and schedule it with the
/// branch-and-bound scheduler. Results are indexed like `params`
/// (deterministic regardless of thread interleaving).
std::vector<RunRecord> run_corpus(const std::vector<GeneratorParams>& params,
                                  const CorpusRunOptions& options);

/// Aggregate statistics in the shape of the paper's Table 7: one column
/// for completed (optimal) runs, one for truncated runs, one for totals.
struct CorpusSummary {
  struct Column {
    std::size_t runs = 0;
    double percent = 0;
    double avg_instructions = 0;
    double avg_initial_nops = 0;
    double avg_final_nops = 0;
    double avg_omega_calls = 0;
    double avg_nodes_expanded = 0;
    double cache_hit_percent = 0;  ///< hits / probes over the column
    double avg_seconds = 0;
  };
  Column completed;
  Column truncated;
  Column total;
};

CorpusSummary summarize_corpus(const std::vector<RunRecord>& records);

/// Render the Table 7 layout.
std::string render_corpus_summary(const CorpusSummary& summary);

}  // namespace pipesched
