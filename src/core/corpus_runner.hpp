// Corpus experiment harness: run a scheduling policy over thousands of
// generated blocks (in parallel — blocks are independent) and aggregate
// the statistics the paper's Table 7 and Figures 1/4/5/6/7 report.
//
// Corpus runs are crash-proof: a per-block failure (generator bug,
// scheduler invariant expressed as pipesched::Error, injected test fault)
// is captured into RunRecord::error instead of aborting the batch, and
// the offending block is dumped in `psc --tuples` replay form so the
// failure can be reproduced in isolation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "sched/optimal_scheduler.hpp"
#include "synth/corpus.hpp"
#include "util/progress.hpp"

namespace pipesched {

/// Per-block outcome of one corpus run.
struct RunRecord {
  int block_size = 0;       ///< instructions after optimization
  int initial_nops = 0;     ///< NOPs of the list (seed) schedule
  int final_nops = 0;       ///< NOPs of the best schedule (-1: infeasible)
  std::uint64_t omega_calls = 0;
  std::uint64_t schedules_examined = 0;
  std::uint64_t nodes_expanded = 0;   ///< search-tree descents
  std::uint64_t cache_probes = 0;     ///< dominance-cache traffic
  std::uint64_t cache_hits = 0;       ///< subtrees pruned as dominated
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_superseded = 0;
  /// Block served from the persistent result cache (no search ran).
  bool result_cache_hit = false;
  bool completed = true;    ///< condition [1] (provably optimal)
  CurtailReason curtail_reason = CurtailReason::None;
  bool feasible = true;     ///< pressure-constrained search found a schedule
  /// Which racer produced the block's schedule (None unless the portfolio
  /// backend ran the block).
  PortfolioWinner portfolio_winner = PortfolioWinner::None;

  /// Branches killed per pruning rule (see SearchStats).
  std::uint64_t pruned_window = 0;
  std::uint64_t pruned_readiness = 0;
  std::uint64_t pruned_equivalence = 0;
  std::uint64_t pruned_alpha_beta = 0;
  std::uint64_t pruned_lower_bound = 0;
  std::uint64_t pruned_dominance = 0;
  std::uint64_t pruned_pressure = 0;

  double seconds = 0.0;

  /// Non-empty when this block's run threw: the exception message. The
  /// counter fields above are whatever was recorded before the failure.
  std::string error;
  /// Path of the `--tuples` replay dump written for a failed block
  /// (empty when no reproducer was requested or the dump itself failed).
  std::string reproducer;
};

/// Copy one search's counters into a per-block record (shared by the
/// corpus runner and psc's per-block export).
void fill_run_record(RunRecord& record, const SearchStats& stats);

struct CorpusRunOptions {
  Machine machine = Machine::paper_simulation();
  SearchConfig search;
  std::size_t threads = 0;  ///< 0 = hardware concurrency

  /// When non-empty, each failed block is dumped to
  /// "<reproducer_prefix><index>.tuples" in BasicBlock::to_string() form,
  /// replayable with `psc --tuples <file>`.
  std::string reproducer_prefix;

  /// Test seam: invoked with (index, generated block) before scheduling.
  /// A throwing hook exercises the per-block failure path exactly like a
  /// real scheduler fault would.
  std::function<void(std::size_t, const BasicBlock&)> fault_hook;

  /// Optional live progress: one tick per finished block (errored blocks
  /// tick with errored=true). Not owned; may be null.
  ProgressReporter* progress = nullptr;
};

/// Generate each parameter set's block and schedule it with the optimal
/// backend selected by `options.search.backend` (branch-and-bound by
/// default). Results are indexed like `params`
/// (deterministic regardless of thread interleaving, except the
/// wall-clock `seconds` field). Per-block exceptions are captured into
/// RunRecord::error; the batch always returns params.size() records.
std::vector<RunRecord> run_corpus(const std::vector<GeneratorParams>& params,
                                  const CorpusRunOptions& options);

/// Aggregate statistics in the shape of the paper's Table 7: one column
/// for completed (optimal) runs, one for truncated runs, one for totals.
/// Errored blocks are counted (per column `errors`) but excluded from the
/// completed/truncated partition and from every average; infeasible
/// blocks are excluded from the final-NOPs average only.
struct CorpusSummary {
  struct Column {
    std::size_t runs = 0;
    double percent = 0;
    double avg_instructions = 0;
    double avg_initial_nops = 0;
    double avg_final_nops = 0;
    double avg_omega_calls = 0;
    double avg_nodes_expanded = 0;
    double cache_hit_percent = 0;  ///< hits / probes over the column
    /// Blocks served from the persistent result cache.
    std::size_t result_cache_hits = 0;
    /// result_cache_hits / non-error blocks (0 when the cache is off —
    /// the warm-run CI lane asserts >= 95 here on a second pass).
    double result_cache_hit_percent = 0;
    double avg_seconds = 0;
    /// Per-block wall-time distribution (seconds) over the non-error
    /// records — the tail is what deadline/λ tuning actually fights.
    double p50_seconds = 0;
    double p90_seconds = 0;
    double p99_seconds = 0;
    std::size_t errors = 0;             ///< blocks whose run threw
    std::size_t infeasible = 0;         ///< no schedule within the ceiling
    std::size_t curtailed_lambda = 0;   ///< stopped by the curtail point
    std::size_t curtailed_deadline = 0; ///< stopped by the wall-clock budget
    double avg_pruned_window = 0;
    double avg_pruned_readiness = 0;
    double avg_pruned_equivalence = 0;
    double avg_pruned_alpha_beta = 0;
    double avg_pruned_lower_bound = 0;
    double avg_pruned_dominance = 0;
    double avg_pruned_pressure = 0;
  };
  Column completed;
  Column truncated;
  Column total;
};

CorpusSummary summarize_corpus(const std::vector<RunRecord>& records);

/// Render the Table 7 layout (plus the error/curtail/prune-rule rows).
std::string render_corpus_summary(const CorpusSummary& summary);

/// Machine-readable per-block exports; column/field order is identical
/// between the two formats. Both fail loudly on write errors.
void write_corpus_csv(const std::vector<RunRecord>& records,
                      const std::string& path);
void write_corpus_jsonl(const std::vector<RunRecord>& records,
                        const std::string& path);

/// Run metadata for the BENCH_corpus.json roll-up.
struct CorpusBenchMeta {
  std::string machine;
  std::string backend = "bnb";  ///< optimal backend the corpus ran with
  std::uint64_t curtail_lambda = 0;
  double deadline_seconds = 0;
  double total_wall_seconds = 0;  ///< whole-corpus wall time
};

/// Single-JSON-object roll-up of a corpus run (summary columns + run
/// metadata + a "metrics" section of exact integer totals computed from
/// `records`) so successive PRs can track the perf trajectory. The exact
/// totals are what `bench_diff` compares bit-for-bit: unlike the summary
/// averages they carry no floating-point formatting noise.
void write_corpus_bench_json(const CorpusSummary& summary,
                             const std::vector<RunRecord>& records,
                             const CorpusBenchMeta& meta,
                             const std::string& path);

}  // namespace pipesched
