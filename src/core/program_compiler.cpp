#include "core/program_compiler.hpp"

#include <sstream>

#include "core/compiler.hpp"
#include "frontend/opt/passes.hpp"
#include "frontend/parser.hpp"
#include "frontend/program_codegen.hpp"
#include "ir/dag.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace pipesched {

Program optimize_program(const Program& program) {
  Program out;
  for (std::size_t i = 0; i < program.size(); ++i) {
    const ProgramBlock& pb = program.block(static_cast<BlockId>(i));
    const BlockId id = out.add_block();
    BasicBlock optimized = run_standard_pipeline(pb.block);
    optimized.set_label(pb.block.label());
    out.block_mut(id).block = std::move(optimized);
    out.block_mut(id).term = pb.term;
  }
  out.validate();
  return out;
}

namespace {

std::string terminator_assembly(const Program& program, BlockId id) {
  const Terminator& term = program.block(id).term;
  const auto label_of = [&](BlockId target) {
    const std::string& label = program.block(target).block.label();
    return label.empty() ? "b" + std::to_string(target) : label;
  };
  switch (term.kind) {
    case Terminator::Kind::FallThrough:
      return "";
    case Terminator::Kind::Jump:
      return "    j    " + label_of(term.target) + "\n";
    case Terminator::Kind::Branch:
      return std::string("    ") + (term.when_zero ? "beqz " : "bnez ") +
             term.cond_var + ", " + label_of(term.target) + "\n";
    case Terminator::Kind::Return:
      return "    ret\n";
  }
  return "";
}

}  // namespace

ProgramCompileResult compile_program(const Program& program,
                                     const ProgramCompileOptions& options) {
  program.validate();
  PS_TRACE_SPAN("compile_program");
  ProgramCompileResult result;
  std::ostringstream assembly;

  PipelineState previous_exit;  // exit state of the layout-preceding block
  for (std::size_t i = 0; i < program.size(); ++i) {
    PS_TRACE_SPAN("program_block");
    const auto id = static_cast<BlockId>(i);
    const ProgramBlock& pb = program.block(id);

    CompiledBlock compiled;
    {
      PS_TRACE_SPAN("optimize");
      static LogHistogram& h = compile_stage_histogram("optimize");
      MetricTimer timer(h);
      compiled.optimized = options.block.optimize
                               ? run_standard_pipeline(pb.block)
                               : pb.block;
      compiled.optimized.set_label(pb.block.label());
    }

    const DepGraph dag = [&] {
      PS_TRACE_SPAN("dag_build");
      static LogHistogram& h = compile_stage_histogram("dag_build");
      MetricTimer timer(h);
      return DepGraph(compiled.optimized);
    }();
    compiled.chained = options.boundary == BoundaryMode::Chain &&
                       program.only_fallthrough_predecessor(id) &&
                       !previous_exit.unit_last_issue.empty();
    const PipelineState entry =
        compiled.chained ? previous_exit
                         : PipelineState::drained(options.block.machine);

    {
      PS_TRACE_SPAN("schedule");
      static LogHistogram& h = compile_stage_histogram("schedule");
      MetricTimer timer(h);
      compiled.schedule =
          run_scheduler(options.block.scheduler, options.block.machine, dag,
                        options.block.search, &compiled.stats, entry);
    }
    {
      PS_TRACE_SPAN("regalloc");
      static LogHistogram& h = compile_stage_histogram("regalloc");
      MetricTimer timer(h);
      compiled.allocation = linear_scan(compiled.optimized,
                                        compiled.schedule.order,
                                        options.block.registers);
    }

    // Replay to obtain the exit occupancy for the next block.
    {
      PipelineTimer timer(options.block.machine, dag, entry);
      for (TupleIndex t : compiled.schedule.order) timer.push(t);
      previous_exit = timer.exit_state();
    }

    result.total_instructions += static_cast<int>(compiled.optimized.size());
    result.total_nops += compiled.schedule.total_nops();

    const std::string label = compiled.optimized.label().empty()
                                  ? "b" + std::to_string(i)
                                  : compiled.optimized.label();
    assembly << label << ":";
    if (compiled.chained) assembly << "                ; pipelines chained";
    assembly << "\n";
    // Body without the label line (emit_assembly prints it when set).
    BasicBlock body = compiled.optimized;
    body.set_label("");
    {
      PS_TRACE_SPAN("emit");
      static LogHistogram& h = compile_stage_histogram("emit");
      MetricTimer timer(h);
      assembly << emit_assembly(body, options.block.machine,
                                compiled.schedule, compiled.allocation,
                                options.block.emit);
    }
    assembly << terminator_assembly(program, id);

    result.blocks.push_back(std::move(compiled));
    if (options.progress) options.progress->add();
  }
  result.assembly = assembly.str();
  return result;
}

ProgramCompileResult compile_program_source(
    const std::string& source, const ProgramCompileOptions& options) {
  Program program = [&] {
    PS_TRACE_SPAN("parse");
    static LogHistogram& h = compile_stage_histogram("parse");
    MetricTimer timer(h);
    const SourceProgram parsed = parse_source(source);
    return generate_program(parsed);
  }();
  return compile_program(program, options);
}

}  // namespace pipesched
