// End-to-end compiler driver (paper Figure 2):
//
//   source --> optimized tuple generation --> list scheduler
//          --> pipeline scheduler --> register allocation
//          --> code generation
//
// compile_source()/compile_block() run the whole back end with one call;
// run_scheduler() exposes the scheduler stage alone for experiments that
// compare scheduling policies on the same block.
#pragma once

#include <string>

#include "asmout/emitter.hpp"
#include "frontend/ast.hpp"
#include "ir/block.hpp"
#include "machine/machine.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"

namespace pipesched {

// SchedulerKind and scheduler_kind_name live in sched/scheduler.hpp,
// next to the Scheduler interface and the make_scheduler factory.

class LogHistogram;

/// Shared `ps_compile_stage_seconds{stage=...}` family for the compile
/// pipeline's wall-time histograms (used by both the single-block and the
/// whole-program compilers; find-or-create, so call sites can cache the
/// reference in a static local).
LogHistogram& compile_stage_histogram(const char* stage);

struct CompileOptions {
  Machine machine = Machine::paper_simulation();
  SchedulerKind scheduler = SchedulerKind::Optimal;
  SearchConfig search;      ///< used by SchedulerKind::Optimal
  bool optimize = true;     ///< run the standard pass pipeline first
  bool reassociate = false; ///< + reassociation (balances Add/Mul trees to
                            ///< shorten the critical path; extension pass)
  int registers = 32;       ///< register file size for allocation
  EmitOptions emit;
};

struct CompileResult {
  BasicBlock block;       ///< tuple code the scheduler consumed
  Schedule schedule;
  SearchStats stats;      ///< search counters (Optimal); timing for others
  Allocation allocation;
  std::string assembly;
};

/// Parse, optimize, schedule, allocate and emit one source block.
CompileResult compile_source(const std::string& source,
                             const CompileOptions& options = {});

/// Same pipeline starting from already-generated tuple code.
CompileResult compile_block(const BasicBlock& block,
                            const CompileOptions& options = {});

/// Outcome of register-limited compilation (Section 3.1's discipline):
/// spill code is created BEFORE scheduling so that allocation afterwards
/// can never need new spills, and the scheduler itself is barred from
/// exceeding the register file.
struct RegisterLimitedResult {
  CompileResult compiled;
  int values_spilled = 0;       ///< spill temporaries introduced
  bool scheduler_feasible = true;  ///< constrained search found a schedule
                                   ///< (else the safe original order is used)
};

/// Compile `block` so the final code provably fits in
/// `options.registers` registers:
///   1. optimize;
///   2. insert spill code until original-order pressure fits;
///   3. run the pressure-constrained optimal scheduler;
///   4. allocate (guaranteed spill-free) and emit.
/// Requires options.registers >= 3.
RegisterLimitedResult compile_with_register_limit(const BasicBlock& block,
                                                  CompileOptions options);

/// Run one scheduling policy on a prepared DAG. `stats` (optional)
/// receives search counters; heuristic schedulers fill timing fields only.
/// `initial` carries residual pipeline occupancy at block entry (ignored
/// by the exhaustive scheduler, which is defined on drained pipelines).
Schedule run_scheduler(SchedulerKind kind, const Machine& machine,
                       const DepGraph& dag, const SearchConfig& search,
                       SearchStats* stats = nullptr,
                       const PipelineState& initial = {});

}  // namespace pipesched
