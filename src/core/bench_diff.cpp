#include "core/bench_diff.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace pipesched {

namespace {

using Status = BenchDiffLine::Status;

std::string render_number(double v) {
  std::ostringstream oss;
  // Exact fields are integers; render them without a trailing ".0" so
  // the table reads like the JSON does.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    oss << static_cast<long long>(v);
  } else {
    oss << v;
  }
  return oss.str();
}

class Differ {
 public:
  Differ(const JsonValue& baseline, const JsonValue& candidate,
         const BenchDiffOptions& options)
      : baseline_(baseline), candidate_(candidate), options_(options) {}

  BenchDiffResult run() {
    // Config identity: a diff across different machines or budgets is
    // apples to oranges, so these fail like correctness fields.
    exact_string({"machine"});
    exact_string({"backend"});
    exact({"curtail_lambda"});
    exact({"deadline_seconds"});

    // Correctness-critical exact totals.
    for (const char* field :
         {"blocks", "errors", "optimal_blocks", "infeasible_blocks",
          "total_initial_nops", "total_final_nops"}) {
      exact({"metrics", field});
    }

    // Search-shape totals: report, never fail. The curtail counts and the
    // portfolio win split live here too — which racer finishes first (and
    // hence which budget counter trips) depends on scheduling noise and on
    // the backend's internal search shape, not on answer correctness.
    // Result-cache hit counts are informational too: a warm run hits
    // where a cold run misses, while the optima above must stay exact.
    for (const char* field :
         {"curtailed_lambda_blocks", "curtailed_deadline_blocks",
          "portfolio_wins_bnb", "portfolio_wins_cp", "total_omega_calls",
          "total_nodes_expanded", "total_schedules_examined",
          "total_cache_probes", "total_cache_hits",
          "total_result_cache_hits"}) {
      info({"metrics", field});
    }

    // Timing: noise-aware.
    timing({"total_wall_seconds"});
    for (const char* column : {"completed", "truncated", "total"}) {
      for (const char* field :
           {"avg_seconds", "p50_seconds", "p90_seconds", "p99_seconds"}) {
        timing({column, field});
      }
    }
    return std::move(result_);
  }

 private:
  static std::string joined(const std::vector<std::string>& path) {
    std::string out;
    for (const std::string& p : path) {
      if (!out.empty()) out += '.';
      out += p;
    }
    return out;
  }

  void push(Status status, const std::vector<std::string>& path,
            std::string base, std::string cand, std::string delta) {
    if (status == Status::Regressed || status == Status::Mismatch ||
        status == Status::Missing) {
      ++result_.regressions;
    }
    result_.lines.push_back({status, joined(path), std::move(base),
                             std::move(cand), std::move(delta)});
  }

  /// Both values as numbers, or report Missing (exact/timing) and return
  /// false. `missing_fails` is false for info fields. A field absent from
  /// BOTH sides is skipped entirely: the two artifacts agree on their
  /// schema (e.g. jsonl aggregations carry no machine config), so only
  /// one-sided absence is drift worth failing on.
  bool numbers(const std::vector<std::string>& path, bool missing_fails,
               double& base, double& cand) {
    const JsonValue* b = baseline_.find_path(path);
    const JsonValue* c = candidate_.find_path(path);
    if (b == nullptr && c == nullptr) return false;
    if (b == nullptr || c == nullptr || !b->is_number() || !c->is_number()) {
      const auto render = [](const JsonValue* v) {
        return v != nullptr && v->is_number() ? render_number(v->as_number())
                                              : std::string("-");
      };
      push(missing_fails ? Status::Missing : Status::Info, path, render(b),
           render(c), "");
      return false;
    }
    base = b->as_number();
    cand = c->as_number();
    return true;
  }

  void exact(const std::vector<std::string>& path) {
    // Integer-syntax values compare as exact int64: counters above 2^53
    // (omega totals on long uptimes) would otherwise alias under double
    // rounding and pass — or fail — on the wrong number.
    const JsonValue* b = baseline_.find_path(path);
    const JsonValue* c = candidate_.find_path(path);
    if (b != nullptr && c != nullptr && b->is_integer() && c->is_integer()) {
      const std::int64_t bi = b->as_int64();
      const std::int64_t ci = c->as_int64();
      push(bi == ci ? Status::Ok : Status::Mismatch, path,
           std::to_string(bi), std::to_string(ci),
           bi == ci ? "" : std::to_string(ci - bi));
      return;
    }
    double base = 0, cand = 0;
    if (!numbers(path, /*missing_fails=*/true, base, cand)) return;
    push(base == cand ? Status::Ok : Status::Mismatch, path,
         render_number(base), render_number(cand),
         base == cand ? "" : render_number(cand - base));
  }

  void exact_string(const std::vector<std::string>& path) {
    const JsonValue* b = baseline_.find_path(path);
    const JsonValue* c = candidate_.find_path(path);
    const auto render = [](const JsonValue* v) {
      return v != nullptr && v->is_string() ? v->as_string()
                                            : std::string("-");
    };
    if (b == nullptr && c == nullptr) return;
    if (b == nullptr || c == nullptr || !b->is_string() || !c->is_string()) {
      push(Status::Missing, path, render(b), render(c), "");
      return;
    }
    push(b->as_string() == c->as_string() ? Status::Ok : Status::Mismatch,
         path, b->as_string(), c->as_string(), "");
  }

  void info(const std::vector<std::string>& path) {
    double base = 0, cand = 0;
    if (!numbers(path, /*missing_fails=*/false, base, cand)) return;
    std::string delta;
    if (base != cand) {
      std::ostringstream oss;
      oss << (cand > base ? "+" : "") << render_number(cand - base);
      if (base != 0) {
        oss << " (" << (cand > base ? "+" : "")
            << compact_double(100.0 * (cand - base) / base, 3) << "%)";
      }
      delta = oss.str();
    }
    push(Status::Info, path, render_number(base), render_number(cand),
         std::move(delta));
  }

  void timing(const std::vector<std::string>& path) {
    double base = 0, cand = 0;
    if (!numbers(path, /*missing_fails=*/true, base, cand)) return;
    const double diff = cand - base;
    const bool beyond_rel = cand > base * (1.0 + options_.rel_tol);
    const bool beyond_abs = diff > options_.abs_floor_seconds;
    const Status status =
        beyond_rel && beyond_abs ? Status::Regressed : Status::Ok;
    std::ostringstream delta;
    delta << (diff >= 0 ? "+" : "") << compact_double(diff * 1e6, 4) << "us";
    if (base > 0) {
      delta << " (" << (diff >= 0 ? "+" : "")
            << compact_double(100.0 * diff / base, 3) << "%)";
    }
    push(status, path, compact_double(base * 1e6, 4) + "us",
         compact_double(cand * 1e6, 4) + "us", delta.str());
  }

  const JsonValue& baseline_;
  const JsonValue& candidate_;
  const BenchDiffOptions options_;
  BenchDiffResult result_;
};

double number_or(const JsonValue& record, const char* key, double fallback) {
  const JsonValue* v = record.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

bool bool_field(const JsonValue& record, const char* key, bool fallback) {
  const JsonValue* v = record.find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

}  // namespace

BenchDiffResult diff_bench_rollups(const JsonValue& baseline,
                                   const JsonValue& candidate,
                                   const BenchDiffOptions& options) {
  return Differ(baseline, candidate, options).run();
}

JsonValue rollup_from_records(const std::vector<JsonValue>& records) {
  std::uint64_t initial_nops = 0, final_nops = 0, omega = 0, nodes = 0,
                examined = 0, probes = 0, hits = 0;
  std::size_t errors = 0, infeasible = 0, optimal = 0, curtailed_lambda = 0,
              curtailed_deadline = 0, wins_bnb = 0, wins_cp = 0,
              result_cache_hits = 0;
  double total_seconds = 0;
  std::vector<double> seconds;
  seconds.reserve(records.size());
  for (const JsonValue& r : records) {
    const JsonValue* error = r.find("error");
    if (error != nullptr && error->is_string() &&
        !error->as_string().empty()) {
      ++errors;
      continue;
    }
    const bool feasible = bool_field(r, "feasible", true);
    if (feasible) {
      initial_nops +=
          static_cast<std::uint64_t>(number_or(r, "initial_nops", 0));
      final_nops += static_cast<std::uint64_t>(number_or(r, "final_nops", 0));
    } else {
      ++infeasible;
    }
    if (bool_field(r, "completed", false)) ++optimal;
    if (bool_field(r, "result_cache_hit", false)) ++result_cache_hits;
    const JsonValue* reason = r.find("curtail_reason");
    if (reason != nullptr && reason->is_string()) {
      if (reason->as_string() == "lambda") ++curtailed_lambda;
      if (reason->as_string() == "deadline") ++curtailed_deadline;
    }
    const JsonValue* winner = r.find("portfolio_winner");
    if (winner != nullptr && winner->is_string()) {
      if (winner->as_string() == "bnb") ++wins_bnb;
      if (winner->as_string() == "cp") ++wins_cp;
    }
    omega += static_cast<std::uint64_t>(number_or(r, "omega_calls", 0));
    nodes += static_cast<std::uint64_t>(number_or(r, "nodes_expanded", 0));
    examined +=
        static_cast<std::uint64_t>(number_or(r, "schedules_examined", 0));
    probes += static_cast<std::uint64_t>(number_or(r, "cache_probes", 0));
    hits += static_cast<std::uint64_t>(number_or(r, "cache_hits", 0));
    const double s = number_or(r, "seconds", 0);
    total_seconds += s;
    seconds.push_back(s);
  }

  std::vector<std::pair<std::string, JsonValue>> metrics;
  // Counters aggregate as exact integers (make_integer) so the diff's
  // exact-compare path never sees a rounded value.
  auto metric = [&](const char* key, std::uint64_t v) {
    metrics.emplace_back(key,
                         JsonValue::make_integer(static_cast<std::int64_t>(v)));
  };
  metric("blocks", records.size());
  metric("errors", errors);
  metric("optimal_blocks", optimal);
  metric("infeasible_blocks", infeasible);
  metric("curtailed_lambda_blocks", curtailed_lambda);
  metric("curtailed_deadline_blocks", curtailed_deadline);
  metric("portfolio_wins_bnb", wins_bnb);
  metric("portfolio_wins_cp", wins_cp);
  metric("total_initial_nops", initial_nops);
  metric("total_final_nops", final_nops);
  metric("total_omega_calls", omega);
  metric("total_nodes_expanded", nodes);
  metric("total_schedules_examined", examined);
  metric("total_cache_probes", probes);
  metric("total_cache_hits", hits);
  metric("total_result_cache_hits", result_cache_hits);

  std::vector<std::pair<std::string, JsonValue>> total_col;
  if (!seconds.empty()) {
    const auto n = static_cast<double>(seconds.size());
    total_col.emplace_back("avg_seconds",
                           JsonValue::make_number(total_seconds / n));
    const std::vector<double> qs =
        quantiles(std::move(seconds), {50.0, 90.0, 99.0});
    total_col.emplace_back("p50_seconds", JsonValue::make_number(qs[0]));
    total_col.emplace_back("p90_seconds", JsonValue::make_number(qs[1]));
    total_col.emplace_back("p99_seconds", JsonValue::make_number(qs[2]));
  } else {
    for (const char* key :
         {"avg_seconds", "p50_seconds", "p90_seconds", "p99_seconds"}) {
      total_col.emplace_back(key, JsonValue::make_number(0));
    }
  }

  std::vector<std::pair<std::string, JsonValue>> root;
  root.emplace_back("total_wall_seconds",
                    JsonValue::make_number(total_seconds));
  root.emplace_back("metrics", JsonValue::make_object(std::move(metrics)));
  root.emplace_back("total", JsonValue::make_object(std::move(total_col)));
  return JsonValue::make_object(std::move(root));
}

BenchDiffResult diff_bench_files(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 const BenchDiffOptions& options) {
  auto load = [](const std::string& path) {
    if (path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0) {
      return rollup_from_records(parse_jsonl_file(path));
    }
    return parse_json_file(path);
  };
  const JsonValue baseline = load(baseline_path);
  const JsonValue candidate = load(candidate_path);
  return diff_bench_rollups(baseline, candidate, options);
}

std::string render_bench_diff(const BenchDiffResult& result) {
  auto status_name = [](Status s) -> const char* {
    switch (s) {
      case Status::Ok: return "ok";
      case Status::Info: return "info";
      case Status::Regressed: return "REGRESSED";
      case Status::Mismatch: return "MISMATCH";
      case Status::Missing: return "MISSING";
    }
    return "?";
  };
  std::ostringstream oss;
  oss << pad_right("status", 11) << pad_right("field", 34)
      << pad_left("baseline", 16) << "  " << pad_left("candidate", 16)
      << "  delta\n";
  for (const BenchDiffLine& line : result.lines) {
    oss << pad_right(status_name(line.status), 11)
        << pad_right(line.field, 34) << pad_left(line.baseline, 16) << "  "
        << pad_left(line.candidate, 16) << "  " << line.delta << "\n";
  }
  oss << (result.ok()
              ? "bench_diff: OK"
              : "bench_diff: FAIL (" + std::to_string(result.regressions) +
                    " failing field(s))")
      << "\n";
  return oss.str();
}

}  // namespace pipesched
