// Noise-aware comparison of two corpus bench artifacts — the regression
// gate behind the `bench_diff` tool and the ci.sh perf check.
//
// Two BENCH_corpus.json roll-ups (or two corpus_records.jsonl per-block
// exports, aggregated on the fly into the same shape) are compared field
// by field under a three-way policy:
//
//   * exact fields   — config identity (machine, lambda, deadline) and
//     correctness-critical totals (block counts, errors, optima,
//     curtailed counts, total NOPs). Any difference fails: these are
//     deterministic for a fixed corpus seed, so a delta means the
//     scheduler's RESULTS changed, not its speed. A missing field also
//     fails — a schema that silently dropped a correctness field must
//     not pass the gate.
//   * timing fields  — wall-clock aggregates (avg/p50/p90/p99 per
//     summary column, whole-corpus wall time). Machines are noisy, so a
//     candidate only regresses when it exceeds BOTH the relative
//     tolerance (default +25%) AND the absolute floor (default 100us)
//     over the baseline: the floor keeps microsecond jitter on tiny
//     corpora from tripping the relative check, the relative check keeps
//     slow corpora honest. Improvements never fail.
//   * info fields    — search-shape totals (omega calls, nodes expanded,
//     cache traffic). Reported in the delta table for diagnosis, never a
//     failure by themselves: they legitimately move when pruning
//     heuristics change.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pipesched {

class JsonValue;

struct BenchDiffOptions {
  /// A timing field regresses only when candidate > baseline * (1 +
  /// rel_tol) AND candidate - baseline > abs_floor_seconds.
  double rel_tol = 0.25;
  double abs_floor_seconds = 1e-4;
};

/// One row of the delta table.
struct BenchDiffLine {
  enum class Status {
    Ok,         ///< within policy
    Info,       ///< informational field; never a failure
    Regressed,  ///< timing field beyond both thresholds
    Mismatch,   ///< exact field differs
    Missing,    ///< exact/timing field absent from one side
  };
  Status status = Status::Ok;
  std::string field;      ///< dotted path, e.g. "metrics.total_final_nops"
  std::string baseline;   ///< rendered value ("-" when absent)
  std::string candidate;  ///< rendered value ("-" when absent)
  std::string delta;      ///< rendered delta ("" when not applicable)
};

struct BenchDiffResult {
  std::vector<BenchDiffLine> lines;
  std::size_t regressions = 0;  ///< Regressed + Mismatch + Missing rows

  bool ok() const { return regressions == 0; }
};

/// Compare two parsed BENCH_corpus.json roll-ups.
BenchDiffResult diff_bench_rollups(const JsonValue& baseline,
                                   const JsonValue& candidate,
                                   const BenchDiffOptions& options = {});

/// Aggregate one corpus_records.jsonl per-block export into the roll-up
/// shape diff_bench_rollups() consumes (exact totals + timing quantiles).
/// Exposed so tests can exercise the aggregation directly.
JsonValue rollup_from_records(const std::vector<JsonValue>& records);

/// Load both paths and compare. ".jsonl" inputs are treated as per-block
/// record exports and aggregated first; anything else is parsed as a
/// roll-up. Throws pipesched::Error on unreadable/malformed input.
BenchDiffResult diff_bench_files(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 const BenchDiffOptions& options = {});

/// Human-readable delta table (one line per compared field).
std::string render_bench_diff(const BenchDiffResult& result);

}  // namespace pipesched
