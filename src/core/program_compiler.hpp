// Whole-program compilation: every basic block of a CFG through the
// Figure 2 back end, with block-boundary pipeline handling per the paper's
// footnote 1 ("interactions between adjacent blocks can be managed ...
// essentially by modifying the initial conditions in the analysis for
// each block").
//
// Boundary modes:
//   Drain  every block is scheduled assuming empty pipelines at entry
//          (safe for any predecessor mix — the conservative default);
//   Chain  a block whose ONLY predecessor is the layout-preceding block's
//          fall-through edge inherits that block's residual pipeline
//          occupancy, letting the scheduler hide latency across the cut;
//          all other blocks drain.
#pragma once

#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "ir/program.hpp"
#include "util/progress.hpp"

namespace pipesched {

enum class BoundaryMode { Drain, Chain };

struct ProgramCompileOptions {
  CompileOptions block;  ///< per-block pipeline (machine, scheduler, ...)
  BoundaryMode boundary = BoundaryMode::Drain;

  /// Optional live progress (psc --progress): one tick per compiled
  /// block. Not owned; may be null.
  ProgressReporter* progress = nullptr;
};

/// Per-block compilation record.
struct CompiledBlock {
  BasicBlock optimized;   ///< tuple code the scheduler consumed
  Schedule schedule;
  SearchStats stats;
  Allocation allocation;
  bool chained = false;   ///< entry state inherited from the predecessor
};

struct ProgramCompileResult {
  std::vector<CompiledBlock> blocks;
  std::string assembly;      ///< full listing with labels and branches
  int total_instructions = 0;
  int total_nops = 0;
};

/// Compile a CFG program. Terminators are preserved; per-block schedules
/// honor the boundary mode.
ProgramCompileResult compile_program(const Program& program,
                                     const ProgramCompileOptions& options = {});

/// Parse + lower + compile source with arbitrary structured control flow.
ProgramCompileResult compile_program_source(
    const std::string& source, const ProgramCompileOptions& options = {});

/// The optimized program (same CFG, each block optimized) — used by tests
/// to check semantic preservation through the whole pipeline.
Program optimize_program(const Program& program);

}  // namespace pipesched
