// Cycle-stepped pipeline simulator (paper Section 2.2, architecture's view).
//
// Implements the three delay mechanisms the paper shows are orthogonal to
// the scheduling problem, as an *independent* code path from the
// scheduler's incremental timing engine — the property tests assert that
//
//   interlock stalls(order) == NOP count the scheduler padded into order
//
// for every scheduler's output, which is the strongest cross-check we have
// that the timing semantics are implemented correctly.
//
// Mechanisms:
//   NOP padding        validate_padded():   the compiler already inserted
//                      NOPs; the simulator re-executes the padded stream
//                      and reports the first hazard, if any.
//   Implicit interlock simulate_interlocked(): hardware scoreboard delays
//                      issue until operands are ready and a unit is free.
//   Explicit interlock explicit_wait_tags(): the compiler tags each
//                      instruction with the cycles it must wait (Tera-
//                      style count fields); honoring the tags must give a
//                      hazard-free execution with identical timing.
#pragma once

#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"

namespace pipesched {

/// One issue event in a simulation trace.
struct SimEvent {
  int cycle = 0;
  TupleIndex tuple = -1;  ///< -1 for a NOP / stall slot
  PipelineId unit = kNoPipeline;
};

struct SimResult {
  bool ok = true;
  std::string error;            ///< first hazard (validate_padded only)
  int total_delay = 0;          ///< stall cycles / NOP slots observed
  int completion_cycle = 0;     ///< cycle of the final instruction issue
  std::vector<int> issue_cycle; ///< per position of the input order
  std::vector<SimEvent> trace;  ///< cycle-by-cycle issue log
};

/// Re-execute a padded schedule and verify it is hazard-free.
SimResult validate_padded(const Machine& machine, const DepGraph& dag,
                          const Schedule& schedule);

/// Execute a bare order on interlocked hardware; stalls are counted.
/// `order` must be a legal topological order (checked). Unit selection:
/// first free unit (hardware dispatch); on machines with heterogeneous
/// alternatives this may differ from a scheduler's deliberate choice —
/// pass `unit_assignment` (per order position; kNoPipeline for
/// sigma-empty ops) to replay a specific assignment exactly.
SimResult simulate_interlocked(const Machine& machine, const DepGraph& dag,
                               const std::vector<TupleIndex>& order);
SimResult simulate_interlocked(const Machine& machine, const DepGraph& dag,
                               const std::vector<TupleIndex>& order,
                               const std::vector<PipelineId>& unit_assignment);

/// Per-instruction explicit-wait tags for `order` (cycles each instruction
/// must wait after the previous issue), with the same timing as the
/// interlocked execution.
std::vector<int> explicit_wait_tags(const Machine& machine,
                                    const DepGraph& dag,
                                    const std::vector<TupleIndex>& order);

/// ASCII occupancy chart: one row per pipeline unit, one column per cycle,
/// showing which tuple occupies each unit's enqueue window.
std::string render_pipeline_trace(const Machine& machine,
                                  const BasicBlock& block,
                                  const SimResult& result);

}  // namespace pipesched
