#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace pipesched {

namespace {

/// Hardware scoreboard state: when each tuple's result becomes usable and
/// when each unit can accept its next operation.
struct Scoreboard {
  explicit Scoreboard(const Machine& machine, std::size_t tuples)
      : result_ready(tuples, 0),
        unit_free(machine.pipeline_count(), 1) {}

  std::vector<int> result_ready;  ///< first cycle the value may be consumed
  std::vector<int> unit_free;     ///< first cycle the unit accepts an op
};

/// True when `t` may issue at `cycle`; on success selects a unit.
bool can_issue(const Machine& machine, const DepGraph& dag,
               const Scoreboard& board, TupleIndex t, int cycle,
               PipelineId* unit_out, std::string* reason) {
  for (TupleIndex p : dag.preds(t)) {
    if (board.result_ready[static_cast<std::size_t>(p)] > cycle) {
      if (reason) {
        *reason = "operand of tuple " + std::to_string(t + 1) +
                  " (produced by tuple " + std::to_string(p + 1) +
                  ") not ready until cycle " +
                  std::to_string(
                      board.result_ready[static_cast<std::size_t>(p)]);
      }
      return false;
    }
  }
  const Opcode op = dag.block().tuple(t).op;
  const auto& units = machine.pipelines_for(op);
  if (units.empty()) {
    *unit_out = kNoPipeline;
    return true;
  }
  for (PipelineId u : units) {
    if (board.unit_free[static_cast<std::size_t>(u)] <= cycle) {
      *unit_out = u;
      return true;
    }
  }
  if (reason) {
    *reason = "no " + machine.pipeline(units.front()).function +
              " unit free for tuple " + std::to_string(t + 1) + " at cycle " +
              std::to_string(cycle);
  }
  return false;
}

void commit_issue(const Machine& machine, Scoreboard& board, TupleIndex t,
                  int cycle, PipelineId unit) {
  if (unit == kNoPipeline) {
    // Timing-transparent op: result usable from the next cycle.
    board.result_ready[static_cast<std::size_t>(t)] = cycle;
    return;
  }
  const PipelineDesc& desc = machine.pipeline(unit);
  board.result_ready[static_cast<std::size_t>(t)] = cycle + desc.latency;
  board.unit_free[static_cast<std::size_t>(unit)] = cycle + desc.enqueue;
}

}  // namespace

SimResult validate_padded(const Machine& machine, const DepGraph& dag,
                          const Schedule& schedule) {
  SimResult result;
  PS_CHECK(dag.is_legal_order(schedule.order),
           "padded schedule is not a legal order");
  Scoreboard board(machine, dag.size());
  int cycle = 0;
  for (std::size_t i = 0; i < schedule.order.size(); ++i) {
    for (int k = 0; k < schedule.nops[i]; ++k) {
      ++cycle;
      ++result.total_delay;
      result.trace.push_back({cycle, -1, kNoPipeline});
    }
    ++cycle;
    const TupleIndex t = schedule.order[i];
    PipelineId unit = kNoPipeline;
    std::string reason;
    if (!can_issue(machine, dag, board, t, cycle, &unit, &reason)) {
      result.ok = false;
      result.error = "hazard at cycle " + std::to_string(cycle) + ": " + reason;
      return result;
    }
    // Honour the unit the scheduler recorded when it is explicit; fall back
    // to the simulator's free unit otherwise.
    if (schedule.unit[i] != kNoPipeline) {
      const PipelineId claimed = schedule.unit[i];
      if (board.unit_free[static_cast<std::size_t>(claimed)] > cycle) {
        result.ok = false;
        result.error = "hazard at cycle " + std::to_string(cycle) +
                       ": claimed unit " + std::to_string(claimed + 1) +
                       " still busy";
        return result;
      }
      unit = claimed;
    }
    commit_issue(machine, board, t, cycle, unit);
    result.issue_cycle.push_back(cycle);
    result.trace.push_back({cycle, t, unit});
  }
  result.completion_cycle = cycle;
  return result;
}

namespace {

SimResult interlocked_impl(const Machine& machine, const DepGraph& dag,
                           const std::vector<TupleIndex>& order,
                           const std::vector<PipelineId>* assignment) {
  PS_CHECK(dag.is_legal_order(order),
           "interlocked execution requires a legal order");
  PS_CHECK(!assignment || assignment->size() == order.size(),
           "unit assignment must cover the order");
  SimResult result;
  Scoreboard board(machine, dag.size());
  int cycle = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TupleIndex t = order[i];
    ++cycle;
    PipelineId unit = kNoPipeline;
    auto ready = [&]() {
      if (!assignment) {
        return can_issue(machine, dag, board, t, cycle, &unit, nullptr);
      }
      // Replay a specific assignment: operands ready AND that unit free.
      unit = (*assignment)[i];
      if (!can_issue(machine, dag, board, t, cycle, &unit, nullptr)) {
        return false;
      }
      unit = (*assignment)[i];
      return unit == kNoPipeline ||
             board.unit_free[static_cast<std::size_t>(unit)] <= cycle;
    };
    while (!ready()) {
      result.trace.push_back({cycle, -1, kNoPipeline});
      ++result.total_delay;
      ++cycle;
    }
    commit_issue(machine, board, t, cycle, unit);
    result.issue_cycle.push_back(cycle);
    result.trace.push_back({cycle, t, unit});
  }
  result.completion_cycle = cycle;
  return result;
}

}  // namespace

SimResult simulate_interlocked(const Machine& machine, const DepGraph& dag,
                               const std::vector<TupleIndex>& order) {
  return interlocked_impl(machine, dag, order, nullptr);
}

SimResult simulate_interlocked(
    const Machine& machine, const DepGraph& dag,
    const std::vector<TupleIndex>& order,
    const std::vector<PipelineId>& unit_assignment) {
  return interlocked_impl(machine, dag, order, &unit_assignment);
}

std::vector<int> explicit_wait_tags(const Machine& machine,
                                    const DepGraph& dag,
                                    const std::vector<TupleIndex>& order) {
  const SimResult interlocked = simulate_interlocked(machine, dag, order);
  std::vector<int> tags(order.size(), 0);
  int prev_cycle = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    tags[i] = interlocked.issue_cycle[i] - prev_cycle - 1;
    PS_ASSERT(tags[i] >= 0);
    prev_cycle = interlocked.issue_cycle[i];
  }
  return tags;
}

std::string render_pipeline_trace(const Machine& machine,
                                  const BasicBlock& block,
                                  const SimResult& result) {
  std::ostringstream oss;
  const int last = result.completion_cycle;
  // Issue row: which instruction enters the machine each cycle.
  std::vector<std::string> issue_row(static_cast<std::size_t>(last) + 1, ".");
  // Per-unit occupancy (enqueue window) rows.
  std::vector<std::vector<std::string>> unit_rows(
      machine.pipeline_count(),
      std::vector<std::string>(static_cast<std::size_t>(last) + 1, "."));

  for (const SimEvent& e : result.trace) {
    if (e.cycle < 1 || e.cycle > last) continue;
    if (e.tuple < 0) {
      issue_row[static_cast<std::size_t>(e.cycle)] = "-";
      continue;
    }
    const std::string label = std::to_string(e.tuple + 1);
    issue_row[static_cast<std::size_t>(e.cycle)] = label;
    if (e.unit != kNoPipeline) {
      const int busy = machine.pipeline(e.unit).enqueue;
      for (int c = e.cycle; c < e.cycle + busy && c <= last; ++c) {
        unit_rows[static_cast<std::size_t>(e.unit)]
                 [static_cast<std::size_t>(c)] = label;
      }
    }
  }

  auto emit_row = [&](const std::string& name,
                      const std::vector<std::string>& cells) {
    oss << pad_right(name, 14) << "|";
    for (int c = 1; c <= last; ++c) {
      oss << pad_left(cells[static_cast<std::size_t>(c)], 3);
    }
    oss << "\n";
  };

  oss << pad_right("cycle", 14) << "|";
  for (int c = 1; c <= last; ++c) oss << pad_left(std::to_string(c), 3);
  oss << "\n";
  emit_row("issue", issue_row);
  for (std::size_t u = 0; u < machine.pipeline_count(); ++u) {
    emit_row(machine.pipeline(static_cast<PipelineId>(u)).function + " #" +
                 std::to_string(u + 1),
             unit_rows[u]);
  }
  (void)block;
  return oss.str();
}

}  // namespace pipesched
