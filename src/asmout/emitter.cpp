#include "asmout/emitter.hpp"

#include "ir/dag.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace pipesched {

namespace {

std::string reg_name(const Allocation& allocation, TupleIndex t) {
  const int reg = allocation.reg_of[static_cast<std::size_t>(t)];
  PS_CHECK(reg >= 0, "tuple " << t + 1 << " has no register assigned");
  return "r" + std::to_string(reg);
}

std::string operand_text(const BasicBlock& block,
                         const Allocation& allocation, const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::Var:
      return block.var_name(o.var);
    case Operand::Kind::Ref:
      return reg_name(allocation, o.ref);
    case Operand::Kind::Imm:
      return "#" + std::to_string(o.imm);
    case Operand::Kind::None:
      return "";
  }
  return "";
}

std::string mnemonic(Opcode op) {
  switch (op) {
    case Opcode::Const:
      return "li";
    case Opcode::Load:
      return "ld";
    case Opcode::Store:
      return "st";
    case Opcode::Mov:
      return "mov";
    case Opcode::Neg:
      return "neg";
    case Opcode::Add:
      return "add";
    case Opcode::Sub:
      return "sub";
    case Opcode::Mul:
      return "mul";
    case Opcode::Div:
      return "div";
  }
  return "?";
}

std::string instruction_text(const BasicBlock& block,
                             const Allocation& allocation, TupleIndex t) {
  const Tuple& tuple = block.tuple(t);
  std::ostringstream oss;
  oss << pad_right(mnemonic(tuple.op), 5);
  if (tuple.op == Opcode::Store) {
    // st value -> variable
    oss << operand_text(block, allocation, tuple.b) << ", "
        << operand_text(block, allocation, tuple.a);
    return oss.str();
  }
  oss << reg_name(allocation, t);
  if (opcode_arity(tuple.op) >= 1) {
    oss << ", " << operand_text(block, allocation, tuple.a);
  }
  if (opcode_arity(tuple.op) >= 2) {
    oss << ", " << operand_text(block, allocation, tuple.b);
  }
  return oss.str();
}

}  // namespace

std::vector<int> tera_sync_counts(const BasicBlock& block,
                                  const Machine& machine,
                                  const Schedule& schedule) {
  const DepGraph dag(block);
  std::vector<int> counts(schedule.order.size(), 0);
  for (std::size_t i = 0; i < schedule.order.size(); ++i) {
    const TupleIndex t = schedule.order[i];
    int latest = -1;  // position of the latest constraining instruction
    for (TupleIndex p : dag.preds(t)) {
      latest = std::max(latest, schedule.position_of(p) - 1);
    }
    const auto& units = machine.pipelines_for(block.tuple(t).op);
    if (!units.empty()) {
      for (std::size_t j = i; j-- > 0;) {
        const Opcode other = block.tuple(schedule.order[j]).op;
        if (machine.pipelines_for(other) == units) {
          latest = std::max(latest, static_cast<int>(j));
          break;
        }
      }
    }
    counts[i] = latest < 0 ? 0 : static_cast<int>(i) - latest;
  }
  return counts;
}

std::vector<unsigned> carp_wait_masks(const BasicBlock& block,
                                      const Machine& machine,
                                      const Schedule& schedule) {
  PS_CHECK(machine.pipeline_count() <= 32,
           "CARP masks support at most 32 pipeline units");
  const DepGraph dag(block);
  std::vector<unsigned> masks(schedule.order.size(), 0);
  for (std::size_t i = 0; i < schedule.order.size(); ++i) {
    const TupleIndex t = schedule.order[i];
    const int issue = schedule.issue_cycle[i];
    unsigned mask = 0;
    // Dependences whose producer latency reaches this issue cycle.
    for (TupleIndex p : dag.preds(t)) {
      const int pos = schedule.position_of(p) - 1;
      PS_ASSERT(pos >= 0);
      const PipelineId unit = schedule.unit[static_cast<std::size_t>(pos)];
      if (unit == kNoPipeline) continue;
      if (schedule.issue_cycle[static_cast<std::size_t>(pos)] +
              machine.pipeline(unit).latency ==
          issue) {
        mask |= 1u << unit;
      }
    }
    // A binding enqueue conflict on the instruction's own unit.
    const PipelineId own = schedule.unit[i];
    if (own != kNoPipeline) {
      for (std::size_t j = i; j-- > 0;) {
        if (schedule.unit[j] != own) continue;
        if (schedule.issue_cycle[j] + machine.pipeline(own).enqueue ==
            issue) {
          mask |= 1u << own;
        }
        break;
      }
    }
    masks[i] = mask;
  }
  return masks;
}

std::string emit_assembly(const BasicBlock& block, const Machine& machine,
                          const Schedule& schedule,
                          const Allocation& allocation,
                          const EmitOptions& options) {
  PS_CHECK(allocation.reg_of.size() == block.size(),
           "allocation does not cover the block");
  std::vector<int> sync_counts;
  std::vector<unsigned> wait_masks;
  if (options.mechanism == DelayMechanism::TeraCount) {
    sync_counts = tera_sync_counts(block, machine, schedule);
  } else if (options.mechanism == DelayMechanism::CarpMask) {
    wait_masks = carp_wait_masks(block, machine, schedule);
  }

  std::ostringstream oss;
  if (!block.label().empty()) oss << block.label() << ":\n";
  for (std::size_t i = 0; i < schedule.order.size(); ++i) {
    if (options.mechanism == DelayMechanism::NopPadding) {
      for (int k = 0; k < schedule.nops[i]; ++k) oss << "    nop\n";
    }
    std::string text = "    " + instruction_text(block, allocation,
                                                 schedule.order[i]);
    if (options.mechanism == DelayMechanism::ExplicitInterlock) {
      text += "  wait=" + std::to_string(schedule.nops[i]);
    } else if (options.mechanism == DelayMechanism::TeraCount) {
      text += "  sync=" + std::to_string(sync_counts[i]);
    } else if (options.mechanism == DelayMechanism::CarpMask) {
      text += "  mask=" + std::to_string(wait_masks[i]);
    }
    if (options.comments) {
      text = pad_right(text, 36) + "; cycle " +
             std::to_string(schedule.issue_cycle[i]);
      if (schedule.unit[i] != kNoPipeline) {
        text += ", " + machine.pipeline(schedule.unit[i]).function + " #" +
                std::to_string(schedule.unit[i] + 1);
      }
    }
    oss << text << "\n";
  }
  return oss.str();
}

}  // namespace pipesched
