// Final code generation (paper Sections 3.4 and 2.2).
//
// Converts a scheduled, register-allocated block into textual target
// assembly. Each tuple maps to exactly one instruction; delays are
// rendered per the selected architectural mechanism:
//
//   NopPadding        explicit NOP instructions fill every delay slot
//                     (MIPS-style; the default throughout the paper);
//   ImplicitInterlock no delay encoding at all — hardware interlocks
//                     (IBM 801 / SPARC style);
//   ExplicitInterlock each instruction carries the stall cycles it must
//                     wait after the previous issue, "wait=<n>";
//   TeraCount         each instruction carries the number of instructions
//                     back to the latest one it depends on or conflicts
//                     with ("sync=<d>"), the Tera encoding [Smi88];
//   CarpMask          each instruction carries a bit mask of the pipeline
//                     resources whose in-flight operation it must wait
//                     for ("mask=<bits>"), the CARP encoding [DiS89].
#pragma once

#include <string>

#include "ir/dag.hpp"
#include "machine/machine.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/schedule.hpp"

namespace pipesched {

enum class DelayMechanism {
  NopPadding,
  ImplicitInterlock,
  ExplicitInterlock,
  TeraCount,
  CarpMask,
};

/// Per-instruction Tera-style counts for a schedule: distance, in
/// instructions, back to the latest earlier instruction this one depends
/// on or conflicts with (0 = unconstrained).
std::vector<int> tera_sync_counts(const BasicBlock& block,
                                  const Machine& machine,
                                  const Schedule& schedule);

/// Per-instruction CARP-style wait masks: bit u set when pipeline unit
/// u's in-flight operation is a binding constraint on this instruction's
/// issue cycle (a dependence whose latency, or a conflict whose enqueue
/// window, reaches the instruction's issue).
std::vector<unsigned> carp_wait_masks(const BasicBlock& block,
                                      const Machine& machine,
                                      const Schedule& schedule);

struct EmitOptions {
  DelayMechanism mechanism = DelayMechanism::NopPadding;
  bool comments = true;  ///< append issue cycles / pipeline units
};

/// Render the scheduled block as assembly text. The allocation must cover
/// the block (as produced by linear_scan on schedule.order).
std::string emit_assembly(const BasicBlock& block, const Machine& machine,
                          const Schedule& schedule,
                          const Allocation& allocation,
                          const EmitOptions& options = {});

}  // namespace pipesched
