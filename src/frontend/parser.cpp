#include "frontend/parser.hpp"

#include <cctype>

#include "util/check.hpp"

namespace pipesched {

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool accept(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    PS_CHECK(accept(c), "line " << line_ << ": expected '" << c << "', found '"
                                << peek() << "'");
  }

  bool peek_ident() {
    const char c = peek();
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }

  bool peek_number() {
    return std::isdigit(static_cast<unsigned char>(peek()));
  }

  std::string ident() {
    PS_CHECK(peek_ident(), "line " << line_ << ": expected identifier");
    std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(begin, pos_ - begin);
  }

  /// Consume `word` if the next token is exactly that identifier.
  bool accept_word(const std::string& word) {
    skip_ws();
    const std::size_t saved = pos_;
    if (!peek_ident()) return false;
    if (ident() == word) return true;
    pos_ = saved;
    return false;
  }

  std::int64_t number() {
    PS_CHECK(peek_number(), "line " << line_ << ": expected number");
    std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return std::stoll(text_.substr(begin, pos_ - begin));
  }

  int line() const { return line_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  SourceProgram program() {
    SourceProgram prog;
    const bool braced = lex_.accept('{');
    prog.statements = statement_list();
    if (braced) lex_.expect('}');
    PS_CHECK(lex_.at_end(),
             "line " << lex_.line() << ": trailing input after program");
    return prog;
  }

 private:
  /// Statements until end of input or a '}' (left for the caller).
  std::vector<Stmt> statement_list() {
    std::vector<Stmt> out;
    while (!lex_.at_end() && lex_.peek() != '}') {
      out.push_back(statement());
    }
    return out;
  }

  std::vector<Stmt> braced_body() {
    lex_.expect('{');
    std::vector<Stmt> body = statement_list();
    lex_.expect('}');
    return body;
  }

  Stmt statement() {
    if (lex_.accept_word("if")) {
      lex_.expect('(');
      ExprPtr cond = expr();
      lex_.expect(')');
      std::vector<Stmt> then_body = braced_body();
      std::vector<Stmt> else_body;
      if (lex_.accept_word("else")) else_body = braced_body();
      return Stmt::if_else(std::move(cond), std::move(then_body),
                           std::move(else_body));
    }
    if (lex_.accept_word("while")) {
      lex_.expect('(');
      ExprPtr cond = expr();
      lex_.expect(')');
      return Stmt::while_loop(std::move(cond), braced_body());
    }
    std::string target = lex_.ident();
    lex_.expect('=');
    ExprPtr value = expr();
    lex_.expect(';');
    return Stmt::assign(std::move(target), std::move(value));
  }

  ExprPtr expr() {
    ExprPtr left = term();
    for (;;) {
      if (lex_.accept('+')) {
        left = Expr::make_binary(Expr::Kind::Add, std::move(left), term());
      } else if (lex_.accept('-')) {
        left = Expr::make_binary(Expr::Kind::Sub, std::move(left), term());
      } else {
        return left;
      }
    }
  }

  ExprPtr term() {
    ExprPtr left = factor();
    for (;;) {
      if (lex_.accept('*')) {
        left = Expr::make_binary(Expr::Kind::Mul, std::move(left), factor());
      } else if (lex_.accept('/')) {
        left = Expr::make_binary(Expr::Kind::Div, std::move(left), factor());
      } else {
        return left;
      }
    }
  }

  ExprPtr factor() {
    if (lex_.accept('-')) return Expr::make_negate(factor());
    if (lex_.accept('(')) {
      ExprPtr inner = expr();
      lex_.expect(')');
      return inner;
    }
    if (lex_.peek_number()) return Expr::make_number(lex_.number());
    PS_CHECK(lex_.peek_ident(),
             "line " << lex_.line() << ": expected expression");
    return Expr::make_variable(lex_.ident());
  }

  Lexer lex_;
};

}  // namespace

SourceProgram parse_source(const std::string& text) {
  return Parser(text).program();
}

}  // namespace pipesched
