// Tuple code generation (paper Section 5.2's rules):
//
//   "The first reference to a variable causes a load for that variable to
//    be generated, and a store is generated when a variable is assigned a
//    value."
//
// Within a block the generator tracks each variable's current value tuple,
// so a variable read after an assignment reuses the stored value rather
// than reloading — loads appear only for upward-exposed reads, exactly as
// in the paper's prototype.
//
// BlockEmitter is the reusable per-block lowering engine; generate_tuples
// wraps it for straight-line programs and the CFG builder
// (program_codegen.hpp) drives one emitter per basic block.
#pragma once

#include <string>
#include <unordered_map>

#include "frontend/ast.hpp"
#include "ir/block.hpp"

namespace pipesched {

/// Lowers expressions/assignments into one basic block, maintaining the
/// per-variable current-value map.
class BlockEmitter {
 public:
  explicit BlockEmitter(std::string label = "");

  /// Lower an expression; returns the tuple holding its value.
  TupleIndex emit_expr(const Expr& e);

  /// Lower `target = value;`.
  void emit_assign(const std::string& target, const Expr& value);

  /// Store an already-computed value into a named variable (used for
  /// branch-condition temporaries).
  void emit_store(const std::string& target, TupleIndex value);

  bool empty() const { return block_.empty(); }

  /// Finish the block (validated). The emitter must not be reused.
  BasicBlock take();

 private:
  BasicBlock block_;
  std::unordered_map<VarId, TupleIndex> current_value_;
};

/// Lower a straight-line source program to one basic block (unoptimized).
/// Throws Error when the program contains control flow.
BasicBlock generate_tuples(const SourceProgram& program,
                           std::string label = "");

}  // namespace pipesched
