#include "frontend/program_codegen.hpp"

#include <memory>

#include "frontend/codegen.hpp"
#include "util/check.hpp"

namespace pipesched {

namespace {

class ProgramLowerer {
 public:
  Program run(const SourceProgram& source) {
    open();
    lower(source.statements);
    seal(Terminator::ret());
    program_.validate();
    return std::move(program_);
  }

 private:
  void open() {
    emitter_ = std::make_unique<BlockEmitter>(
        "b" + std::to_string(program_.size()));
  }

  /// Close the block under construction with `term`; returns its id and
  /// opens the next block. Forward targets may be patched afterwards via
  /// sequential-id arithmetic (layout order == creation order).
  BlockId seal(Terminator term) {
    const BlockId id = program_.add_block();
    program_.block_mut(id).block = emitter_->take();
    program_.block_mut(id).term = std::move(term);
    open();
    return id;
  }

  std::string fresh_temp() { return ".c" + std::to_string(temp_counter_++); }

  void lower(const std::vector<Stmt>& stmts) {
    for (const Stmt& s : stmts) {
      switch (s.kind) {
        case Stmt::Kind::Assign:
          emitter_->emit_assign(s.target, *s.value);
          break;
        case Stmt::Kind::If:
          lower_if(s);
          break;
        case Stmt::Kind::While:
          lower_while(s);
          break;
      }
    }
  }

  void lower_if(const Stmt& s) {
    const std::string temp = fresh_temp();
    emitter_->emit_store(temp, emitter_->emit_expr(*s.cond));
    // Branch target patched below: ELSE entry (or END without an else).
    const BlockId cond_block =
        seal(Terminator::branch(temp, 0, /*when_zero=*/true));

    lower(s.then_body);
    if (s.else_body.empty()) {
      const BlockId then_end = seal(Terminator::fall_through());
      program_.block_mut(cond_block).term.target = then_end + 1;  // END
    } else {
      // THEN skips over ELSE to the continuation.
      const BlockId then_end = seal(Terminator::jump(0));
      lower(s.else_body);
      const BlockId else_end = seal(Terminator::fall_through());
      program_.block_mut(cond_block).term.target = then_end + 1;  // ELSE
      program_.block_mut(then_end).term.target = else_end + 1;    // END
    }
  }

  void lower_while(const Stmt& s) {
    seal(Terminator::fall_through());  // preceding code falls into HEAD

    const std::string temp = fresh_temp();
    emitter_->emit_store(temp, emitter_->emit_expr(*s.cond));
    const BlockId head =
        seal(Terminator::branch(temp, 0, /*when_zero=*/true));

    lower(s.then_body);
    const BlockId body_end = seal(Terminator::jump(head));
    program_.block_mut(head).term.target = body_end + 1;  // EXIT
  }

  Program program_;
  std::unique_ptr<BlockEmitter> emitter_;
  int temp_counter_ = 0;
};

}  // namespace

Program generate_program(const SourceProgram& source) {
  return ProgramLowerer().run(source);
}

}  // namespace pipesched
