// Recursive-descent parser for the assignment-statement language.
//
// Grammar:
//   program := stmt*
//   stmt    := IDENT '=' expr ';'
//   expr    := term (('+' | '-') term)*
//   term    := factor (('*' | '/') factor)*
//   factor  := '-' factor | '(' expr ')' | IDENT | NUMBER
// Comments run from "//" to end of line. Braces around the program (as in
// the paper's Figure 3) are accepted and ignored.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace pipesched {

/// Parse source text. Throws Error with line/column on malformed input.
SourceProgram parse_source(const std::string& text);

}  // namespace pipesched
