// Structured control flow -> CFG lowering.
//
// if (c) {T} else {E}:
//   cur:  ... eval c; store .c<k>       Branch(.c<k>, ELSE, when_zero)
//   THEN blocks                         Jump(END)
//   ELSE blocks                         FallThrough
//   END (continuation)
// (without else, the branch targets END directly)
//
// while (c) {B}:
//   cur:  ...                           FallThrough
//   HEAD: eval c; store .c<k>           Branch(.c<k>, EXIT, when_zero)
//   BODY blocks                         Jump(HEAD)
//   EXIT (continuation)
//
// Branch conditions are stored to compiler temporaries (".c0", ".c1", ...)
// so terminators read memory and per-block optimization/scheduling stays
// oblivious to control flow; a block's last store to the temporary is
// always live, so DCE cannot remove it.
#pragma once

#include "frontend/ast.hpp"
#include "ir/program.hpp"

namespace pipesched {

/// Lower a source program (with arbitrary structured control flow) to a
/// validated CFG. The final block ends in Return.
Program generate_program(const SourceProgram& source);

}  // namespace pipesched
