#include "frontend/codegen.hpp"

#include "util/check.hpp"

namespace pipesched {

BlockEmitter::BlockEmitter(std::string label) : block_(std::move(label)) {}

TupleIndex BlockEmitter::emit_expr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Number:
      return block_.append(Opcode::Const, Operand::of_imm(e.number));
    case Expr::Kind::Variable: {
      const VarId var = block_.var_id(e.variable);
      if (auto it = current_value_.find(var); it != current_value_.end()) {
        return it->second;
      }
      const TupleIndex load = block_.append(Opcode::Load, Operand::of_var(var));
      current_value_[var] = load;
      return load;
    }
    case Expr::Kind::Negate:
      return block_.append(Opcode::Neg, Operand::of_ref(emit_expr(*e.lhs)));
    default: {
      const Opcode op = e.kind == Expr::Kind::Add   ? Opcode::Add
                        : e.kind == Expr::Kind::Sub ? Opcode::Sub
                        : e.kind == Expr::Kind::Mul ? Opcode::Mul
                                                    : Opcode::Div;
      // Evaluation order: left then right, as a one-pass compiler emits.
      const TupleIndex lhs = emit_expr(*e.lhs);
      const TupleIndex rhs = emit_expr(*e.rhs);
      return block_.append(op, Operand::of_ref(lhs), Operand::of_ref(rhs));
    }
  }
}

void BlockEmitter::emit_assign(const std::string& target, const Expr& value) {
  emit_store(target, emit_expr(value));
}

void BlockEmitter::emit_store(const std::string& target, TupleIndex value) {
  const VarId var = block_.var_id(target);
  block_.append(Opcode::Store, Operand::of_var(var), Operand::of_ref(value));
  current_value_[var] = value;
}

BasicBlock BlockEmitter::take() {
  block_.validate();
  return std::move(block_);
}

BasicBlock generate_tuples(const SourceProgram& program, std::string label) {
  PS_CHECK(program.is_straight_line(),
           "generate_tuples lowers straight-line programs only; use "
           "generate_program for control flow");
  BlockEmitter emitter(std::move(label));
  for (const Stmt& s : program.statements) {
    emitter.emit_assign(s.target, *s.value);
  }
  return emitter.take();
}

}  // namespace pipesched
