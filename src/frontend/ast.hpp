// AST for the assignment-statement language of the paper's Figure 3:
//
//   { b = 15; a = b * a; }
//
// The front end exists to feed the scheduler realistic tuple code: straight
// -line assignment statements over scalar variables, integer constants and
// the +, -, *, / operators, with unary negation and parentheses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pipesched {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { Number, Variable, Negate, Add, Sub, Mul, Div };

  Kind kind;
  std::int64_t number = 0;   ///< Kind::Number
  std::string variable;      ///< Kind::Variable
  ExprPtr lhs;               ///< unary operand / binary left
  ExprPtr rhs;               ///< binary right

  static ExprPtr make_number(std::int64_t value);
  static ExprPtr make_variable(std::string name);
  static ExprPtr make_negate(ExprPtr operand);
  static ExprPtr make_binary(Kind kind, ExprPtr lhs, ExprPtr rhs);
};

/// One statement: an assignment, or structured control flow over nested
/// statement lists (the "arbitrary control flow" of the paper's future
/// work, Section 6).
struct Stmt {
  enum class Kind { Assign, If, While };

  Kind kind = Kind::Assign;

  // Assign: target = value;
  std::string target;
  ExprPtr value;

  // If: if (cond) { then_body } [else { else_body }]
  // While: while (cond) { body } (body stored in then_body)
  ExprPtr cond;
  std::vector<Stmt> then_body;
  std::vector<Stmt> else_body;

  static Stmt assign(std::string target, ExprPtr value);
  static Stmt if_else(ExprPtr cond, std::vector<Stmt> then_body,
                      std::vector<Stmt> else_body);
  static Stmt while_loop(ExprPtr cond, std::vector<Stmt> body);
};

/// A parsed source program: a statement list, possibly with nested control
/// flow. Straight-line programs lower to a single basic block.
struct SourceProgram {
  std::vector<Stmt> statements;

  /// True when no statement carries control flow.
  bool is_straight_line() const;

  /// Render back to source text (round-trips through the parser).
  std::string to_string() const;
};

}  // namespace pipesched
