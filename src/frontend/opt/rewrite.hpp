// Rebuild machinery shared by every optimizer pass.
//
// A pass walks the input block's tuples in ascending order and, for each,
// decides to keep it, replace it, alias its uses to another tuple, or drop
// it. The rewriter maintains the old-index -> new-index mapping (resolving
// alias chains, which always point backward) and produces a compact,
// validated output block with the variable table preserved.
#pragma once

#include <optional>

#include "ir/block.hpp"

namespace pipesched {

class BlockRewriter {
 public:
  explicit BlockRewriter(const BasicBlock& input);

  const BasicBlock& input() const { return *input_; }

  /// Emit the old tuple unchanged (operands remapped). Calls must proceed
  /// in ascending old-index order across keep/replace/alias/drop.
  void keep(TupleIndex old_index);

  /// Emit `t` in place of the old tuple; `t`'s operands are expressed in
  /// the OLD index space and are remapped.
  void replace(TupleIndex old_index, const Tuple& t);

  /// Future uses of `old_index` resolve to `target_old`'s emitted tuple.
  /// `target_old` must already be processed and not dropped.
  void alias(TupleIndex old_index, TupleIndex target_old);

  /// Like alias(), but the target is given directly in the NEW index space
  /// (used when a pass matched a pattern on already-emitted tuples).
  void alias_new(TupleIndex old_index, TupleIndex target_new);

  /// Remove the tuple. Later references to it are a pass bug and throw
  /// at remap time.
  void drop(TupleIndex old_index);

  /// Append a brand-new tuple that replaces no input tuple. Operands are
  /// given directly in the NEW index space (no remapping). Returns its new
  /// index. Used by passes that synthesize instructions (reassociation's
  /// balanced combines).
  TupleIndex emit_new(const Tuple& t);

  /// Old-space index of the tuple a processed old index resolves to in the
  /// new block; nullopt when dropped.
  std::optional<TupleIndex> resolve_new(TupleIndex old_index) const;

  /// The tuple already emitted at new index `i` (for pattern matching on
  /// resolved operands, e.g. "is this operand a Const?").
  const Tuple& emitted(TupleIndex new_index) const;

  /// Number of old tuples processed so far.
  std::size_t processed() const { return next_old_; }

  /// Complete the rebuild; `changed` reports whether the output differs
  /// from the input.
  BasicBlock finish();
  bool changed() const;

 private:
  Operand remap(const Operand& o) const;
  void advance(TupleIndex old_index);

  const BasicBlock* input_;
  BasicBlock output_;
  std::vector<TupleIndex> new_of_old_;  // -1 = dropped
  std::size_t next_old_ = 0;
  bool structural_change_ = false;
};

}  // namespace pipesched
