#include "frontend/opt/rewrite.hpp"

#include "util/check.hpp"

namespace pipesched {

BlockRewriter::BlockRewriter(const BasicBlock& input)
    : input_(&input), output_(input.label()) {
  // Preserve the variable table: interning names in id order keeps VarIds
  // stable across the rewrite.
  for (std::size_t v = 0; v < input.var_count(); ++v) {
    const VarId id = output_.var_id(input.var_name(static_cast<VarId>(v)));
    PS_ASSERT(id == static_cast<VarId>(v));
  }
  new_of_old_.assign(input.size(), -1);
}

void BlockRewriter::advance(TupleIndex old_index) {
  PS_ASSERT(static_cast<std::size_t>(old_index) == next_old_ &&
            "passes must process tuples in ascending order");
  ++next_old_;
}

Operand BlockRewriter::remap(const Operand& o) const {
  if (!o.is_ref()) return o;
  PS_CHECK(static_cast<std::size_t>(o.ref) < next_old_,
           "pass bug: operand references unprocessed tuple " << o.ref + 1);
  const TupleIndex mapped = new_of_old_[static_cast<std::size_t>(o.ref)];
  PS_CHECK(mapped >= 0,
           "pass bug: operand references dropped tuple " << o.ref + 1);
  return Operand::of_ref(mapped);
}

void BlockRewriter::keep(TupleIndex old_index) {
  advance(old_index);
  const Tuple& t = input_->tuple(old_index);
  Tuple out = t;
  out.a = remap(t.a);
  out.b = remap(t.b);
  if (!(out == t)) structural_change_ = true;
  new_of_old_[static_cast<std::size_t>(old_index)] = output_.append(out);
}

void BlockRewriter::replace(TupleIndex old_index, const Tuple& t) {
  advance(old_index);
  Tuple out = t;
  out.a = remap(t.a);
  out.b = remap(t.b);
  if (!(out == input_->tuple(old_index))) structural_change_ = true;
  new_of_old_[static_cast<std::size_t>(old_index)] = output_.append(out);
}

void BlockRewriter::alias(TupleIndex old_index, TupleIndex target_old) {
  advance(old_index);
  PS_CHECK(static_cast<std::size_t>(target_old) < next_old_ - 1 ||
               target_old < old_index,
           "alias target must precede the aliased tuple");
  const TupleIndex mapped = new_of_old_[static_cast<std::size_t>(target_old)];
  PS_CHECK(mapped >= 0, "alias target was dropped");
  new_of_old_[static_cast<std::size_t>(old_index)] = mapped;
  structural_change_ = true;
}

void BlockRewriter::alias_new(TupleIndex old_index, TupleIndex target_new) {
  advance(old_index);
  PS_CHECK(target_new >= 0 &&
               static_cast<std::size_t>(target_new) < output_.size(),
           "alias_new target out of range");
  new_of_old_[static_cast<std::size_t>(old_index)] = target_new;
  structural_change_ = true;
}

TupleIndex BlockRewriter::emit_new(const Tuple& t) {
  structural_change_ = true;
  return output_.append(t);
}

void BlockRewriter::drop(TupleIndex old_index) {
  advance(old_index);
  new_of_old_[static_cast<std::size_t>(old_index)] = -1;
  structural_change_ = true;
}

std::optional<TupleIndex> BlockRewriter::resolve_new(
    TupleIndex old_index) const {
  PS_ASSERT(static_cast<std::size_t>(old_index) < next_old_);
  const TupleIndex mapped = new_of_old_[static_cast<std::size_t>(old_index)];
  if (mapped < 0) return std::nullopt;
  return mapped;
}

const Tuple& BlockRewriter::emitted(TupleIndex new_index) const {
  return output_.tuple(new_index);
}

BasicBlock BlockRewriter::finish() {
  PS_ASSERT(next_old_ == input_->size() &&
            "every input tuple must be processed");
  output_.validate();
  return std::move(output_);
}

bool BlockRewriter::changed() const { return structural_change_; }

}  // namespace pipesched
