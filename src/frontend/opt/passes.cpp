#include "frontend/opt/passes.hpp"

#include <optional>
#include <sstream>
#include <unordered_map>

#include "frontend/opt/rewrite.hpp"
#include "ir/interp.hpp"
#include "util/check.hpp"

namespace pipesched {

namespace {

/// Constant value of an old-space operand, looking through the rewriter's
/// already-emitted output (so folds chain within a single pass).
std::optional<std::int64_t> const_value(const BlockRewriter& rw,
                                        const Operand& o) {
  if (o.is_imm()) return o.imm;
  if (!o.is_ref()) return std::nullopt;
  const auto resolved = rw.resolve_new(o.ref);
  if (!resolved) return std::nullopt;
  const Tuple& t = rw.emitted(*resolved);
  if (t.op == Opcode::Const) return t.a.imm;
  return std::nullopt;
}

/// NEW-space value index an old-space ref operand resolves to.
std::optional<TupleIndex> resolved_ref(const BlockRewriter& rw,
                                       const Operand& o) {
  if (!o.is_ref()) return std::nullopt;
  return rw.resolve_new(o.ref);
}

/// True when the two operands provably carry the same value.
bool same_value(const BlockRewriter& rw, const Operand& a, const Operand& b) {
  const auto ca = const_value(rw, a);
  const auto cb = const_value(rw, b);
  if (ca && cb) return *ca == *cb;
  const auto ra = resolved_ref(rw, a);
  const auto rb = resolved_ref(rw, b);
  return ra && rb && *ra == *rb;
}

/// Emit "the value of operand o" in place of tuple i.
void forward_operand(BlockRewriter& rw, TupleIndex i, const Operand& o) {
  if (o.is_ref()) {
    rw.alias(i, o.ref);
  } else {
    PS_ASSERT(o.is_imm());
    rw.replace(i, Tuple{Opcode::Const, Operand::of_imm(o.imm), {}});
  }
}

}  // namespace

PassResult copy_propagation(const BasicBlock& block) {
  BlockRewriter rw(block);
  for (std::size_t i = 0; i < block.size(); ++i) {
    const auto index = static_cast<TupleIndex>(i);
    const Tuple& t = block.tuple(index);
    if (t.op == Opcode::Mov) {
      forward_operand(rw, index, t.a);
    } else {
      rw.keep(index);
    }
  }
  const bool changed = rw.changed();
  return {rw.finish(), changed};
}

PassResult constant_folding(const BasicBlock& block) {
  BlockRewriter rw(block);
  for (std::size_t i = 0; i < block.size(); ++i) {
    const auto index = static_cast<TupleIndex>(i);
    const Tuple& t = block.tuple(index);
    const bool foldable = t.op == Opcode::Mov || t.op == Opcode::Neg ||
                          opcode_is_binary_arith(t.op);
    if (foldable) {
      const auto a = const_value(rw, t.a);
      const auto b = opcode_arity(t.op) == 2 ? const_value(rw, t.b)
                                             : std::optional<std::int64_t>(0);
      if (a && b) {
        rw.replace(index, Tuple{Opcode::Const,
                                Operand::of_imm(eval_op(t.op, *a, *b)), {}});
        continue;
      }
    }
    rw.keep(index);
  }
  const bool changed = rw.changed();
  return {rw.finish(), changed};
}

PassResult algebraic_simplification(const BasicBlock& block) {
  BlockRewriter rw(block);
  for (std::size_t i = 0; i < block.size(); ++i) {
    const auto index = static_cast<TupleIndex>(i);
    const Tuple& t = block.tuple(index);
    const auto ca = const_value(rw, t.a);
    const auto cb = const_value(rw, t.b);

    auto emit_const = [&](std::int64_t v) {
      rw.replace(index, Tuple{Opcode::Const, Operand::of_imm(v), {}});
    };

    switch (t.op) {
      case Opcode::Add:
        if (ca && *ca == 0) {
          forward_operand(rw, index, t.b);
          continue;
        }
        if (cb && *cb == 0) {
          forward_operand(rw, index, t.a);
          continue;
        }
        break;
      case Opcode::Sub:
        if (cb && *cb == 0) {
          forward_operand(rw, index, t.a);
          continue;
        }
        if (same_value(rw, t.a, t.b)) {
          emit_const(0);
          continue;
        }
        if (ca && *ca == 0) {
          rw.replace(index, Tuple{Opcode::Neg, t.b, {}});
          continue;
        }
        break;
      case Opcode::Mul:
        if ((ca && *ca == 0) || (cb && *cb == 0)) {
          emit_const(0);
          continue;
        }
        if (ca && *ca == 1) {
          forward_operand(rw, index, t.b);
          continue;
        }
        if (cb && *cb == 1) {
          forward_operand(rw, index, t.a);
          continue;
        }
        // Strength reduction: x*2 becomes x+x, moving the operation from
        // the multiplier pipeline onto the adder.
        if (ca && *ca == 2) {
          rw.replace(index, Tuple{Opcode::Add, t.b, t.b});
          continue;
        }
        if (cb && *cb == 2) {
          rw.replace(index, Tuple{Opcode::Add, t.a, t.a});
          continue;
        }
        break;
      case Opcode::Div:
        if (cb && *cb == 1) {
          forward_operand(rw, index, t.a);
          continue;
        }
        // 0/x == 0 for every x under the div-by-zero-yields-0 convention.
        if (ca && *ca == 0) {
          emit_const(0);
          continue;
        }
        break;
      case Opcode::Neg: {
        // --x == x.
        const auto inner = resolved_ref(rw, t.a);
        if (inner && rw.emitted(*inner).op == Opcode::Neg &&
            rw.emitted(*inner).a.is_ref()) {
          rw.alias_new(index, rw.emitted(*inner).a.ref);
          continue;
        }
        break;
      }
      default:
        break;
    }
    rw.keep(index);
  }
  const bool changed = rw.changed();
  return {rw.finish(), changed};
}

PassResult load_forwarding(const BasicBlock& block) {
  BlockRewriter rw(block);
  // Per variable: NEW-space index of its current in-register value.
  std::unordered_map<VarId, TupleIndex> current_value;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const auto index = static_cast<TupleIndex>(i);
    const Tuple& t = block.tuple(index);
    if (t.op == Opcode::Load) {
      if (auto it = current_value.find(t.a.var); it != current_value.end()) {
        rw.alias_new(index, it->second);
        continue;
      }
      rw.keep(index);
      current_value[t.a.var] = *rw.resolve_new(index);
      continue;
    }
    if (t.op == Opcode::Store) {
      rw.keep(index);
      if (t.b.is_ref()) {
        if (auto value = rw.resolve_new(t.b.ref)) {
          current_value[t.a.var] = *value;
          continue;
        }
      }
      current_value.erase(t.a.var);
      continue;
    }
    rw.keep(index);
  }
  const bool changed = rw.changed();
  return {rw.finish(), changed};
}

PassResult common_subexpression_elimination(const BasicBlock& block) {
  BlockRewriter rw(block);
  std::unordered_map<std::string, TupleIndex> available;  // key -> NEW index
  std::unordered_map<VarId, int> epoch;  // bumped by stores

  auto operand_key = [&](const Operand& o) -> std::string {
    if (o.is_imm()) return "i" + std::to_string(o.imm);
    if (o.is_ref()) {
      const auto resolved = rw.resolve_new(o.ref);
      PS_ASSERT(resolved.has_value());
      return "r" + std::to_string(*resolved);
    }
    return "_";
  };

  for (std::size_t i = 0; i < block.size(); ++i) {
    const auto index = static_cast<TupleIndex>(i);
    const Tuple& t = block.tuple(index);

    std::string key;
    switch (t.op) {
      case Opcode::Const:
        key = "C" + std::to_string(t.a.imm);
        break;
      case Opcode::Load:
        key = "L" + std::to_string(t.a.var) + "@" +
              std::to_string(epoch[t.a.var]);
        break;
      case Opcode::Store:
        ++epoch[t.a.var];
        rw.keep(index);
        continue;
      default: {
        std::string ka = operand_key(t.a);
        std::string kb = operand_key(t.b);
        if (opcode_is_commutative(t.op) && kb < ka) std::swap(ka, kb);
        key = std::string(opcode_name(t.op)) + "|" + ka + "|" + kb;
        break;
      }
    }

    if (auto it = available.find(key); it != available.end()) {
      rw.alias_new(index, it->second);
    } else {
      rw.keep(index);
      available.emplace(std::move(key), *rw.resolve_new(index));
    }
  }
  const bool changed = rw.changed();
  return {rw.finish(), changed};
}

PassResult dead_code_elimination(const BasicBlock& block) {
  const std::size_t n = block.size();
  std::vector<bool> live(n, false);

  // A Store is observable when it is the variable's final store, or some
  // Load reads the variable before the next store overwrites it.
  std::unordered_map<VarId, std::size_t> pending_store;  // awaiting a reader
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = block.tuple(static_cast<TupleIndex>(i));
    if (t.op == Opcode::Store) {
      pending_store[t.a.var] = i;  // previous pending store (if any) was
                                   // overwritten unread: stays dead
      live[i] = false;
      // Tentatively mark; final store per var fixed up below.
    } else if (t.op == Opcode::Load) {
      if (auto it = pending_store.find(t.a.var); it != pending_store.end()) {
        live[it->second] = true;  // store observed by this load
      }
    }
  }
  for (const auto& [var, pos] : pending_store) {
    live[pos] = true;  // final store: observable at block exit
  }

  // Backward closure over value uses (references always point backward).
  for (std::size_t ri = n; ri-- > 0;) {
    if (!live[ri]) continue;
    const Tuple& t = block.tuple(static_cast<TupleIndex>(ri));
    for (const Operand* o : {&t.a, &t.b}) {
      if (o->is_ref()) live[static_cast<std::size_t>(o->ref)] = true;
    }
  }

  BlockRewriter rw(block);
  for (std::size_t i = 0; i < n; ++i) {
    if (live[i]) {
      rw.keep(static_cast<TupleIndex>(i));
    } else {
      rw.drop(static_cast<TupleIndex>(i));
    }
  }
  const bool changed = rw.changed();
  return {rw.finish(), changed};
}

PassResult reassociation(const BasicBlock& block) {
  const std::size_t n = block.size();

  // Per-tuple reference counts and (single) user identity.
  std::vector<int> use_count(n, 0);
  std::vector<TupleIndex> single_user(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = block.tuple(static_cast<TupleIndex>(i));
    for (const Operand* o : {&t.a, &t.b}) {
      if (!o->is_ref()) continue;
      const auto ref = static_cast<std::size_t>(o->ref);
      ++use_count[ref];
      single_user[ref] = static_cast<TupleIndex>(i);
    }
  }

  const auto assoc_op = [&](TupleIndex i) -> std::optional<Opcode> {
    const Opcode op = block.tuple(i).op;
    if (op == Opcode::Add || op == Opcode::Mul) return op;
    return std::nullopt;
  };

  // A tuple folds into its parent when the parent is the sole user and
  // applies the same associative op.
  const auto absorbed = [&](TupleIndex i) {
    const auto op = assoc_op(i);
    if (!op) return false;
    const auto index = static_cast<std::size_t>(i);
    if (use_count[index] != 1) return false;
    const TupleIndex user = single_user[index];
    return assoc_op(user) == op;
  };

  BlockRewriter rw(block);
  for (std::size_t i = 0; i < n; ++i) {
    const auto index = static_cast<TupleIndex>(i);
    const auto op = assoc_op(index);
    if (!op || absorbed(index)) {
      rw.keep(index);  // interior nodes go dead once the root is rebuilt
      continue;
    }

    // Maximal tree root: gather leaves left-to-right.
    std::vector<Operand> leaves;
    const auto collect = [&](auto&& self, const Operand& o) -> void {
      if (o.is_ref() && assoc_op(o.ref) == op && absorbed(o.ref)) {
        const Tuple& t = block.tuple(o.ref);
        self(self, t.a);
        self(self, t.b);
        return;
      }
      leaves.push_back(o);
    };
    const Tuple& root = block.tuple(index);
    collect(collect, root.a);
    collect(collect, root.b);

    if (leaves.size() < 3) {
      rw.keep(index);
      continue;
    }

    // Resolve leaves into NEW space and combine pairwise, tournament
    // style: height ceil(log2(#leaves)) instead of #leaves - 1.
    std::vector<Operand> level;
    for (const Operand& leaf : leaves) {
      if (leaf.is_ref()) {
        const auto resolved = rw.resolve_new(leaf.ref);
        PS_ASSERT(resolved.has_value());
        level.push_back(Operand::of_ref(*resolved));
      } else {
        level.push_back(leaf);
      }
    }
    while (level.size() > 1) {
      std::vector<Operand> next;
      for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
        next.push_back(
            Operand::of_ref(rw.emit_new(Tuple{*op, level[k], level[k + 1]})));
      }
      if (level.size() % 2) next.push_back(level.back());
      level = std::move(next);
    }
    PS_ASSERT(level.front().is_ref());
    rw.alias_new(index, level.front().ref);
  }
  const bool changed = rw.changed();
  return {rw.finish(), changed};
}

const std::vector<Pass>& standard_passes() {
  static const std::vector<Pass> kPasses = {
      {"copy-propagation", copy_propagation},
      {"constant-folding", constant_folding},
      {"algebraic-simplification", algebraic_simplification},
      {"load-forwarding", load_forwarding},
      {"cse", common_subexpression_elimination},
      {"dce", dead_code_elimination},
  };
  return kPasses;
}

BasicBlock run_standard_pipeline(const BasicBlock& block, int max_rounds) {
  BasicBlock current = block;
  for (int round = 0; round < max_rounds; ++round) {
    bool any_change = false;
    for (const Pass& pass : standard_passes()) {
      PassResult result = pass.run(current);
      any_change = any_change || result.changed;
      current = std::move(result.block);
    }
    if (!any_change) break;
  }
  return current;
}

}  // namespace pipesched
