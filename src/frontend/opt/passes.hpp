// The "traditional optimizations" of paper Section 3.1, as independent
// block-to-block passes:
//
//   copy propagation           Mov chains collapse onto their source;
//   constant folding           arithmetic over known constants evaluates at
//     (+ value propagation)    compile time, using the interpreter's own
//                              eval_op so semantics cannot diverge;
//   algebraic simplification   x+0, x*1, x*0, x-x, x/1, 0/x, --x, 0-x, and
//                              the x*2 -> x+x strength reduction (which also
//                              moves work from the multiplier pipeline to
//                              the adder - visible to the scheduler);
//   load forwarding            a Load that follows a Store to the same
//     (peephole)               variable with no intervening store reuses
//                              the stored value;
//   common subexpression       structurally identical pure tuples (and
//     elimination              Loads within the same memory epoch) merge;
//   dead code elimination      tuples with no live use go away; a Store is
//                              live only if it is the variable's last store
//                              or a Load reads it before the next store.
//
// run_standard_pipeline() iterates the sequence to a fixpoint. The paper
// notes optimized code makes good schedules *harder* to find (more
// dependences per remaining instruction), which the corpus experiments
// reproduce.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/block.hpp"

namespace pipesched {

/// Result of one pass application.
struct PassResult {
  BasicBlock block;
  bool changed = false;
};

using PassFn = std::function<PassResult(const BasicBlock&)>;

struct Pass {
  std::string name;
  PassFn run;
};

PassResult copy_propagation(const BasicBlock& block);
PassResult constant_folding(const BasicBlock& block);
PassResult algebraic_simplification(const BasicBlock& block);
PassResult load_forwarding(const BasicBlock& block);
PassResult common_subexpression_elimination(const BasicBlock& block);
PassResult dead_code_elimination(const BasicBlock& block);

/// Reassociation (extension, NOT part of the standard pipeline so the
/// calibrated corpus results stay comparable to the paper):
/// a left-leaning chain of n same-op Add or Mul tuples has dependence
/// height n; rebuilding it as a balanced tree has height ceil(log2 n),
/// which directly shortens the critical path the scheduler must cover
/// with independent work. Only single-use interior nodes are rebuilt
/// (two's-complement Add/Mul are fully associative and commutative, so
/// semantics are exact). Run DCE afterwards to drop the abandoned
/// originals.
PassResult reassociation(const BasicBlock& block);

/// The standard pass sequence, in application order.
const std::vector<Pass>& standard_passes();

/// Run the standard sequence repeatedly until no pass changes the block
/// (or `max_rounds` is hit — a safety bound, normally 2-3 rounds suffice).
BasicBlock run_standard_pipeline(const BasicBlock& block, int max_rounds = 8);

}  // namespace pipesched
