#include "frontend/ast.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pipesched {

ExprPtr Expr::make_number(std::int64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Number;
  e->number = value;
  return e;
}

ExprPtr Expr::make_variable(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Variable;
  e->variable = std::move(name);
  return e;
}

ExprPtr Expr::make_negate(ExprPtr operand) {
  PS_ASSERT(operand);
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Negate;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::make_binary(Kind kind, ExprPtr lhs, ExprPtr rhs) {
  PS_ASSERT(kind == Kind::Add || kind == Kind::Sub || kind == Kind::Mul ||
            kind == Kind::Div);
  PS_ASSERT(lhs && rhs);
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

Stmt Stmt::assign(std::string target, ExprPtr value) {
  PS_ASSERT(value);
  Stmt s;
  s.kind = Kind::Assign;
  s.target = std::move(target);
  s.value = std::move(value);
  return s;
}

Stmt Stmt::if_else(ExprPtr cond, std::vector<Stmt> then_body,
                   std::vector<Stmt> else_body) {
  PS_ASSERT(cond);
  Stmt s;
  s.kind = Kind::If;
  s.cond = std::move(cond);
  s.then_body = std::move(then_body);
  s.else_body = std::move(else_body);
  return s;
}

Stmt Stmt::while_loop(ExprPtr cond, std::vector<Stmt> body) {
  PS_ASSERT(cond);
  Stmt s;
  s.kind = Kind::While;
  s.cond = std::move(cond);
  s.then_body = std::move(body);
  return s;
}

namespace {

void render(const Expr& e, std::ostringstream& oss) {
  switch (e.kind) {
    case Expr::Kind::Number:
      oss << e.number;
      return;
    case Expr::Kind::Variable:
      oss << e.variable;
      return;
    case Expr::Kind::Negate:
      oss << "-(";
      render(*e.lhs, oss);
      oss << ")";
      return;
    default: {
      const char* op = e.kind == Expr::Kind::Add   ? " + "
                       : e.kind == Expr::Kind::Sub ? " - "
                       : e.kind == Expr::Kind::Mul ? " * "
                                                   : " / ";
      oss << "(";
      render(*e.lhs, oss);
      oss << op;
      render(*e.rhs, oss);
      oss << ")";
      return;
    }
  }
}

void render_stmts(const std::vector<Stmt>& statements, int indent,
                  std::ostringstream& oss) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const Stmt& s : statements) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        oss << pad << s.target << " = ";
        render(*s.value, oss);
        oss << ";\n";
        break;
      case Stmt::Kind::If:
        oss << pad << "if (";
        render(*s.cond, oss);
        oss << ") {\n";
        render_stmts(s.then_body, indent + 1, oss);
        oss << pad << "}";
        if (!s.else_body.empty()) {
          oss << " else {\n";
          render_stmts(s.else_body, indent + 1, oss);
          oss << pad << "}";
        }
        oss << "\n";
        break;
      case Stmt::Kind::While:
        oss << pad << "while (";
        render(*s.cond, oss);
        oss << ") {\n";
        render_stmts(s.then_body, indent + 1, oss);
        oss << pad << "}\n";
        break;
    }
  }
}

bool any_control_flow(const std::vector<Stmt>& statements) {
  for (const Stmt& s : statements) {
    if (s.kind != Stmt::Kind::Assign) return true;
  }
  return false;
}

}  // namespace

bool SourceProgram::is_straight_line() const {
  return !any_control_flow(statements);
}

std::string SourceProgram::to_string() const {
  std::ostringstream oss;
  render_stmts(statements, 0, oss);
  return oss.str();
}

}  // namespace pipesched
