// The 16,000-block experiment corpus (paper Section 5.3).
//
// The paper swept "various numbers of statements, variables, and
// constants" yielding an average of 20.6 instructions per block with a
// tail past 40 instructions (Figure 5). corpus_params() reproduces that
// construction deterministically: a fixed lattice of
// (statements, variables, constants) combinations cycled until
// `total_runs` parameter sets exist, each with a distinct derived seed.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/generator.hpp"

namespace pipesched {

struct CorpusSpec {
  int total_runs = 16000;
  std::uint64_t base_seed = 0x5eed;
  bool optimize = true;
};

/// Deterministic parameter sets for the corpus.
std::vector<GeneratorParams> corpus_params(const CorpusSpec& spec);

/// `copies` full passes over the `spec.total_runs` distinct parameter
/// sets, concatenated (identical seeds => identical blocks). This is the
/// result-cache workload: every block after the first pass is an exact
/// duplicate, so a sound cache should serve it without searching.
std::vector<GeneratorParams> duplicated_corpus_params(const CorpusSpec& spec,
                                                      int copies);

}  // namespace pipesched
