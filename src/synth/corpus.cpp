#include "synth/corpus.hpp"

namespace pipesched {

std::vector<GeneratorParams> corpus_params(const CorpusSpec& spec) {
  // Lattice chosen so the optimized blocks average ~20 instructions with
  // a spread from a handful to 45+ (matching Figure 5's distribution
  // shape). More variables => more upward-exposed loads and wider DAGs;
  // fewer variables => longer dependence chains through stores.
  static const int kStatements[] = {5, 7, 9, 11, 14, 16, 18, 21, 24, 28, 32, 36};
  static const int kVariables[] = {3, 4, 5, 6, 8, 10, 12};
  static const int kConstants[] = {1, 2, 3, 4};

  std::vector<GeneratorParams> out;
  out.reserve(static_cast<std::size_t>(spec.total_runs));
  std::size_t si = 0;
  std::size_t vi = 0;
  std::size_t ci = 0;
  for (int run = 0; run < spec.total_runs; ++run) {
    GeneratorParams p;
    p.statements = kStatements[si];
    p.variables = kVariables[vi];
    p.constants = kConstants[ci];
    p.seed = spec.base_seed + static_cast<std::uint64_t>(run) * 0x9e37 + 1;
    p.optimize = spec.optimize;
    out.push_back(p);
    // Advance the lattice coordinates at co-prime strides so combinations
    // interleave instead of clustering.
    si = (si + 1) % (sizeof(kStatements) / sizeof(kStatements[0]));
    if (si == 0) vi = (vi + 1) % (sizeof(kVariables) / sizeof(kVariables[0]));
    if (si == 0 && vi == 0) {
      ci = (ci + 1) % (sizeof(kConstants) / sizeof(kConstants[0]));
    }
  }
  return out;
}

std::vector<GeneratorParams> duplicated_corpus_params(const CorpusSpec& spec,
                                                      int copies) {
  const std::vector<GeneratorParams> unique = corpus_params(spec);
  std::vector<GeneratorParams> out;
  out.reserve(unique.size() * static_cast<std::size_t>(copies > 0 ? copies : 0));
  // Whole passes (not adjacent repeats) so duplicate pairs land far apart
  // in the work queue — adjacent copies would race each other through the
  // scheduler before the first store lands.
  for (int c = 0; c < copies; ++c) {
    out.insert(out.end(), unique.begin(), unique.end());
  }
  return out;
}

}  // namespace pipesched
