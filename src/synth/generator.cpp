#include "synth/generator.hpp"

#include "frontend/codegen.hpp"
#include "frontend/opt/passes.hpp"
#include "util/check.hpp"

namespace pipesched {

namespace {

enum class Form {
  VConst,        // v = c
  VCopy,         // v = v
  VAddV,         // v = v + v
  VSubV,         // v = v - v
  VMulV,         // v = v * v
  VDivV,         // v = v / v
  VAddC,         // v = v + c
  VMulC,         // v = v * c
  VNeg,          // v = -v
  VMulAdd,       // v = v + v * v
  VCompound,     // v = (v + v) * (v - v)
};

struct FormEntry {
  Form form;
  const char* pattern;
  double weight;
};

// Reconstruction of Table 6 (see header comment).
constexpr FormEntry kForms[] = {
    {Form::VConst, "v = c", 12},
    {Form::VCopy, "v = v", 10},
    {Form::VAddV, "v = v + v", 22},
    {Form::VSubV, "v = v - v", 13},
    {Form::VMulV, "v = v * v", 9},
    {Form::VDivV, "v = v / v", 4},
    {Form::VAddC, "v = v + c", 14},
    {Form::VMulC, "v = v * c", 6},
    {Form::VNeg, "v = -v", 3},
    {Form::VMulAdd, "v = v + v * v", 5},
    {Form::VCompound, "v = (v + v) * (v - v)", 2},
};

class SourceGenerator {
 public:
  explicit SourceGenerator(const GeneratorParams& params)
      : params_(params), rng_(params.seed) {
    PS_CHECK(params.statements >= 1, "need at least one statement");
    PS_CHECK(params.variables >= 1, "need at least one variable");
    PS_CHECK(params.constants >= 1, "need at least one constant");
    for (int v = 0; v < params.variables; ++v) {
      variables_.push_back("v" + std::to_string(v));
    }
    // Distinct small constants; values themselves are immaterial to the
    // scheduling problem but kept distinct so CSE behaves realistically.
    for (int c = 0; c < params.constants; ++c) {
      constant_pool_.push_back(2 + 3 * c);
    }
    for (const FormEntry& f : kForms) weights_.push_back(f.weight);
  }

  SourceProgram run() {
    SourceProgram program;
    for (int s = 0; s < params_.statements; ++s) {
      program.statements.push_back(statement());
    }
    return program;
  }

 private:
  const std::string& pick_var() {
    return variables_[rng_.next_below(variables_.size())];
  }

  std::int64_t pick_const() {
    return constant_pool_[rng_.next_below(constant_pool_.size())];
  }

  ExprPtr var() { return Expr::make_variable(pick_var()); }
  ExprPtr num() { return Expr::make_number(pick_const()); }

  ExprPtr binary(Expr::Kind kind, ExprPtr l, ExprPtr r) {
    return Expr::make_binary(kind, std::move(l), std::move(r));
  }

  Stmt statement() {
    Stmt s;
    s.target = pick_var();
    switch (kForms[rng_.next_weighted(weights_)].form) {
      case Form::VConst:
        s.value = num();
        break;
      case Form::VCopy:
        s.value = var();
        break;
      case Form::VAddV:
        s.value = binary(Expr::Kind::Add, var(), var());
        break;
      case Form::VSubV:
        s.value = binary(Expr::Kind::Sub, var(), var());
        break;
      case Form::VMulV:
        s.value = binary(Expr::Kind::Mul, var(), var());
        break;
      case Form::VDivV:
        s.value = binary(Expr::Kind::Div, var(), var());
        break;
      case Form::VAddC:
        s.value = binary(Expr::Kind::Add, var(), num());
        break;
      case Form::VMulC:
        s.value = binary(Expr::Kind::Mul, var(), num());
        break;
      case Form::VNeg:
        s.value = Expr::make_negate(var());
        break;
      case Form::VMulAdd:
        s.value = binary(Expr::Kind::Add, var(),
                         binary(Expr::Kind::Mul, var(), var()));
        break;
      case Form::VCompound:
        s.value = binary(Expr::Kind::Mul,
                         binary(Expr::Kind::Add, var(), var()),
                         binary(Expr::Kind::Sub, var(), var()));
        break;
    }
    return s;
  }

  const GeneratorParams& params_;
  Rng rng_;
  std::vector<std::string> variables_;
  std::vector<std::int64_t> constant_pool_;
  std::vector<double> weights_;
};

}  // namespace

const std::vector<StatementForm>& statement_frequency_table() {
  static const std::vector<StatementForm> kTable = [] {
    std::vector<StatementForm> table;
    for (const FormEntry& f : kForms) table.push_back({f.pattern, f.weight});
    return table;
  }();
  return kTable;
}

SourceProgram generate_source(const GeneratorParams& params) {
  return SourceGenerator(params).run();
}

BasicBlock generate_block(const GeneratorParams& params) {
  const SourceProgram source = generate_source(params);
  BasicBlock block =
      generate_tuples(source, "synth_" + std::to_string(params.seed));
  if (params.optimize) block = run_standard_pipeline(block);
  return block;
}

}  // namespace pipesched
