// Synthetic basic-block generator (paper Section 5.2).
//
// "A C program was developed to randomly generate basic blocks ... This
//  program requires as input the number of statements, variables, and
//  constants desired in the generated code. It then generates a random
//  sequence of assignment statements satisfying the desired conditions."
//
// Statement-type frequencies loosely follow the Alexander & Wortman
// instruction-mix study [AlW75], as in the paper's Table 6. The original
// table's values did not survive scanning, so the weights below are a
// documented reconstruction (DESIGN.md Section 4): assignments are
// dominated by one- and two-operand additive forms, multiplication is a
// third as common as addition, division is rare.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "ir/block.hpp"
#include "util/rng.hpp"

namespace pipesched {

/// One row of the (reconstructed) Table 6.
struct StatementForm {
  std::string pattern;  ///< e.g. "v = v + v"
  double weight = 0;    ///< relative frequency
};

/// The reconstructed statement-frequency table.
const std::vector<StatementForm>& statement_frequency_table();

struct GeneratorParams {
  int statements = 8;   ///< assignment statements to generate
  int variables = 4;    ///< size of the variable pool
  int constants = 2;    ///< size of the constant pool
  std::uint64_t seed = 1;
  bool optimize = true; ///< run the standard pass pipeline after codegen
};

/// Random source program over pools of `variables` names and `constants`
/// literal values, with statement forms drawn per the frequency table.
SourceProgram generate_source(const GeneratorParams& params);

/// Source -> tuple code (-> optimizer when params.optimize). Deterministic
/// in params.seed.
BasicBlock generate_block(const GeneratorParams& params);

}  // namespace pipesched
