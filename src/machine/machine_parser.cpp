#include "machine/machine_parser.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace pipesched {

namespace {

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  for (const std::string& tok : split(line, ' ')) {
    if (!trim(tok).empty()) out.push_back(trim(tok));
  }
  return out;
}

int parse_int(const std::string& s, int line_no) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(s, &used);
    PS_CHECK(used == s.size(), "line " << line_no << ": bad integer '" << s
                                       << "'");
    return value;
  } catch (const std::exception&) {
    throw Error("line " + std::to_string(line_no) + ": bad integer '" + s +
                "'");
  }
}

}  // namespace

Machine parse_machine(const std::string& text) {
  std::optional<Machine> machine;
  int line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    if (auto comment = line.find('#'); comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    const auto toks = tokens_of(line);
    if (toks.empty()) continue;

    if (toks[0] == "machine") {
      PS_CHECK(toks.size() == 2, "line " << line_no << ": machine <name>");
      PS_CHECK(!machine.has_value(),
               "line " << line_no << ": duplicate machine directive");
      machine.emplace(toks[1]);
    } else if (toks[0] == "pipeline") {
      PS_CHECK(machine.has_value(),
               "line " << line_no << ": pipeline before machine directive");
      PS_CHECK(toks.size() == 6 && toks[2] == "latency" && toks[4] == "enqueue",
               "line " << line_no
                       << ": pipeline <function> latency <n> enqueue <n>");
      machine->add_pipeline(toks[1], parse_int(toks[3], line_no),
                            parse_int(toks[5], line_no));
    } else if (toks[0] == "map") {
      PS_CHECK(machine.has_value(),
               "line " << line_no << ": map before machine directive");
      PS_CHECK(toks.size() == 3, "line " << line_no
                                         << ": map <Opcode> <function>");
      const auto op = opcode_from_name(toks[1]);
      PS_CHECK(op.has_value(),
               "line " << line_no << ": unknown opcode '" << toks[1] << "'");
      machine->map_op(*op, toks[2]);
    } else {
      throw Error("line " + std::to_string(line_no) + ": unknown directive '" +
                  toks[0] + "'");
    }
  }
  PS_CHECK(machine.has_value(), "no machine directive found");
  machine->validate();
  return *machine;
}

std::string machine_to_config(const Machine& m) {
  std::ostringstream oss;
  oss << "machine " << m.name() << "\n";
  for (std::size_t i = 0; i < m.pipeline_count(); ++i) {
    const PipelineDesc& p = m.pipeline(static_cast<PipelineId>(i));
    oss << "pipeline " << p.function << " latency " << p.latency
        << " enqueue " << p.enqueue << "\n";
  }
  for (int op = 0; op < kOpcodeCount; ++op) {
    // map directives are by function name; emit one per distinct function
    // (map_op(function) re-expands to all units sharing it).
    std::vector<std::string> seen;
    for (PipelineId id : m.pipelines_for(static_cast<Opcode>(op))) {
      const std::string& function = m.pipeline(id).function;
      if (std::find(seen.begin(), seen.end(), function) != seen.end()) {
        continue;
      }
      seen.push_back(function);
      oss << "map " << opcode_name(static_cast<Opcode>(op)) << " "
          << function << "\n";
    }
  }
  return oss.str();
}

}  // namespace pipesched
