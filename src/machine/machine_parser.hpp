// Text format for machine descriptions, so experiments can swap pipeline
// structures without recompiling (the paper: "changing the pipeline
// structure changes only the entries in these tables").
//
// Format, one directive per line, '#' comments:
//   machine <name>
//   pipeline <function> latency <n> enqueue <n>
//   map <Opcode> <function>
#pragma once

#include <string>

#include "machine/machine.hpp"

namespace pipesched {

/// Parse a machine description. Throws Error (with line numbers) on
/// malformed input; the returned machine is validated.
Machine parse_machine(const std::string& text);

/// Render `m` in the parse_machine() format (round-trips).
std::string machine_to_config(const Machine& m);

}  // namespace pipesched
