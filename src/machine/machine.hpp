// Target pipeline architecture model (paper Section 4.1, Tables 2-5).
//
// A Machine is a set of hardware pipelines — each with its own *latency*
// (clock ticks from enqueue until the result is available; governs
// dependence delays) and *enqueue time* (minimum ticks between two
// operations entering the same pipeline; governs conflict delays) — plus a
// mapping from operation types to the set of pipelines able to execute
// them. Non-pipelined functional units are modeled by enqueue == latency
// (Section 2.1); operations with no mapped pipeline (sigma = empty, e.g.
// Const and Store on the paper's machine) never conflict and have latency 0.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ir/opcode.hpp"

namespace pipesched {

/// Internal pipeline identifier: index into Machine's pipeline table.
using PipelineId = int;

inline constexpr PipelineId kNoPipeline = -1;

struct PipelineDesc {
  std::string function;  ///< e.g. "loader", "adder", "multiplier"
  int latency = 1;       ///< >= 1
  int enqueue = 1;       ///< >= 1
};

class Machine {
 public:
  explicit Machine(std::string name);

  const std::string& name() const { return name_; }

  /// Register a pipeline; returns its PipelineId (display ids are id+1,
  /// matching the paper's 1-based tables).
  PipelineId add_pipeline(std::string function, int latency, int enqueue);

  /// Map an opcode to every pipeline whose function name matches.
  /// Throws if no pipeline has that function.
  void map_op(Opcode op, const std::string& function);

  /// Map an opcode to explicit pipeline ids (appends, de-duplicated).
  void map_op(Opcode op, const std::vector<PipelineId>& pipelines);

  std::size_t pipeline_count() const { return pipelines_.size(); }
  const PipelineDesc& pipeline(PipelineId id) const;

  /// Pipelines able to execute `op`; empty means sigma = empty set.
  const std::vector<PipelineId>& pipelines_for(Opcode op) const;

  /// True when `op` has at least one mapped pipeline.
  bool uses_pipeline(Opcode op) const { return !pipelines_for(op).empty(); }

  /// `op`'s alternative units grouped by identical (latency, enqueue)
  /// signature. Units within a group are interchangeable (earliest-free
  /// choice is optimal by exchange); units in different groups are a
  /// genuine scheduling decision the optimal search branches over.
  /// Homogeneous ops have exactly one group. Empty for sigma-empty ops.
  const std::vector<std::vector<PipelineId>>& unit_groups(Opcode op) const;

  /// True when some opcode maps to units with differing parameters (the
  /// general model footnote 3 excludes from the paper's own algorithm).
  bool has_heterogeneous_alternatives() const;

  /// MINIMUM latency over `op`'s alternatives; 0 when sigma = empty.
  /// (An admissible bound: heterogeneous ops may execute on a slower
  /// unit; per-placement timing always uses the chosen unit's latency.)
  int latency_for(Opcode op) const;

  /// Minimum enqueue time over `op`'s alternatives; 0 when sigma = empty.
  int enqueue_for(Opcode op) const;

  /// Largest latency of any pipeline (bound used by search heuristics).
  int max_latency() const;

  /// Check invariants: at least one pipeline, positive latencies and
  /// enqueue times. Heterogeneous alternatives are allowed — the optimal
  /// search branches over their signature groups; the greedy/list
  /// schedulers fall back to an earliest-free heuristic choice.
  /// Throws Error on violation.
  void validate() const;

  /// Render the two description tables in the paper's format.
  std::string to_string() const;

  // --- presets (see DESIGN.md Section 5) -----------------------------------

  /// Tables 4-5: loader(2,1), adder(4,3), multiplier(4,2); one unit each.
  static Machine paper_simulation();

  /// Tables 2-3: two loaders, two adders, one multiplier.
  static Machine paper_example();

  /// MIPS-R3000-flavoured: loader(4,1), alu(1,1), multiplier(6,2),
  /// divider(12,12).
  static Machine risc_classic();

  /// One deep pipeline shared by every operation: latency 8, enqueue 1.
  static Machine single_issue_deep();

  /// Parallel non-pipelined units: enqueue == latency (Section 2.1).
  static Machine unpipelined_units();

  /// Heterogeneous alternatives: a fast 1-cycle ALU and a slow 4-cycle ALU
  /// both execute Add/Sub/Neg — the unit choice is a real scheduling
  /// decision (the general model of Section 4.1 that footnote 3 excludes
  /// from the paper's own algorithm).
  static Machine asymmetric_alus();

  /// All presets by name (used by tests and the machine-explorer example).
  static const std::vector<std::string>& preset_names();
  static Machine preset(const std::string& name);

 private:
  /// Recompute every opcode's signature groups. Called from the mutators
  /// so `unit_groups()` is a pure read — a Machine is shared by const
  /// reference across scheduler worker threads, so the groups may never
  /// be materialized lazily inside the const accessor.
  void rebuild_unit_groups();

  std::string name_;
  std::vector<PipelineDesc> pipelines_;
  std::vector<std::vector<PipelineId>> op_map_;  // indexed by Opcode value
  // Signature groups per opcode, rebuilt eagerly on mutation.
  std::array<std::vector<std::vector<PipelineId>>, kOpcodeCount>
      unit_groups_;
};

}  // namespace pipesched
