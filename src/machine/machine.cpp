#include "machine/machine.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace pipesched {

Machine::Machine(std::string name)
    : name_(std::move(name)),
      op_map_(static_cast<std::size_t>(kOpcodeCount)) {}

PipelineId Machine::add_pipeline(std::string function, int latency,
                                 int enqueue) {
  PS_CHECK(latency >= 1, "pipeline latency must be >= 1, got " << latency);
  PS_CHECK(enqueue >= 1, "pipeline enqueue time must be >= 1, got " << enqueue);
  PS_CHECK(!function.empty(), "pipeline function name may not be empty");
  pipelines_.push_back({std::move(function), latency, enqueue});
  rebuild_unit_groups();
  return static_cast<PipelineId>(pipelines_.size() - 1);
}

void Machine::map_op(Opcode op, const std::string& function) {
  std::vector<PipelineId> matches;
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    if (pipelines_[i].function == function) {
      matches.push_back(static_cast<PipelineId>(i));
    }
  }
  PS_CHECK(!matches.empty(),
           "machine '" << name_ << "' has no pipeline with function '"
                       << function << "'");
  map_op(op, matches);
}

void Machine::map_op(Opcode op, const std::vector<PipelineId>& pipelines) {
  auto& mapped = op_map_[static_cast<std::size_t>(op)];
  for (PipelineId id : pipelines) {
    PS_CHECK(id >= 0 && static_cast<std::size_t>(id) < pipelines_.size(),
             "unknown pipeline id " << id);
    if (std::find(mapped.begin(), mapped.end(), id) == mapped.end()) {
      mapped.push_back(id);
    }
  }
  rebuild_unit_groups();
}

const PipelineDesc& Machine::pipeline(PipelineId id) const {
  PS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < pipelines_.size());
  return pipelines_[static_cast<std::size_t>(id)];
}

const std::vector<PipelineId>& Machine::pipelines_for(Opcode op) const {
  return op_map_[static_cast<std::size_t>(op)];
}

int Machine::latency_for(Opcode op) const {
  const auto& mapped = pipelines_for(op);
  int best = 0;
  for (PipelineId id : mapped) {
    const int latency = pipeline(id).latency;
    if (best == 0 || latency < best) best = latency;
  }
  return best;
}

int Machine::enqueue_for(Opcode op) const {
  const auto& mapped = pipelines_for(op);
  int best = 0;
  for (PipelineId id : mapped) {
    const int enqueue = pipeline(id).enqueue;
    if (best == 0 || enqueue < best) best = enqueue;
  }
  return best;
}

const std::vector<std::vector<PipelineId>>& Machine::unit_groups(
    Opcode op) const {
  return unit_groups_[static_cast<std::size_t>(op)];
}

void Machine::rebuild_unit_groups() {
  for (int op = 0; op < kOpcodeCount; ++op) {
    std::vector<std::vector<PipelineId>> groups;
    for (PipelineId id : pipelines_for(static_cast<Opcode>(op))) {
      const PipelineDesc& desc = pipeline(id);
      bool placed = false;
      for (auto& group : groups) {
        const PipelineDesc& head = pipeline(group.front());
        if (head.latency == desc.latency && head.enqueue == desc.enqueue) {
          group.push_back(id);
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({id});
    }
    unit_groups_[static_cast<std::size_t>(op)] = std::move(groups);
  }
}

bool Machine::has_heterogeneous_alternatives() const {
  for (int op = 0; op < kOpcodeCount; ++op) {
    if (unit_groups(static_cast<Opcode>(op)).size() > 1) return true;
  }
  return false;
}

int Machine::max_latency() const {
  int best = 0;
  for (const auto& p : pipelines_) best = std::max(best, p.latency);
  return best;
}

void Machine::validate() const {
  PS_CHECK(!pipelines_.empty(), "machine '" << name_ << "' has no pipelines");
  for (const auto& p : pipelines_) {
    PS_CHECK(p.latency >= 1 && p.enqueue >= 1,
             "machine '" << name_ << "': non-positive pipeline parameters");
  }
}

std::string Machine::to_string() const {
  std::ostringstream oss;
  oss << "machine " << name_ << "\n";
  oss << pad_right("Pipeline Function", 20) << pad_right("Id", 5)
      << pad_right("Latency", 9) << "Enqueue Time\n";
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    oss << pad_right(pipelines_[i].function, 20)
        << pad_right(std::to_string(i + 1), 5)
        << pad_right(std::to_string(pipelines_[i].latency), 9)
        << pipelines_[i].enqueue << "\n";
  }
  oss << "\n" << pad_right("Operation", 12) << "Pipeline Set\n";
  for (int op = 0; op < kOpcodeCount; ++op) {
    const auto& mapped = op_map_[static_cast<std::size_t>(op)];
    oss << pad_right(opcode_name(static_cast<Opcode>(op)), 12) << "{";
    for (std::size_t i = 0; i < mapped.size(); ++i) {
      if (i) oss << ", ";
      oss << mapped[i] + 1;
    }
    oss << "}\n";
  }
  return oss.str();
}

Machine Machine::paper_simulation() {
  // Table 4 lists exactly two pipelines; operations outside Table 5's
  // mapping (Add, Sub, Neg, Const, Store, Mov) are single-cycle and use no
  // pipelined resource (sigma = empty), which is what makes the paper's
  // average *final* NOP count (~0.67) reachable: only load and multiply
  // latencies ever force delays.
  Machine m("paper-simulation");
  m.add_pipeline("loader", 2, 1);
  m.add_pipeline("multiplier", 4, 2);
  m.map_op(Opcode::Load, "loader");
  m.map_op(Opcode::Mul, "multiplier");
  m.map_op(Opcode::Div, "multiplier");
  m.validate();
  return m;
}

Machine Machine::paper_example() {
  Machine m("paper-example");
  m.add_pipeline("loader", 2, 1);
  m.add_pipeline("loader", 2, 1);
  m.add_pipeline("adder", 4, 3);
  m.add_pipeline("adder", 4, 3);
  m.add_pipeline("multiplier", 4, 2);
  m.map_op(Opcode::Load, "loader");
  m.map_op(Opcode::Add, "adder");
  m.map_op(Opcode::Sub, "adder");
  m.map_op(Opcode::Neg, "adder");
  m.map_op(Opcode::Mul, "multiplier");
  m.map_op(Opcode::Div, "multiplier");
  m.validate();
  return m;
}

Machine Machine::risc_classic() {
  Machine m("risc-classic");
  m.add_pipeline("loader", 4, 1);
  m.add_pipeline("alu", 1, 1);
  m.add_pipeline("multiplier", 6, 2);
  m.add_pipeline("divider", 12, 12);
  m.map_op(Opcode::Load, "loader");
  m.map_op(Opcode::Add, "alu");
  m.map_op(Opcode::Sub, "alu");
  m.map_op(Opcode::Neg, "alu");
  m.map_op(Opcode::Mov, "alu");
  m.map_op(Opcode::Mul, "multiplier");
  m.map_op(Opcode::Div, "divider");
  m.validate();
  return m;
}

Machine Machine::single_issue_deep() {
  Machine m("single-issue-deep");
  m.add_pipeline("unit", 8, 1);
  for (Opcode op : {Opcode::Load, Opcode::Store, Opcode::Mov, Opcode::Neg,
                    Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div}) {
    m.map_op(op, "unit");
  }
  m.validate();
  return m;
}

Machine Machine::unpipelined_units() {
  Machine m("unpipelined-units");
  m.add_pipeline("loader", 3, 3);
  m.add_pipeline("adder", 2, 2);
  m.add_pipeline("multiplier", 5, 5);
  m.map_op(Opcode::Load, "loader");
  m.map_op(Opcode::Add, "adder");
  m.map_op(Opcode::Sub, "adder");
  m.map_op(Opcode::Neg, "adder");
  m.map_op(Opcode::Mul, "multiplier");
  m.map_op(Opcode::Div, "multiplier");
  m.validate();
  return m;
}

Machine Machine::asymmetric_alus() {
  Machine m("asymmetric-alus");
  m.add_pipeline("loader", 3, 1);
  m.add_pipeline("fast-alu", 1, 1);
  m.add_pipeline("slow-alu", 4, 1);
  m.add_pipeline("multiplier", 5, 2);
  m.map_op(Opcode::Load, "loader");
  for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::Neg}) {
    m.map_op(op, "fast-alu");
    m.map_op(op, "slow-alu");
  }
  m.map_op(Opcode::Mul, "multiplier");
  m.map_op(Opcode::Div, "multiplier");
  m.validate();
  return m;
}

const std::vector<std::string>& Machine::preset_names() {
  static const std::vector<std::string> kNames = {
      "paper-simulation", "paper-example", "risc-classic",
      "single-issue-deep", "unpipelined-units", "asymmetric-alus"};
  return kNames;
}

Machine Machine::preset(const std::string& name) {
  if (name == "paper-simulation") return paper_simulation();
  if (name == "paper-example") return paper_example();
  if (name == "risc-classic") return risc_classic();
  if (name == "single-issue-deep") return single_issue_deep();
  if (name == "unpipelined-units") return unpipelined_units();
  if (name == "asymmetric-alus") return asymmetric_alus();
  throw Error("unknown machine preset: " + name);
}

}  // namespace pipesched
