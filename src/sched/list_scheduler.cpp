#include "sched/list_scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pipesched {

std::vector<TupleIndex> list_schedule_order(const DepGraph& dag) {
  const std::size_t n = dag.size();
  std::vector<int> unplaced_preds(n);
  for (std::size_t i = 0; i < n; ++i) {
    unplaced_preds[i] =
        static_cast<int>(dag.preds(static_cast<TupleIndex>(i)).size());
  }

  // Ready list kept sorted lazily: with blocks of a few dozen instructions a
  // linear scan per pick is faster than a heap and keeps ties deterministic.
  std::vector<TupleIndex> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (unplaced_preds[i] == 0) ready.push_back(static_cast<TupleIndex>(i));
  }

  auto better = [&](TupleIndex a, TupleIndex b) {
    const int ha = dag.height(a);
    const int hb = dag.height(b);
    if (ha != hb) return ha > hb;
    const auto da = dag.descendants(a).count();
    const auto db = dag.descendants(b).count();
    if (da != db) return da > db;
    return a < b;
  };

  std::vector<TupleIndex> order;
  order.reserve(n);
  while (!ready.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (better(ready[i], ready[best])) best = i;
    }
    const TupleIndex chosen = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    order.push_back(chosen);
    for (TupleIndex s : dag.succs(chosen)) {
      if (--unplaced_preds[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
      }
    }
  }
  PS_ASSERT(order.size() == n);
  return order;
}

Schedule list_schedule(const Machine& machine, const DepGraph& dag,
                       const PipelineState& initial) {
  return evaluate_order(machine, dag, list_schedule_order(dag), initial);
}

ScheduleResult ListScheduler::run(const Machine& machine, const DepGraph& dag,
                                  const PipelineState& initial) const {
  Timer wall;
  ScheduleResult result;
  result.schedule = list_schedule(machine, dag, initial);
  result.stats.initial_nops = result.schedule.total_nops();
  result.stats.best_nops = result.stats.initial_nops;
  result.stats.seconds = wall.seconds();
  return result;
}

}  // namespace pipesched
